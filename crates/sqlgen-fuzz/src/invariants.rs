//! The twelve invariant families the harness checks.
//!
//! Each check consumes one case RNG, generates its own inputs, and returns
//! the number of individual assertions that passed, or a [`CheckFail`]
//! describing the first violation (with a shrunk reproduction where the
//! failing object is a statement).

use crate::astgen::{self, GenOptions};
use crate::dbgen::{self, DbProfile};
use crate::oracle;
use crate::shrink;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqlgen_engine::{
    card::MAX_CARD, parse, render, validate, CostModel, CostParams, Estimator, Executor,
    InsertSource, Predicate, Rhs, SelectQuery, Statement,
};
use sqlgen_fsm::{random_statement as fsm_rollout, FsmConfig, Vocabulary};
use sqlgen_nn::{argmax, masked_softmax, sample_categorical};
use sqlgen_storage::sample::SampleConfig;
use sqlgen_storage::{save_database, ColCursor, Database, DbRead, PagedDb, TableRead, PAGE_SIZE};

/// A single invariant violation.
#[derive(Debug, Clone)]
pub struct CheckFail {
    pub detail: String,
    pub sql: Option<String>,
    pub shrunk_sql: Option<String>,
}

impl CheckFail {
    fn new(detail: impl Into<String>) -> Self {
        CheckFail {
            detail: detail.into(),
            sql: None,
            shrunk_sql: None,
        }
    }

    fn with_stmt(
        detail: impl Into<String>,
        db: &Database,
        stmt: &Statement,
        still_fails: &mut dyn FnMut(&Statement) -> bool,
    ) -> Self {
        let shrunk = shrink::shrink_statement(db, stmt, shrink::DEFAULT_BUDGET, still_fails);
        CheckFail {
            detail: detail.into(),
            sql: Some(render(stmt)),
            shrunk_sql: Some(render(&shrunk)),
        }
    }
}

type CheckResult = Result<u64, CheckFail>;

/// Structural AST equality, modulo two representation details:
///
/// * `Value`'s `PartialEq` is SQL-semantic (`Null != Null`, `NaN != NaN`),
///   so `==` on statements containing a NULL literal is always false —
///   Debug formatting compares the trees literally instead;
/// * the renderer drops redundant parentheses around associative operators,
///   so `a OR (b OR c)` and `(a OR b) OR c` produce identical SQL and the
///   parser can only ever reconstruct its own (left-associative) shape —
///   both trees are canonicalized to that shape before comparing.
fn ast_eq(a: &Statement, b: &Statement) -> bool {
    format!("{:?}", normalize_stmt(a)) == format!("{:?}", normalize_stmt(b))
}

fn normalize_stmt(stmt: &Statement) -> Statement {
    let mut s = stmt.clone();
    match &mut s {
        Statement::Select(q) => normalize_select(q),
        Statement::Insert(i) => {
            if let InsertSource::Query(q) = &mut i.source {
                normalize_select(q);
            }
        }
        Statement::Update(u) => normalize_opt_pred(&mut u.predicate),
        Statement::Delete(d) => normalize_opt_pred(&mut d.predicate),
    }
    s
}

fn normalize_select(q: &mut SelectQuery) {
    normalize_opt_pred(&mut q.predicate);
    if let Some(h) = &mut q.having {
        if let Rhs::Subquery(sub) = &mut h.rhs {
            normalize_select(sub);
        }
    }
}

fn normalize_opt_pred(p: &mut Option<Predicate>) {
    if let Some(inner) = p.take() {
        *p = Some(normalize_pred(inner));
    }
}

/// Rebuilds same-operator `And`/`Or` chains left-associatively and recurses
/// into subqueries. Mixed-operator subtrees keep their shape (the renderer
/// parenthesizes those, so they round-trip exactly).
fn normalize_pred(p: Predicate) -> Predicate {
    match p {
        Predicate::And(..) | Predicate::Or(..) => {
            let is_and = matches!(p, Predicate::And(..));
            let mut leaves = Vec::new();
            flatten_chain(p, is_and, &mut leaves);
            let mut it = leaves.into_iter();
            let first = it.next().expect("chain has at least two leaves");
            it.fold(first, |acc, x| {
                if is_and {
                    Predicate::And(Box::new(acc), Box::new(x))
                } else {
                    Predicate::Or(Box::new(acc), Box::new(x))
                }
            })
        }
        Predicate::Not(inner) => Predicate::Not(Box::new(normalize_pred(*inner))),
        Predicate::Cmp { col, op, rhs } => Predicate::Cmp {
            col,
            op,
            rhs: match rhs {
                Rhs::Subquery(mut sub) => {
                    normalize_select(&mut sub);
                    Rhs::Subquery(sub)
                }
                v => v,
            },
        },
        Predicate::In { col, mut sub } => {
            normalize_select(&mut sub);
            Predicate::In { col, sub }
        }
        Predicate::Exists { mut sub } => {
            normalize_select(&mut sub);
            Predicate::Exists { sub }
        }
        like @ Predicate::Like { .. } => like,
    }
}

fn flatten_chain(p: Predicate, is_and: bool, out: &mut Vec<Predicate>) {
    match p {
        Predicate::And(a, b) if is_and => {
            flatten_chain(*a, true, out);
            flatten_chain(*b, true, out);
        }
        Predicate::Or(a, b) if !is_and => {
            flatten_chain(*a, false, out);
            flatten_chain(*b, false, out);
        }
        other => out.push(normalize_pred(other)),
    }
}

const STATEMENTS_PER_CASE: usize = 4;

/// (a) Round-trip: `parse(render(ast)) == ast` and rendering is a fixpoint.
pub fn check_roundtrip(rng: &mut StdRng) -> CheckResult {
    let db = dbgen::random_database(rng, &DbProfile::parseable());
    let opts = GenOptions {
        parseable_literals: true,
        ..GenOptions::default()
    };
    let mut checks = 0;
    for _ in 0..STATEMENTS_PER_CASE {
        let stmt = astgen::random_statement(&db, rng, &opts);
        if let Err(e) = validate(&db, &stmt) {
            return Err(CheckFail {
                detail: format!("generator produced invalid statement: {e}"),
                sql: Some(render(&stmt)),
                shrunk_sql: None,
            });
        }
        let sql = render(&stmt);
        let reparsed = match parse(&sql) {
            Ok(s) => s,
            Err(e) => {
                return Err(CheckFail::with_stmt(
                    format!("rendered SQL does not parse: {e}"),
                    &db,
                    &stmt,
                    &mut |s| parse(&render(s)).is_err(),
                ))
            }
        };
        if !ast_eq(&reparsed, &stmt) {
            return Err(CheckFail::with_stmt(
                "parse(render(ast)) differs from ast",
                &db,
                &stmt,
                &mut |s| parse(&render(s)).map_or(true, |r| !ast_eq(&r, s)),
            ));
        }
        if render(&reparsed) != sql {
            return Err(CheckFail::with_stmt(
                "re-render is not a fixpoint",
                &db,
                &stmt,
                &mut |s| {
                    let sql = render(s);
                    parse(&sql).map_or(true, |r| render(&r) != sql)
                },
            ));
        }
        checks += 3;
    }
    Ok(checks)
}

/// (b) Estimator sanity: estimates finite, non-negative and saturated;
/// selectivities in `[0, 1]`; costs finite; adding a conjunct never raises
/// the estimate.
pub fn check_estimator(rng: &mut StdRng) -> CheckResult {
    let db = dbgen::random_database(rng, &DbProfile::default());
    let est = Estimator::build(&db);
    let cost = CostModel::new(CostParams::default());
    let opts = GenOptions::default();
    let mut checks = 0;
    for _ in 0..STATEMENTS_PER_CASE {
        let stmt = astgen::random_statement(&db, rng, &opts);
        validate(&db, &stmt)
            .map_err(|e| CheckFail::new(format!("generator produced invalid statement: {e}")))?;

        let c = est.cardinality(&stmt);
        let sane = |x: f64| x.is_finite() && (0.0..=MAX_CARD).contains(&x);
        if !sane(c) {
            return Err(CheckFail::with_stmt(
                format!("cardinality estimate {c} outside [0, {MAX_CARD:e}]"),
                &db,
                &stmt,
                &mut |s| !sane(est.cardinality(s)),
            ));
        }
        let k = cost.cost(&est, &stmt);
        if !(k.is_finite() && k >= 0.0) {
            return Err(CheckFail::with_stmt(
                format!("cost estimate {k} not finite/non-negative"),
                &db,
                &stmt,
                &mut |s| {
                    let k = cost.cost(&est, s);
                    !(k.is_finite() && k >= 0.0)
                },
            ));
        }
        checks += 2;

        if let Some(q) = stmt.as_select() {
            if let Some(p) = &q.predicate {
                let s = est.selectivity(p);
                if !(0.0..=1.0).contains(&s) {
                    return Err(CheckFail::with_stmt(
                        format!("selectivity {s} outside [0, 1]"),
                        &db,
                        &stmt,
                        &mut |c| {
                            c.as_select()
                                .and_then(|q| q.predicate.as_ref())
                                .is_some_and(|p| !(0.0..=1.0).contains(&est.selectivity(p)))
                        },
                    ));
                }
                checks += 1;
            }

            // Monotonicity: strengthening the WHERE clause cannot raise the
            // estimate (selectivities multiply and are clamped to <= 1).
            let scope: Vec<String> = q.from.tables().iter().map(|t| t.to_string()).collect();
            let atom = astgen::random_atom(&db, &scope, rng, &opts, 1);
            let base = est.select_cardinality(q);
            let narrowed = with_conjunct(q, &atom);
            let tightened = est.select_cardinality(&narrowed);
            if tightened > base * (1.0 + 1e-9) + 1e-9 {
                return Err(CheckFail {
                    detail: format!(
                        "adding conjunct raised estimate: {base} -> {tightened} (conjunct on {})",
                        render(&Statement::Select(narrowed.clone()))
                    ),
                    sql: Some(render(&stmt)),
                    shrunk_sql: None,
                });
            }
            checks += 1;
        }
    }
    Ok(checks)
}

fn with_conjunct(q: &sqlgen_engine::SelectQuery, atom: &Predicate) -> sqlgen_engine::SelectQuery {
    let mut out = q.clone();
    out.predicate = Some(match out.predicate.take() {
        Some(p) => Predicate::And(Box::new(p), Box::new(atom.clone())),
        None => atom.clone(),
    });
    out
}

/// (c) Differential execution: `Executor::cardinality` agrees with the
/// naive oracle; filtering never increases cardinality (absent `HAVING`);
/// the production `like_match` agrees with a naive recursive matcher.
pub fn check_differential(rng: &mut StdRng) -> CheckResult {
    let db = dbgen::random_database(rng, &DbProfile::default());
    let ex = Executor::new(&db);
    let opts = GenOptions::default();
    let mut checks = 0;

    for _ in 0..STATEMENTS_PER_CASE {
        let stmt = astgen::random_statement(&db, rng, &opts);
        validate(&db, &stmt)
            .map_err(|e| CheckFail::new(format!("generator produced invalid statement: {e}")))?;

        let got = ex.cardinality(&stmt);
        let want = oracle::cardinality(&db, &stmt);
        let agree = |s: &Statement| match (ex.cardinality(s), oracle::cardinality(&db, s)) {
            (Ok(a), Ok(b)) => a == b,
            (Err(_), Err(_)) => true,
            _ => false,
        };
        if !agree(&stmt) {
            return Err(CheckFail::with_stmt(
                format!("executor {got:?} != oracle {want:?}"),
                &db,
                &stmt,
                &mut |s| !agree(s),
            ));
        }
        checks += 1;

        // A WHERE clause can only discard tuples. (HAVING breaks the
        // subset argument: a group failing HAVING unfiltered may pass it
        // filtered, so the bound only holds without one.)
        if let Some(q) = stmt.as_select() {
            if q.predicate.is_some() && q.having.is_none() {
                let mut unfiltered = q.clone();
                unfiltered.predicate = None;
                if let (Ok(a), Ok(b)) = (
                    ex.cardinality(&stmt),
                    ex.cardinality(&Statement::Select(unfiltered)),
                ) {
                    if a > b {
                        return Err(CheckFail {
                            detail: format!("filtered cardinality {a} > unfiltered {b}"),
                            sql: Some(render(&stmt)),
                            shrunk_sql: None,
                        });
                    }
                    checks += 1;
                }
            }
        }
    }

    // LIKE differential on raw pattern/text pairs.
    const ALPHABET: &[char] = &['a', 'b', '%', '_', '\\', '\'', '\u{e9}'];
    for _ in 0..8 {
        let pattern: String = (0..rng.random_range(0..8))
            .map(|_| ALPHABET[rng.random_range(0..ALPHABET.len())])
            .collect();
        let text: String = (0..rng.random_range(0..10))
            .map(|_| ALPHABET[rng.random_range(0..ALPHABET.len())])
            .collect();
        let got = sqlgen_engine::like_match(&pattern, &text);
        let want = oracle::like_oracle(&pattern, &text);
        if got != want {
            return Err(CheckFail::new(format!(
                "like_match({pattern:?}, {text:?}) = {got}, oracle says {want}"
            )));
        }
        checks += 1;
    }
    Ok(checks)
}

/// (d) FSM closure: every masked rollout renders SQL that parses back to
/// the same text, validates, and executes.
pub fn check_fsm_closure(rng: &mut StdRng) -> CheckResult {
    // Non-empty tables: the action space needs at least one sampled value
    // per column to offer predicates.
    let db = dbgen::random_database(rng, &DbProfile::parseable());
    let vocab = Vocabulary::build(
        &db,
        &SampleConfig {
            k: 8,
            seed: rng.random(),
            ..Default::default()
        },
    );
    let cfg = FsmConfig::full();
    let ex = Executor::new(&db);
    let mut rollout_rng = StdRng::seed_from_u64(rng.random());
    let mut checks = 0;
    for _ in 0..6 {
        let (stmt, _) = fsm_rollout(&vocab, &cfg, &mut rollout_rng);
        let sql = render(&stmt);
        let fail = |what: &str, e: String| CheckFail {
            detail: format!("FSM rollout {what}: {e}"),
            sql: Some(sql.clone()),
            shrunk_sql: None,
        };
        let reparsed = parse(&sql).map_err(|e| fail("does not parse", e.to_string()))?;
        if render(&reparsed) != sql {
            return Err(fail("re-render differs", render(&reparsed)));
        }
        validate(&db, &stmt).map_err(|e| fail("fails validation", e.to_string()))?;
        ex.cardinality(&stmt)
            .map_err(|e| fail("fails execution", e.to_string()))?;
        checks += 4;
    }
    Ok(checks)
}

/// (f) Batch equivalence: batched lockstep generation at B ∈ {2, 4, 8}
/// yields per-lane token streams identical to serial runs seeded with the
/// same lane seeds (`base ^ lane`), including across continuous lane
/// refills, and every emitted query still passes the fsm-closure checks
/// (render → parse → re-render fixpoint → validate → execute).
pub fn check_batch_equivalence(rng: &mut StdRng) -> CheckResult {
    use sqlgen_rl::{
        run_episode_infer, worker_seed, ActorNet, BatchRollout, Constraint, InferRollout,
        NetConfig, SqlGenEnv,
    };
    let db = dbgen::random_database(rng, &DbProfile::parseable());
    let vocab = Vocabulary::build(
        &db,
        &SampleConfig {
            k: 8,
            seed: rng.random(),
            ..Default::default()
        },
    );
    let est = Estimator::build(&db);
    let env = SqlGenEnv::new(&vocab, &est, Constraint::cardinality_range(1.0, 1e6));
    let actor = ActorNet::new(
        vocab.size(),
        &NetConfig {
            embed_dim: 8,
            hidden: 8,
            layers: 1,
            dropout: 0.0,
        },
        rng.random(),
    );
    let ex = Executor::new(&db);
    let base: u64 = rng.random();
    let mut checks = 0;
    let mut ro = BatchRollout::new();
    for &batch in &[2usize, 4, 8] {
        let n = batch + 2; // more jobs than lanes: exercises lane refill
        let tagged = ro.collect_tagged(&actor, &env, n, batch, base);
        if tagged.len() != n {
            return Err(CheckFail::new(format!(
                "batch {batch}: collected {} episodes, wanted {n}",
                tagged.len()
            )));
        }
        for lane in 0..batch.min(n) {
            let mut lane_eps: Vec<_> = tagged.iter().filter(|(_, l, _)| *l == lane).collect();
            lane_eps.sort_by_key(|(job, _, _)| *job);
            let mut lane_rng = StdRng::seed_from_u64(worker_seed(base, lane));
            let mut iro = InferRollout::new();
            for (job, _, ep) in lane_eps {
                let serial = run_episode_infer(&actor, &env, &mut lane_rng, &mut iro);
                if ep.actions != serial.actions {
                    return Err(CheckFail::new(format!(
                        "batch {batch} lane {lane} job {job}: batched tokens diverge \
                         from serial run of the lane seed ({:?} vs {:?})",
                        ep.actions, serial.actions
                    )));
                }
                checks += 1;
            }
        }
        for (_, _, ep) in &tagged {
            let sql = render(&ep.statement);
            let fail = |what: &str, e: String| CheckFail {
                detail: format!("batched rollout {what}: {e}"),
                sql: Some(sql.clone()),
                shrunk_sql: None,
            };
            let reparsed = parse(&sql).map_err(|e| fail("does not parse", e.to_string()))?;
            if render(&reparsed) != sql {
                return Err(fail("re-render differs", render(&reparsed)));
            }
            validate(&db, &ep.statement).map_err(|e| fail("fails validation", e.to_string()))?;
            ex.cardinality(&ep.statement)
                .map_err(|e| fail("fails execution", e.to_string()))?;
            checks += 4;
        }
    }
    Ok(checks)
}

/// (e) NN numeric hygiene: masked softmax, sampling and argmax stay in
/// bounds and never produce non-finite probabilities, even on hostile
/// logits.
pub fn check_nn_numerics(rng: &mut StdRng) -> CheckResult {
    let mut checks = 0;
    for _ in 0..16 {
        let n = rng.random_range(1..=24);
        let mut logits: Vec<f32> = (0..n)
            .map(|_| match rng.random_range(0..12) {
                0 => f32::NAN,
                1 => f32::INFINITY,
                2 => f32::NEG_INFINITY,
                _ => (rng.random_range(-800..800) as f32) / 100.0,
            })
            .collect();
        let mask: Vec<bool> = match rng.random_range(0..6) {
            0 => vec![false; n],
            1 => vec![true; n],
            _ => (0..n).map(|_| rng.random_range(0..3) > 0).collect(),
        };

        let picked = masked_softmax(&mut logits, &mask);
        if picked > n {
            return Err(CheckFail::new(format!(
                "masked_softmax returned count {picked} > {n}"
            )));
        }
        let mut sum = 0.0f32;
        for (i, (&p, &m)) in logits.iter().zip(&mask).enumerate() {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(CheckFail::new(format!(
                    "softmax prob[{i}] = {p} not in [0, 1]"
                )));
            }
            if !m && p != 0.0 {
                return Err(CheckFail::new(format!(
                    "masked slot {i} got probability {p}"
                )));
            }
            sum += p;
        }
        if sum != 0.0 && (sum - 1.0).abs() > 1e-4 {
            return Err(CheckFail::new(format!("softmax sum {sum} != 1")));
        }

        let s = sample_categorical(&logits, rng);
        if s >= n {
            return Err(CheckFail::new(format!("sample index {s} out of range {n}")));
        }
        if sum > 0.0 && logits[s] == 0.0 {
            return Err(CheckFail::new(format!(
                "sampled zero-probability slot {s} despite positive mass"
            )));
        }
        let a = argmax(&logits);
        if a >= n {
            return Err(CheckFail::new(format!("argmax index {a} out of range {n}")));
        }

        // Sampling over raw hostile probability vectors (bypassing softmax)
        // must stay in bounds too.
        let hostile: Vec<f32> = (0..n)
            .map(|_| match rng.random_range(0..4) {
                0 => f32::NAN,
                1 => f32::INFINITY,
                _ => rng.random_range(0..100) as f32 / 100.0,
            })
            .collect();
        let h = sample_categorical(&hostile, rng);
        if h >= n {
            return Err(CheckFail::new(format!(
                "hostile sample index {h} out of range {n}"
            )));
        }
        if argmax(&hostile) >= n {
            return Err(CheckFail::new("hostile argmax out of range".to_string()));
        }
        checks += 7;
    }
    Ok(checks)
}

// ---------------------------------------------------------------------------
// (g) serve equivalence
// ---------------------------------------------------------------------------

/// The serving determinism contract plus HTTP-parser robustness.
///
/// Part 1: a window of coalesced requests run through the dynamic batcher
/// (`sqlgen_serve::run_window`) must produce, for every request,
/// episodes bitwise-identical to that request served alone on a single
/// lane — same token streams, same measured metrics, same rendered SQL —
/// regardless of batch width or co-tenant requests.
///
/// Part 2: the hand-rolled HTTP parser must survive truncated, oversized
/// and byte-flipped request soup without panicking, and classify crafted
/// malformed/oversized inputs as 400/413.
pub fn check_serve_equivalence(rng: &mut StdRng) -> CheckResult {
    use sqlgen_rl::{ActorNet, Constraint, NetConfig};
    use sqlgen_serve::{read_request, run_window, Limits, ParseError, WindowRequest};
    use std::io::Cursor;

    let db = dbgen::random_database(rng, &DbProfile::parseable());
    let vocab = Vocabulary::build(
        &db,
        &SampleConfig {
            k: 8,
            seed: rng.random(),
            ..Default::default()
        },
    );
    let est = Estimator::build(&db);
    let fsm = FsmConfig::default();
    let actor = ActorNet::new(
        vocab.size(),
        &NetConfig {
            embed_dim: 8,
            hidden: 8,
            layers: 1,
            dropout: 0.0,
        },
        rng.random(),
    );
    let mut checks = 0;

    // --- part 1: batcher window ≡ solo generation --------------------------
    let n_reqs = rng.random_range(2..=4);
    let reqs: Vec<WindowRequest> = (0..n_reqs)
        .map(|_| WindowRequest {
            constraint: if rng.random_range(0..2) == 0 {
                Constraint::cardinality_range(1.0, 1e6)
            } else {
                Constraint::cardinality_point(rng.random_range(1..1000) as f64)
            },
            n: rng.random_range(1..=3),
            seed: rng.random(),
            deadline: None,
            trace: None,
        })
        .collect();
    let lanes = [2usize, 4, 8][rng.random_range(0..3usize)];
    let window = run_window(&actor, &vocab, &est, &fsm, &reqs, lanes, None);
    for (ri, req) in reqs.iter().enumerate() {
        let solo = run_window(
            &actor,
            &vocab,
            &est,
            &fsm,
            std::slice::from_ref(req),
            1,
            None,
        );
        let a = &window[ri].episodes;
        let b = &solo[0].episodes;
        if a.len() != req.n || b.len() != req.n {
            return Err(CheckFail::new(format!(
                "request {ri}: {} episodes coalesced, {} solo, wanted {}",
                a.len(),
                b.len(),
                req.n
            )));
        }
        for (j, (x, y)) in a.iter().zip(b).enumerate() {
            if x.actions != y.actions {
                return Err(CheckFail::new(format!(
                    "request {ri} episode {j}: coalesced tokens diverge from solo \
                     run at lanes={lanes} ({:?} vs {:?})",
                    x.actions, y.actions
                )));
            }
            if x.measured.to_bits() != y.measured.to_bits() || x.satisfied != y.satisfied {
                return Err(CheckFail::new(format!(
                    "request {ri} episode {j}: measured/satisfied diverge \
                     ({} vs {}, {} vs {})",
                    x.measured, y.measured, x.satisfied, y.satisfied
                )));
            }
            let sql = render(&x.statement);
            if sql != render(&y.statement) {
                return Err(CheckFail {
                    detail: format!("request {ri} episode {j}: rendered SQL diverges"),
                    sql: Some(sql),
                    shrunk_sql: None,
                });
            }
            checks += 3;
        }
    }

    // --- part 2: HTTP parser survives hostile bytes ------------------------
    let limits = Limits::default();
    // Crafted cases with a known classification.
    let long_header = format!("GET / HTTP/1.1\r\nx: {}\r\n\r\n", "a".repeat(9000));
    let crafted: [(&[u8], Option<u16>); 6] = [
        (b"BOGUS LINE\r\n\r\n", Some(400)),
        (
            b"POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
            Some(400),
        ),
        (
            b"POST / HTTP/1.1\r\ncontent-length: 99999999\r\n\r\n",
            Some(413),
        ),
        (long_header.as_bytes(), Some(413)),
        (
            b"POST /generate HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc",
            None,
        ),
        (b"", None),
    ];
    for (bytes, want) in crafted {
        match read_request(&mut Cursor::new(bytes), &limits) {
            Ok(_) => {
                return Err(CheckFail::new(format!(
                    "parser accepted crafted malformed input {:?}",
                    String::from_utf8_lossy(&bytes[..bytes.len().min(40)])
                )))
            }
            Err(e) => {
                if e.status() != want {
                    return Err(CheckFail::new(format!(
                        "crafted input classified as {:?}, wanted {:?} ({e:?})",
                        e.status(),
                        want
                    )));
                }
            }
        }
        checks += 1;
    }
    // Byte-soup mutations of a valid request: any Ok/Err outcome is fine,
    // surviving without panic or runaway allocation is the invariant.
    let valid =
        b"POST /generate HTTP/1.1\r\ncontent-length: 24\r\n\r\n{\"constraint\":{\"point\":1}}";
    for _ in 0..24 {
        let mut bytes = valid.to_vec();
        match rng.random_range(0..4) {
            0 => bytes.truncate(rng.random_range(0..bytes.len())),
            1 => {
                let i = rng.random_range(0..bytes.len());
                bytes[i] = rng.random();
            }
            2 => {
                let i = rng.random_range(0..bytes.len());
                bytes.splice(
                    i..i,
                    (0..rng.random_range(1..64)).map(|_| rng.random::<u8>()),
                );
            }
            _ => {
                bytes = (0..rng.random_range(0..256))
                    .map(|_| rng.random::<u8>())
                    .collect();
            }
        }
        let result = read_request(&mut Cursor::new(&bytes), &limits);
        if let Ok(req) = &result {
            if req.body.len() > limits.max_body {
                return Err(CheckFail::new(format!(
                    "parser returned {}-byte body above the {} limit",
                    req.body.len(),
                    limits.max_body
                )));
            }
        }
        if let Err(e) = &result {
            // Classified errors must carry a sendable status; transport
            // errors must not (ParseError::status is the router contract).
            match e {
                ParseError::BadRequest(_) => {
                    if e.status() != Some(400) {
                        return Err(CheckFail::new("BadRequest without status 400"));
                    }
                }
                ParseError::TooLarge(_) => {
                    if e.status() != Some(413) {
                        return Err(CheckFail::new("TooLarge without status 413"));
                    }
                }
                ParseError::Eof | ParseError::Incomplete | ParseError::Io(_) => {
                    if e.status().is_some() {
                        return Err(CheckFail::new("transport error carries a status"));
                    }
                }
            }
        }
        checks += 1;
    }
    Ok(checks)
}

// ---------------------------------------------------------------------------
// (h) trace headers
// ---------------------------------------------------------------------------

/// The trace-propagation parser (`traceparent` / `X-Request-Id`) must
/// survive hostile bytes without panicking, reject crafted malformed
/// headers, and — whenever it does accept an input — echo a canonical,
/// re-parseable header for the same trace id.
pub fn check_trace_header(rng: &mut StdRng) -> CheckResult {
    use sqlgen_obs::trace::{is_canonical_traceparent, ROOT_SPAN};
    use sqlgen_obs::TraceContext;

    let mut checks = 0u64;

    // --- round-trip: render(ctx) is canonical and parses back ---------------
    for _ in 0..8 {
        let ctx = TraceContext {
            trace_id: ((rng.random::<u64>() as u128) << 64 | rng.random::<u64>() as u128).max(1),
            parent_span: rng.random(),
        };
        let header = ctx.render_traceparent();
        if !is_canonical_traceparent(&header) {
            return Err(CheckFail::new(format!("echo not canonical: {header:?}")));
        }
        let back = TraceContext::parse_traceparent(&header)
            .ok_or_else(|| CheckFail::new(format!("echo does not re-parse: {header:?}")))?;
        if back != ctx {
            return Err(CheckFail::new(format!(
                "traceparent round-trip changed identity: {ctx:?} → {back:?}"
            )));
        }
        let id = ctx.request_id();
        if TraceContext::parse_request_id(&id) != Some(ctx.trace_id) {
            return Err(CheckFail::new(format!(
                "request id round-trip failed: {id:?}"
            )));
        }
        checks += 3;
    }

    // --- crafted invalids must be rejected, never panic ----------------------
    let valid = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01";
    let oversized = format!("{valid}0");
    let crafted = [
        "",                                                        // empty
        "00",                                                      // truncated
        &valid[..54],                                              // one byte short
        oversized.as_str(),                                        // one byte long
        "ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // reserved version
        "00-00000000000000000000000000000000-b7ad6b7169203331-01", // zero trace id
        "00-+af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // sign accepted by from_str_radix
        "00-0af7651916cd43dd8448eb211c80319c-+7ad6b7169203331-01", // sign in span id
        "00-0af7651916cd43dd8448eb211c80319g-b7ad6b7169203331-01", // non-hex
        "00_0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // wrong separator
        "00-0af7651916cd43dd8448eb211c80319c_b7ad6b7169203331-01",
        "00-0af7651916cd43dd8448eb211c8031\u{0}c-b7ad6b7169203331-01", // embedded NUL
    ];
    for header in crafted {
        if TraceContext::parse_traceparent(header).is_some() {
            return Err(CheckFail::new(format!(
                "parser accepted crafted invalid traceparent {header:?}"
            )));
        }
        checks += 1;
    }
    for id in [
        "",
        "0af7651916cd43dd8448eb211c80319",      // 31 chars
        "0af7651916cd43dd8448eb211c80319cc",    // 33 chars
        "00000000000000000000000000000000",     // zero
        "+af7651916cd43dd8448eb211c80319c",     // sign
        "0af7651916cd43dd8448eb211c8031\u{0}c", // NUL
    ] {
        if TraceContext::parse_request_id(id).is_some() {
            return Err(CheckFail::new(format!(
                "parser accepted crafted invalid request id {id:?}"
            )));
        }
        checks += 1;
    }

    // --- byte-soup mutations: no panic; acceptance implies canonical echo ---
    for _ in 0..32 {
        let mut bytes = valid.as_bytes().to_vec();
        match rng.random_range(0..4) {
            0 => bytes.truncate(rng.random_range(0..bytes.len())),
            1 => {
                let i = rng.random_range(0..bytes.len());
                bytes[i] = rng.random();
            }
            2 => {
                let i = rng.random_range(0..bytes.len());
                bytes.splice(
                    i..i,
                    (0..rng.random_range(1..32)).map(|_| rng.random::<u8>()),
                );
            }
            _ => {
                bytes = (0..rng.random_range(0..128))
                    .map(|_| rng.random::<u8>())
                    .collect();
            }
        }
        let header = String::from_utf8_lossy(&bytes);
        if let Some(ctx) = TraceContext::parse_traceparent(&header) {
            if ctx.trace_id == 0 {
                return Err(CheckFail::new(format!(
                    "parser yielded zero trace id from {header:?}"
                )));
            }
            if !is_canonical_traceparent(&ctx.render_traceparent()) {
                return Err(CheckFail::new(format!(
                    "non-canonical echo for accepted mutation {header:?}"
                )));
            }
        }
        // from_headers must always produce a usable identity, whatever the
        // inbound garbage (both headers hostile at once).
        let ctx = TraceContext::from_headers(Some(&header), Some(&header));
        let echo = TraceContext {
            trace_id: ctx.trace_id,
            parent_span: ROOT_SPAN,
        };
        if ctx.trace_id == 0 || !is_canonical_traceparent(&echo.render_traceparent()) {
            return Err(CheckFail::new(format!(
                "from_headers produced unusable identity for {header:?}"
            )));
        }
        checks += 2;
    }
    Ok(checks)
}

// ---------------------------------------------------------------------------
// (i) quantization error
// ---------------------------------------------------------------------------

/// (i) Quantization error: the int8 per-output-channel format honors its
/// documented accuracy envelope on random layer weights and hostile
/// activations.
///
/// * dequantized weights are within half a quantization step
///   (`scale[r] / 2`) of the f32 originals, entry-wise; all-zero rows
///   dequantize to exact zeros;
/// * per layer, the q8 matvec differs from the f32 matvec by at most the
///   theoretical bound `row_error_bound(r, ‖x‖₁)` per output row (plus
///   f32 rounding slack) — activations sweep magnitudes from 1e-3 to 1e3
///   (NaN/±inf are excluded: the bound is meaningless for non-finite
///   inputs, which the masked softmax filters out downstream);
/// * masked argmax over quantized logits agrees with f32 argmax on at
///   least 99% of decisive trials — those where the f32 winner's margin
///   exceeds the summed error bounds, so disagreement is mathematically
///   impossible — and any non-decisive flip stays within the error
///   envelope of the two contending rows.
pub fn check_quant_error(rng: &mut StdRng) -> CheckResult {
    use sqlgen_nn::{Mat, QuantizedMat};

    let mut checks = 0;
    for _ in 0..4 {
        let rows = rng.random_range(1..=40);
        let cols = rng.random_range(1..=32);
        let mag = 10f32.powi(rng.random_range(-3..=3));
        let mut w = Mat::zeros(rows, cols);
        for v in w.data.iter_mut() {
            *v = match rng.random_range(0..16) {
                0 => 0.0,
                _ => (rng.random_range(-1000..=1000) as f32 / 1000.0) * mag,
            };
        }
        if rng.random_range(0..4) == 0 {
            let r = rng.random_range(0..rows);
            w.row_mut(r).iter_mut().for_each(|v| *v = 0.0);
        }
        let q = QuantizedMat::from_mat(&w);

        // Entry-wise dequantization error ≤ scale/2; zero rows exact.
        let dq = q.dequantize();
        for r in 0..rows {
            let half_step = 0.5 * q.scales[r];
            for c in 0..cols {
                let err = (dq.data[r * cols + c] - w.data[r * cols + c]).abs();
                if err > half_step * 1.0001 {
                    return Err(CheckFail::new(format!(
                        "dequant error {err} > scale/2 = {half_step} at ({r}, {c})"
                    )));
                }
            }
            if q.scales[r] == 0.0 && dq.row(r).iter().any(|&v| v != 0.0) {
                return Err(CheckFail::new(format!("zero row {r} dequantized non-zero")));
            }
        }
        checks += 1;

        // Per-layer matvec error within the theoretical bound, across
        // hostile activation magnitudes.
        let mut yq = vec![0.0f32; rows];
        let mut yf = vec![0.0f32; rows];
        for _ in 0..4 {
            let xmag = 10f32.powi(rng.random_range(-3..=3));
            let x: Vec<f32> = (0..cols)
                .map(|_| (rng.random_range(-1000..=1000) as f32 / 1000.0) * xmag)
                .collect();
            let x_l1: f32 = x.iter().map(|v| v.abs()).sum();
            q.matvec_q8(&x, &mut yq);
            w.matvec(&x, &mut yf);
            for r in 0..rows {
                let bound = q.row_error_bound(r, x_l1);
                // Slack for f32 accumulation rounding in both matvecs.
                let tol = bound * 1.0001 + 1e-4 * (yf[r].abs() + q.scales[r] * x_l1 + 1e-6);
                let err = (yq[r] - yf[r]).abs();
                if err > tol {
                    return Err(CheckFail::new(format!(
                        "q8 matvec row {r}: |{} - {}| = {err} > bound {bound}",
                        yq[r], yf[r]
                    )));
                }
            }
            checks += 1;
        }

        // Gap-guarded masked argmax agreement. On adversarial random
        // matrices the f32 top-two gap is frequently *inside* the int8
        // error envelope, where a flip is a legal outcome of 8-bit
        // resolution rather than a kernel bug — so the ≥99% agreement
        // gate is measured over the decisive trials (f32 margin beyond
        // the summed row error bounds), where disagreement is
        // mathematically impossible; any decisive flip fails the case
        // outright.
        let mut trials = 0u64;
        let mut agree = 0u64;
        for _ in 0..32 {
            let x: Vec<f32> = (0..cols)
                .map(|_| rng.random_range(-4000..=4000) as f32 / 1000.0)
                .collect();
            let x_l1: f32 = x.iter().map(|v| v.abs()).sum();
            q.matvec_q8(&x, &mut yq);
            w.matvec(&x, &mut yf);
            let mask: Vec<bool> = (0..rows).map(|_| rng.random_range(0..3) > 0).collect();
            let best = |y: &[f32]| -> Option<usize> {
                let mut b: Option<usize> = None;
                for r in 0..rows {
                    if mask[r] && b.is_none_or(|p| y[r] > y[p]) {
                        b = Some(r);
                    }
                }
                b
            };
            let (Some(bf), Some(bq)) = (best(&yf), best(&yq)) else {
                continue;
            };
            // A trial is decisive when the f32 winner's margin over every
            // other masked row exceeds the summed error bounds of the two
            // rows involved (+ float-rounding slack).
            let decisive = (0..rows).filter(|&r| mask[r] && r != bf).all(|r| {
                let limit = q.row_error_bound(bf, x_l1) + q.row_error_bound(r, x_l1);
                yf[bf] - yf[r] > limit * 1.0001 + 1e-5
            });
            if decisive {
                trials += 1;
                if bf == bq {
                    agree += 1;
                } else {
                    return Err(CheckFail::new(format!(
                        "decisive argmax flipped {bf} -> {bq} (gap {} > bound {})",
                        yf[bf] - yf[bq],
                        q.row_error_bound(bf, x_l1) + q.row_error_bound(bq, x_l1)
                    )));
                }
            } else if bf != bq {
                // Non-decisive flips must still be within the envelope of
                // the two contenders.
                let gap = yf[bf] - yf[bq];
                let limit = q.row_error_bound(bf, x_l1) + q.row_error_bound(bq, x_l1);
                if gap > limit * 1.0001 + 1e-5 {
                    return Err(CheckFail::new(format!(
                        "argmax flipped {bf} -> {bq} despite gap {gap} > bound {limit}"
                    )));
                }
            }
        }
        if trials > 0 && (agree as f64) < 0.99 * trials as f64 {
            return Err(CheckFail::new(format!(
                "masked argmax agreement {agree}/{trials} below 99%"
            )));
        }
        checks += 1;
    }
    Ok(checks)
}

/// (j) Refine validity: every step of constraint-miss refinement
/// (DESIGN.md §12) stays inside the FSM-closure envelope — it parses,
/// re-renders to a fixpoint, validates and executes — accepted-step
/// rewards strictly increase toward the constraint interval, an accepted
/// result satisfies the constraint and re-measures bit-identically, and
/// the whole search is deterministic (replaying it reproduces the exact
/// step sequence and outcome).
pub fn check_refine_validity(rng: &mut StdRng) -> CheckResult {
    use sqlgen_core::refine::search;
    use sqlgen_rl::{Constraint, SqlGenEnv};

    let db = dbgen::random_database(rng, &DbProfile::parseable());
    let vocab = Vocabulary::build(
        &db,
        &SampleConfig {
            k: 8,
            seed: rng.random(),
            ..Default::default()
        },
    );
    let est = Estimator::build(&db);
    let ex = Executor::new(&db);
    let constraint = match rng.random_range(0..4) {
        0 => Constraint::cardinality_point(rng.random_range(1.0..200.0)),
        1 => {
            let lo = rng.random_range(1.0..100.0);
            Constraint::cardinality_range(lo, lo + rng.random_range(1.0..200.0))
        }
        2 => Constraint::cost_point(rng.random_range(1.0..500.0)),
        _ => {
            let lo = rng.random_range(1.0..200.0);
            Constraint::cost_range(lo, lo + rng.random_range(1.0..500.0))
        }
    };
    let env = SqlGenEnv::new(&vocab, &est, constraint);
    let cfg = FsmConfig::full();
    let mut rollout_rng = StdRng::seed_from_u64(rng.random());

    // Audits one refinement search: returns passed-assertion count, or the
    // first violated invariant. Also the shrinking predicate, so a minimal
    // statement whose refinement still misbehaves survives shrinking.
    let audit = |stmt: &Statement| -> Result<u64, String> {
        let measured = env.measure(stmt);
        let out = search(&env, stmt, measured, 64);
        let mut passed = 0u64;
        let mut prev = env.constraint.reward(measured);
        for (i, step) in out.steps.iter().enumerate() {
            match parse(&step.sql) {
                Ok(p) if render(&p) == step.sql => {}
                Ok(p) => return Err(format!("step {i} re-render differs: {}", render(&p))),
                Err(e) => return Err(format!("step {i} does not parse: {e}")),
            }
            if step.sql != render(&step.statement) {
                return Err(format!("step {i} sql/statement disagree"));
            }
            if let Err(e) = validate(&db, &step.statement) {
                return Err(format!("step {i} fails validation: {e}"));
            }
            if let Err(e) = ex.cardinality(&step.statement) {
                return Err(format!("step {i} fails execution: {e}"));
            }
            if step.measured.to_bits() != env.measure(&step.statement).to_bits() {
                return Err(format!("step {i} measured drifts on re-measure"));
            }
            if step.reward <= prev {
                return Err(format!(
                    "step {i} reward {:.6} does not improve on {:.6}",
                    step.reward, prev
                ));
            }
            prev = step.reward;
            passed += 7;
        }
        if let Some((best, m)) = &out.result {
            if !env.constraint.satisfied(*m) {
                return Err(format!("accepted result misses the constraint: {m}"));
            }
            if m.to_bits() != env.measure(best).to_bits() {
                return Err("accepted result drifts on re-measure".into());
            }
            passed += 2;
        }
        let replay = search(&env, stmt, measured, 64);
        let key = |o: &sqlgen_core::RefineOutcome| {
            (
                o.evals,
                o.steps.iter().map(|s| s.sql.clone()).collect::<Vec<_>>(),
                o.result.as_ref().map(|(s, m)| (render(s), m.to_bits())),
            )
        };
        if key(&replay) != key(&out) {
            return Err("search is nondeterministic across replays".into());
        }
        passed += 1;
        Ok(passed)
    };

    let mut checks = 0;
    for _ in 0..4 {
        let (stmt, _) = fsm_rollout(&vocab, &cfg, &mut rollout_rng);
        match audit(&stmt) {
            Ok(passed) => checks += passed,
            Err(detail) => {
                return Err(CheckFail::with_stmt(
                    format!("refine-validity: {detail}"),
                    &db,
                    &stmt,
                    &mut |s| audit(s).is_err(),
                ));
            }
        }
    }
    Ok(checks)
}

// ---------------------------------------------------------------------------
// (k) cache equivalence
// ---------------------------------------------------------------------------

/// The sharded LRU result cache must never serve wrong bytes.
///
/// Part 1 model-checks the cache against a plain map under random
/// put/get/clear interleavings and shard counts: with a budget nobody
/// exceeds it behaves exactly like the map; with an eviction-heavy tiny
/// budget a `get` may miss but a hit must return exactly the last body
/// stored for that key, with held bytes never above budget.
///
/// Part 2 checks the serving contract end-to-end: a response body cached
/// after one window is bitwise identical to re-running generation at a
/// different batch width (the purity property that makes full-body caching
/// sound), the key ignores `timeout_ms` (expiry policy, not content), and
/// a seed or model-version change misses (hot-swap invalidation).
pub fn check_cache_equivalence(rng: &mut StdRng) -> CheckResult {
    use sqlgen_rl::{ActorNet, Constraint, NetConfig};
    use sqlgen_serve::{
        outcome_json, run_window, CacheKey, GenRequest, RequestOutcome, ResultCache, ServedQuery,
        WindowRequest,
    };
    use std::collections::HashMap;
    use std::sync::Arc;

    let mut checks = 0;

    let random_constraint = |rng: &mut StdRng| match rng.random_range(0..3) {
        0 => Constraint::cardinality_point(rng.random_range(1..1000) as f64),
        1 => Constraint::cardinality_range(1.0, rng.random_range(2..1_000_000) as f64),
        _ => Constraint::cost_range(1.0, rng.random_range(2..100_000) as f64),
    };
    let random_request = |rng: &mut StdRng| GenRequest {
        schema: String::new(),
        constraint: random_constraint(rng),
        n: rng.random_range(1..=3),
        seed: rng.random(),
        timeout_ms: None,
    };

    // --- part 1a: ample budget — the cache IS a map ------------------------
    let keyspace: Vec<(GenRequest, u64)> = (0..8)
        .map(|_| (random_request(rng), rng.random_range(1..=2)))
        .collect();
    let cache = ResultCache::new(1 << 20, rng.random_range(1..=4), "fuzz-cache");
    let mut model: HashMap<CacheKey, Arc<String>> = HashMap::new();
    for op in 0..60 {
        let (req, version) = &keyspace[rng.random_range(0..keyspace.len())];
        let key = CacheKey::for_request(req, *version);
        match rng.random_range(0..10) {
            0..=3 => {
                let body = Arc::new(format!(
                    "body-{op}-{}",
                    "x".repeat(rng.random_range(0..200))
                ));
                cache.put(key, body.clone());
                model.insert(key, body);
            }
            4..=8 => {
                let got = cache.get(&key);
                let want = model.get(&key);
                if got.as_deref() != want.map(|b| b.as_ref()) {
                    return Err(CheckFail::new(format!(
                        "cache/map diverge on get (op {op}): got {:?}, want {:?}",
                        got.as_deref().map(|b| &b[..b.len().min(24)]),
                        want.map(|b| &b[..b.len().min(24)]),
                    )));
                }
            }
            _ => {
                cache.clear();
                model.clear();
            }
        }
        if cache.len() != model.len() {
            return Err(CheckFail::new(format!(
                "cache holds {} entries, map holds {} (op {op})",
                cache.len(),
                model.len()
            )));
        }
        if model.is_empty() != (cache.bytes() == 0) {
            return Err(CheckFail::new(format!(
                "bytes gauge {} inconsistent with {} entries (op {op})",
                cache.bytes(),
                model.len()
            )));
        }
        checks += 2;
    }

    // --- part 1b: tiny budget — eviction may forget, never corrupt --------
    let budget = rng.random_range(400..1200usize);
    let tiny = ResultCache::new(budget, rng.random_range(1..=2), "fuzz-cache-tiny");
    let mut last: HashMap<CacheKey, Arc<String>> = HashMap::new();
    for op in 0..40 {
        let (req, version) = &keyspace[rng.random_range(0..keyspace.len())];
        let key = CacheKey::for_request(req, *version);
        if rng.random_range(0..2) == 0 {
            let body = Arc::new(format!(
                "tiny-{op}-{}",
                "y".repeat(rng.random_range(0..120))
            ));
            tiny.put(key, body.clone());
            last.insert(key, body);
        } else if let Some(got) = tiny.get(&key) {
            let want = last.get(&key);
            if want.map(|b| b.as_ref()) != Some(got.as_ref()) {
                return Err(CheckFail::new(format!(
                    "evicting cache returned stale/foreign bytes (op {op})"
                )));
            }
        }
        if tiny.bytes() > budget {
            return Err(CheckFail::new(format!(
                "cache holds {} bytes over the {budget}-byte budget (op {op})",
                tiny.bytes()
            )));
        }
        checks += 2;
    }

    // --- part 2: cached response ≡ fresh generation ------------------------
    let db = dbgen::random_database(rng, &DbProfile::parseable());
    let vocab = Vocabulary::build(
        &db,
        &SampleConfig {
            k: 8,
            seed: rng.random(),
            ..Default::default()
        },
    );
    let est = Estimator::build(&db);
    let fsm = FsmConfig::default();
    let actor = ActorNet::new(
        vocab.size(),
        &NetConfig {
            embed_dim: 8,
            hidden: 8,
            layers: 1,
            dropout: 0.0,
        },
        rng.random(),
    );
    let version = rng.random_range(1..100u64);
    let req = random_request(rng);
    let window_req = |req: &GenRequest| WindowRequest {
        constraint: req.constraint,
        n: req.n,
        seed: req.seed,
        deadline: None,
        trace: None,
    };
    let body_for = |lanes: usize, req: &GenRequest| {
        let out = run_window(
            &actor,
            &vocab,
            &est,
            &fsm,
            std::slice::from_ref(&window_req(req)),
            lanes,
            None,
        );
        let queries: Vec<ServedQuery> = out[0]
            .episodes
            .iter()
            .map(|ep| ServedQuery {
                sql: render(&ep.statement),
                measured: ep.measured,
                satisfied: ep.satisfied,
            })
            .collect();
        outcome_json(
            "fuzz",
            req,
            &RequestOutcome {
                queries,
                expired: out[0].expired,
                model_label: "fuzz".to_string(),
                model_version: version,
            },
        )
    };

    let e2e = ResultCache::new(1 << 20, 2, "fuzz-cache-e2e");
    let first = body_for([2usize, 4][rng.random_range(0..2usize)], &req);
    e2e.put(CacheKey::for_request(&req, version), Arc::new(first));

    // Same request with a different timeout_ms keys identically: the hit
    // must be byte-identical to generating fresh at another batch width.
    let mut retimed = req.clone();
    retimed.timeout_ms = Some(rng.random_range(1..60_000));
    let Some(hit) = e2e.get(&CacheKey::for_request(&retimed, version)) else {
        return Err(CheckFail::new("timeout_ms variant missed the cache"));
    };
    let fresh = body_for([1usize, 8][rng.random_range(0..2usize)], &req);
    if *hit != fresh {
        return Err(CheckFail::new(format!(
            "cached response diverges from fresh generation:\n  cached: {hit}\n  fresh:  {fresh}"
        )));
    }
    checks += 2;

    // Seed and model-version changes must miss (hot-swap invalidation).
    let mut reseeded = req.clone();
    reseeded.seed = req.seed.wrapping_add(1);
    if e2e
        .get(&CacheKey::for_request(&reseeded, version))
        .is_some()
    {
        return Err(CheckFail::new("seed change hit the cache"));
    }
    if e2e.get(&CacheKey::for_request(&req, version + 1)).is_some() {
        return Err(CheckFail::new(
            "model-version change hit the cache (stale bytes would survive hot-swap)",
        ));
    }
    checks += 2;
    Ok(checks)
}

/// (l) Paged equivalence: a random database written to disk and read back
/// through a minimum-size buffer pool (two frames, so every scan evicts
/// constantly) is bitwise-identical to the in-memory original — schemas,
/// every cell (floats by bit pattern), cursor scans, and executor
/// cardinalities on random statements. Afterwards the file is deliberately
/// damaged (truncated mid-page or a random byte flipped) and the
/// open/verify path must report corruption: the CRC covers the whole page
/// after the checksum field, so no single-byte tear can slip through.
pub fn check_paged_equivalence(rng: &mut StdRng) -> CheckResult {
    let db = dbgen::random_database(rng, &DbProfile::default());
    let path = std::env::temp_dir().join(format!(
        "sqlgen-fuzz-paged-{}-{:016x}.db",
        std::process::id(),
        rng.random::<u64>()
    ));
    let result = paged_equivalence_case(rng, &db, &path);
    std::fs::remove_file(&path).ok();
    result
}

fn value_bits_eq(a: &sqlgen_storage::Value, b: &sqlgen_storage::Value) -> bool {
    use sqlgen_storage::Value;
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        (Value::Null, Value::Null) => true,
        _ => a == b,
    }
}

fn paged_equivalence_case(rng: &mut StdRng, db: &Database, path: &std::path::Path) -> CheckResult {
    let mut checks = 0u64;
    save_database(db, path).map_err(|e| CheckFail::new(format!("save_database failed: {e}")))?;
    // Pool size 0 clamps to the two-frame minimum: any table spanning more
    // than two pages forces eviction mid-scan.
    let paged = PagedDb::open(path, 0).map_err(|e| CheckFail::new(format!("open failed: {e}")))?;

    if paged.table_names() != db.table_names() {
        return Err(CheckFail::new(format!(
            "table set diverged: paged {:?} vs mem {:?}",
            paged.table_names(),
            db.table_names()
        )));
    }
    checks += 1;

    for name in db.table_names() {
        let mem = db.table(name).expect("listed table exists");
        let disk = paged
            .read_table(name)
            .ok_or_else(|| CheckFail::new(format!("table {name} missing from paged image")))?;
        if format!("{:?}", disk.schema()) != format!("{:?}", mem.schema) {
            return Err(CheckFail::new(format!("schema diverged for table {name}")));
        }
        if TableRead::row_count(disk) != mem.row_count() {
            return Err(CheckFail::new(format!(
                "row count diverged for table {name}: paged {} vs mem {}",
                TableRead::row_count(disk),
                mem.row_count()
            )));
        }
        for (c, col) in mem.columns.iter().enumerate() {
            let mut cur = disk.scan_column(c);
            let mut r = 0usize;
            while let Some(v) = cur.next_value() {
                if r >= mem.row_count() {
                    return Err(CheckFail::new(format!(
                        "cursor overran table {name} column {c} past row {r}"
                    )));
                }
                if !value_bits_eq(&col.get(r), &v) {
                    return Err(CheckFail::new(format!(
                        "cell diverged at {name}.{c}@{r}: paged {v:?} vs mem {:?}",
                        col.get(r)
                    )));
                }
                r += 1;
            }
            if r != mem.row_count() {
                return Err(CheckFail::new(format!(
                    "cursor stopped early on {name} column {c}: {r} of {} rows",
                    mem.row_count()
                )));
            }
        }
        checks += 1;
    }

    // A two-frame pool that filled more than two pages must have evicted.
    let stats = paged.pool_stats();
    if stats.misses > 2 && stats.evictions == 0 {
        return Err(CheckFail::new(format!(
            "{} pool fills with two frames but zero evictions recorded",
            stats.misses
        )));
    }
    checks += 1;

    // Executor differential through the constantly-evicting pool.
    let ex_mem = Executor::new(db);
    let ex_disk = Executor::new(&paged);
    let opts = GenOptions::default();
    for _ in 0..STATEMENTS_PER_CASE {
        let stmt = astgen::random_statement(db, rng, &opts);
        validate(db, &stmt)
            .map_err(|e| CheckFail::new(format!("generator produced invalid statement: {e}")))?;
        let agree = |s: &Statement| match (ex_mem.cardinality(s), ex_disk.cardinality(s)) {
            (Ok(a), Ok(b)) => a == b,
            (Err(_), Err(_)) => true,
            _ => false,
        };
        if !agree(&stmt) {
            let (a, b) = (ex_mem.cardinality(&stmt), ex_disk.cardinality(&stmt));
            return Err(CheckFail::with_stmt(
                format!("in-memory executor {a:?} != paged executor {b:?}"),
                db,
                &stmt,
                &mut |s| !agree(s),
            ));
        }
        checks += 1;
    }
    if paged.verify().is_err() {
        return Err(CheckFail::new("verify failed on an intact file"));
    }
    checks += 1;
    drop(paged);

    // Crash safety: damage the file and demand detection. Either the open
    // path (header/catalog pages) or verify (heap pages) must object.
    let len = std::fs::metadata(path)
        .map_err(|e| CheckFail::new(format!("stat failed: {e}")))?
        .len();
    let n_pages = len / PAGE_SIZE as u64;
    if rng.random_range(0..2u32) == 0 {
        // Torn final page: the tail of the last write never hit the disk.
        let cut = rng.random_range(1..PAGE_SIZE as u64);
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| CheckFail::new(format!("reopen for truncate failed: {e}")))?;
        f.set_len(len - cut)
            .map_err(|e| CheckFail::new(format!("truncate failed: {e}")))?;
    } else {
        // Single-byte flip anywhere past the header page.
        use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
        let page = rng.random_range(1..n_pages.max(2));
        let offset = page * PAGE_SIZE as u64 + rng.random_range(0..PAGE_SIZE as u64);
        let mut f = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| CheckFail::new(format!("reopen for flip failed: {e}")))?;
        let mut b = [0u8; 1];
        f.seek(SeekFrom::Start(offset))
            .and_then(|_| f.read_exact(&mut b))
            .map_err(|e| CheckFail::new(format!("read for flip failed: {e}")))?;
        b[0] ^= 0x40;
        f.seek(SeekFrom::Start(offset))
            .and_then(|_| f.write_all(&b))
            .map_err(|e| CheckFail::new(format!("write for flip failed: {e}")))?;
    }
    let detected = match PagedDb::open(path, 0) {
        Err(_) => true,
        Ok(damaged) => damaged.verify().is_err(),
    };
    if !detected {
        return Err(CheckFail::new(
            "damaged file opened and verified clean (checksum failed to detect corruption)",
        ));
    }
    checks += 1;
    Ok(checks)
}
