//! Query execution.
//!
//! A straightforward hash-join executor over the columnar storage. It is the
//! ground truth the cardinality estimator is validated against, and it
//! implements the environment's "execute the (partial) query" step.
//!
//! Intermediate join results are tuples of row indices (one per table in the
//! `FROM` clause) stored flat with a fixed stride; predicates are compiled
//! once into index-resolved form before the scan.

use crate::ast::*;
use sqlgen_storage::{ColCursor, Column, Database, DbRead, TableRead, Value};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Execution errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    UnknownTable(String),
    UnknownColumn(String),
    /// A scalar subquery returned more than one row.
    NotScalar,
    /// A subquery used where a single output column is required returned a
    /// different arity.
    NotSingleColumn,
    /// Aggregate applied to a non-numeric column.
    TypeError(String),
    /// The intermediate result exceeded [`ExecOptions::max_rows`].
    TooLarge,
    /// Execution ran past [`ExecOptions::deadline`].
    Timeout,
    /// `INSERT` row arity does not match the table.
    ArityMismatch(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnknownTable(t) => write!(f, "unknown table {t}"),
            ExecError::UnknownColumn(c) => write!(f, "unknown column {c}"),
            ExecError::NotScalar => write!(f, "scalar subquery returned more than one row"),
            ExecError::NotSingleColumn => write!(f, "subquery must return a single column"),
            ExecError::TypeError(m) => write!(f, "type error: {m}"),
            ExecError::TooLarge => write!(f, "intermediate result exceeded row limit"),
            ExecError::Timeout => write!(f, "execution deadline exceeded"),
            ExecError::ArityMismatch(t) => write!(f, "row arity mismatch for table {t}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Executor limits.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Abort when an intermediate join result exceeds this many tuples.
    pub max_rows: usize,
    /// Abort with [`ExecError::Timeout`] once execution runs past this
    /// instant. Checked cooperatively every few thousand tuples, so a
    /// paged scan never stalls a training step indefinitely. `None`
    /// (the default) disables the check and keeps execution fully
    /// deterministic.
    pub deadline: Option<std::time::Instant>,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            max_rows: 5_000_000,
            deadline: None,
        }
    }
}

/// How often (in tuples) the cooperative deadline check fires.
const DEADLINE_STRIDE: usize = 4096;

/// Hashable normalization of a [`Value`] for join/group keys.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum HashKey {
    Null,
    Num(u64),
    Text(String),
}

fn hash_key(v: &Value) -> HashKey {
    match v {
        Value::Null => HashKey::Null,
        // Normalize Int and Float to the same key space so INT-FLOAT
        // equi-joins behave like the comparison semantics in `Value`.
        Value::Int(i) => HashKey::Num((*i as f64).to_bits()),
        Value::Float(f) => {
            // -0.0 must key like 0.0 (they compare Equal), and every NaN
            // payload collapses to one key so GROUP BY puts all NaN rows in
            // a single group.
            let f = if *f == 0.0 {
                0.0
            } else if f.is_nan() {
                f64::NAN
            } else {
                *f
            };
            HashKey::Num(f.to_bits())
        }
        Value::Text(s) => HashKey::Text(s.clone()),
    }
}

/// Key used where hash equality must mirror `Value::try_cmp` equality
/// (join matching and IN-sets): NaN compares equal to nothing, so it gets
/// no key at all.
fn eq_key(v: &Value) -> Option<HashKey> {
    match v {
        Value::Float(f) if f.is_nan() => None,
        _ => Some(hash_key(v)),
    }
}

/// A materialized query result.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
}

impl ResultSet {
    pub fn cardinality(&self) -> u64 {
        self.rows.len() as u64
    }
}

/// Flat tuple storage: `stride` row indices per joined tuple.
struct TupleSet {
    stride: usize,
    data: Vec<u32>,
}

impl TupleSet {
    fn len(&self) -> usize {
        self.data.len().checked_div(self.stride).unwrap_or(0)
    }

    fn tuple(&self, i: usize) -> &[u32] {
        &self.data[i * self.stride..(i + 1) * self.stride]
    }
}

/// The query executor. Borrow a database, execute statements.
///
/// Generic over the storage backend: `D` defaults to the in-memory
/// [`Database`], and [`sqlgen_storage::PagedDb`] plugs in unchanged —
/// the same plans run over disk pages through the buffer pool.
pub struct Executor<'a, D: DbRead = Database> {
    db: &'a D,
    opts: ExecOptions,
}

impl<'a, D: DbRead> Executor<'a, D> {
    pub fn new(db: &'a D) -> Self {
        Executor {
            db,
            opts: ExecOptions::default(),
        }
    }

    pub fn with_options(db: &'a D, opts: ExecOptions) -> Self {
        Executor { db, opts }
    }

    /// Cooperative deadline check, amortized over [`DEADLINE_STRIDE`] tuples.
    fn check_deadline(&self, counter: usize) -> Result<(), ExecError> {
        if counter.is_multiple_of(DEADLINE_STRIDE) {
            if let Some(d) = self.opts.deadline {
                if std::time::Instant::now() >= d {
                    return Err(ExecError::Timeout);
                }
            }
        }
        Ok(())
    }

    /// Executes a statement and returns its cardinality: the result-set size
    /// for `SELECT`, the number of affected rows for DML. Never mutates the
    /// database (DML is a dry run; use [`Executor::apply`] to mutate).
    pub fn cardinality(&self, stmt: &Statement) -> Result<u64, ExecError> {
        match stmt {
            Statement::Select(q) => Ok(self.execute_select(q)?.cardinality()),
            Statement::Insert(i) => match &i.source {
                InsertSource::Values(_) => {
                    // Validate the target exists so invalid inserts error out.
                    self.db
                        .read_table(&i.table)
                        .ok_or_else(|| ExecError::UnknownTable(i.table.clone()))?;
                    Ok(1)
                }
                InsertSource::Query(q) => Ok(self.execute_select(q)?.cardinality()),
            },
            Statement::Update(u) => self.matching_rows(&u.table, u.predicate.as_ref()),
            Statement::Delete(d) => self.matching_rows(&d.table, d.predicate.as_ref()),
        }
    }

    /// Executes a `SELECT` and materializes its result.
    pub fn execute_select(&self, q: &SelectQuery) -> Result<ResultSet, ExecError> {
        let tables = q.from.tables();
        let cols: Vec<&D::Table> = tables
            .iter()
            .map(|t| {
                self.db
                    .read_table(t)
                    .ok_or_else(|| ExecError::UnknownTable(t.to_string()))
            })
            .collect::<Result<_, _>>()?;

        // 1. Join phase.
        let tuples = self.join_phase(q, &cols)?;

        // 2. Filter phase.
        let compiled = match &q.predicate {
            Some(p) => Some(self.compile_pred(p, q, &cols)?),
            None => None,
        };
        let mut kept: Vec<usize> = Vec::new();
        for i in 0..tuples.len() {
            self.check_deadline(i)?;
            let t = tuples.tuple(i);
            let ok = match &compiled {
                Some(p) => eval_pred(p, t, &cols),
                None => true,
            };
            if ok {
                kept.push(i);
            }
        }

        // 3. Projection / aggregation phase.
        let mut rs = if q.is_aggregate() {
            self.aggregate_phase(q, &cols, &tuples, &kept)?
        } else {
            let resolved = self.resolve_items(q, &cols)?;
            let mut rows = Vec::with_capacity(kept.len());
            for &i in &kept {
                let t = tuples.tuple(i);
                let row: Vec<Value> = resolved
                    .iter()
                    .map(|&(slot, col)| cols[slot].value(col, t[slot] as usize))
                    .collect();
                rows.push(row);
            }
            let columns = item_names(q);
            ResultSet { columns, rows }
        };

        // 4. ORDER BY over the materialized output columns.
        if !q.order_by.is_empty() {
            let keys: Vec<(usize, bool)> = q
                .order_by
                .iter()
                .map(|o| {
                    let name = o.col.to_string();
                    rs.columns
                        .iter()
                        .position(|c| *c == name)
                        .map(|i| (i, o.desc))
                        .ok_or_else(|| ExecError::UnknownColumn(name.clone()))
                })
                .collect::<Result<_, _>>()?;
            // `total_cmp`, not `try_cmp`: NULL/NaN keys have no SQL ordering
            // and "equal to everything" is not transitive, which makes
            // `sort_by` panic on larger inputs.
            rs.rows.sort_by(|a, b| {
                for &(i, desc) in &keys {
                    let ord = a[i].total_cmp(&b[i]);
                    let ord = if desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
        }
        Ok(rs)
    }
}

/// DML mutation is only defined for the in-memory backend: the RL
/// environment's INSERT/UPDATE/DELETE rewards are dry-run counts, and
/// the paged store is written once by [`sqlgen_storage::PagedDbWriter`].
impl<'a> Executor<'a, Database> {
    /// Applies a DML statement, mutating the database. Returns affected rows.
    pub fn apply(stmt: &Statement, db: &mut Database) -> Result<u64, ExecError> {
        match stmt {
            Statement::Select(_) => {
                let ex = Executor::new(db);
                ex.cardinality(stmt)
            }
            Statement::Insert(i) => {
                let rows: Vec<Vec<Value>> = match &i.source {
                    InsertSource::Values(vals) => vec![vals.clone()],
                    InsertSource::Query(q) => {
                        let ex = Executor::new(db);
                        ex.execute_select(q)?.rows
                    }
                };
                let table = db
                    .table_mut(&i.table)
                    .ok_or_else(|| ExecError::UnknownTable(i.table.clone()))?;
                let n = rows.len() as u64;
                for row in rows {
                    if row.len() != table.schema.columns.len() {
                        return Err(ExecError::ArityMismatch(i.table.clone()));
                    }
                    table.push_row(row);
                }
                Ok(n)
            }
            Statement::Update(u) => {
                let (matched, set_idx) = {
                    let ex = Executor::new(db);
                    let matched = ex.matching_row_indices(&u.table, u.predicate.as_ref())?;
                    let schema = db
                        .schema(&u.table)
                        .ok_or_else(|| ExecError::UnknownTable(u.table.clone()))?;
                    let mut set_idx = Vec::new();
                    for (c, v) in &u.sets {
                        let idx = schema
                            .column_index(c)
                            .ok_or_else(|| ExecError::UnknownColumn(c.clone()))?;
                        set_idx.push((idx, v.clone()));
                    }
                    (matched, set_idx)
                };
                let table = db.table_mut(&u.table).expect("checked above");
                for &row in &matched {
                    for (idx, v) in &set_idx {
                        set_cell(&mut table.columns[*idx], row, v)?;
                    }
                }
                Ok(matched.len() as u64)
            }
            Statement::Delete(d) => {
                let matched = {
                    let ex = Executor::new(db);
                    ex.matching_row_indices(&d.table, d.predicate.as_ref())?
                };
                let table = db.table_mut(&d.table).expect("checked above");
                let dead: HashSet<usize> = matched.iter().copied().collect();
                for col in &mut table.columns {
                    retain_rows(col, &dead);
                }
                Ok(matched.len() as u64)
            }
        }
    }
}

impl<'a, D: DbRead> Executor<'a, D> {
    fn matching_rows(&self, table: &str, pred: Option<&Predicate>) -> Result<u64, ExecError> {
        Ok(self.matching_row_indices(table, pred)?.len() as u64)
    }

    fn matching_row_indices(
        &self,
        table: &str,
        pred: Option<&Predicate>,
    ) -> Result<Vec<usize>, ExecError> {
        let t = self
            .db
            .read_table(table)
            .ok_or_else(|| ExecError::UnknownTable(table.to_string()))?;
        let q = SelectQuery::scan(table, Vec::new());
        let cols = vec![t];
        let compiled = match pred {
            Some(p) => Some(self.compile_pred(p, &q, &cols)?),
            None => None,
        };
        let mut out = Vec::new();
        for row in 0..t.row_count() {
            self.check_deadline(row)?;
            let tup = [row as u32];
            let ok = match &compiled {
                Some(p) => eval_pred(p, &tup, &cols),
                None => true,
            };
            if ok {
                out.push(row);
            }
        }
        Ok(out)
    }

    // --- join -----------------------------------------------------------

    fn join_phase(&self, q: &SelectQuery, cols: &[&D::Table]) -> Result<TupleSet, ExecError> {
        let stride = cols.len();
        let base_rows = cols[0].row_count();
        let mut tuples = TupleSet {
            stride,
            data: Vec::with_capacity(base_rows.min(self.opts.max_rows) * stride),
        };
        for i in 0..base_rows {
            let mut t = vec![u32::MAX; stride];
            t[0] = i as u32;
            tuples.data.extend_from_slice(&t);
        }

        for (join_no, join) in q.from.joins.iter().enumerate() {
            let right_slot = join_no + 1;
            // Resolve the probe side (left) column: it lives in one of the
            // already-populated slots.
            let left_slot = q.from.tables()[..right_slot]
                .iter()
                .position(|t| *t == join.left.table)
                .ok_or_else(|| ExecError::UnknownTable(join.left.table.clone()))?;
            let left_col = column_of(cols[left_slot], &join.left.column)?;
            let right_col = column_of(cols[right_slot], &join.right.column)?;

            // Build a hash table over the (smaller) right table. The build
            // side is a sequential scan, so it goes through the cursor —
            // on the paged backend this pins one page at a time.
            let mut index: HashMap<HashKey, Vec<u32>> = HashMap::new();
            let mut build = cols[right_slot].scan_column(right_col);
            for r in 0..cols[right_slot].row_count() {
                self.check_deadline(r)?;
                let v = build.next_value().expect("cursor shorter than row_count");
                if let Some(key) = eq_key(&v) {
                    index.entry(key).or_default().push(r as u32);
                }
            }
            drop(build);

            let mut next = Vec::new();
            for i in 0..tuples.len() {
                self.check_deadline(i)?;
                let t = tuples.tuple(i);
                let key = eq_key(&cols[left_slot].value(left_col, t[left_slot] as usize));
                if let Some(matches) = key.and_then(|k| index.get(&k)) {
                    for &r in matches {
                        next.extend_from_slice(t);
                        let at = next.len() - stride + right_slot;
                        next[at] = r;
                        if next.len() / stride > self.opts.max_rows {
                            return Err(ExecError::TooLarge);
                        }
                    }
                }
            }
            tuples.data = next;
        }
        Ok(tuples)
    }

    // --- predicates -----------------------------------------------------

    fn compile_pred(
        &self,
        p: &Predicate,
        q: &SelectQuery,
        cols: &[&D::Table],
    ) -> Result<CompiledPred, ExecError> {
        Ok(match p {
            Predicate::Cmp { col, op, rhs } => {
                let (slot, cidx) = self.resolve(col, q, cols)?;
                let value = match rhs {
                    Rhs::Value(v) => Some(v.clone()),
                    Rhs::Subquery(sub) => self.scalar_subquery(sub)?,
                };
                CompiledPred::Cmp {
                    slot,
                    col: cidx,
                    op: *op,
                    value,
                }
            }
            Predicate::In { col, sub } => {
                let (slot, cidx) = self.resolve(col, q, cols)?;
                let set = self.value_set_subquery(sub)?;
                CompiledPred::In {
                    slot,
                    col: cidx,
                    set,
                }
            }
            Predicate::Like { col, pattern } => {
                let (slot, cidx) = self.resolve(col, q, cols)?;
                CompiledPred::Like {
                    slot,
                    col: cidx,
                    tokens: compile_like(pattern),
                }
            }
            Predicate::Exists { sub } => {
                // Uncorrelated EXISTS is a constant per query.
                let nonempty = self.execute_select(sub)?.cardinality() > 0;
                CompiledPred::Const(nonempty)
            }
            Predicate::Not(inner) => {
                CompiledPred::Not(Box::new(self.compile_pred(inner, q, cols)?))
            }
            Predicate::And(a, b) => CompiledPred::And(
                Box::new(self.compile_pred(a, q, cols)?),
                Box::new(self.compile_pred(b, q, cols)?),
            ),
            Predicate::Or(a, b) => CompiledPred::Or(
                Box::new(self.compile_pred(a, q, cols)?),
                Box::new(self.compile_pred(b, q, cols)?),
            ),
        })
    }

    /// Evaluates a scalar subquery; `None` encodes SQL NULL (empty result).
    fn scalar_subquery(&self, sub: &SelectQuery) -> Result<Option<Value>, ExecError> {
        let rs = self.execute_select(sub)?;
        if rs.rows.is_empty() {
            return Ok(None);
        }
        if rs.rows.len() > 1 {
            return Err(ExecError::NotScalar);
        }
        if rs.rows[0].len() != 1 {
            return Err(ExecError::NotSingleColumn);
        }
        Ok(Some(rs.rows[0][0].clone()))
    }

    fn value_set_subquery(&self, sub: &SelectQuery) -> Result<HashSet<HashKey>, ExecError> {
        let rs = self.execute_select(sub)?;
        let mut set = HashSet::with_capacity(rs.rows.len());
        for row in &rs.rows {
            if row.len() != 1 {
                return Err(ExecError::NotSingleColumn);
            }
            // NaN never equals anything, so it can't contribute a match.
            if let Some(key) = eq_key(&row[0]) {
                set.insert(key);
            }
        }
        Ok(set)
    }

    fn resolve(
        &self,
        col: &ColRef,
        q: &SelectQuery,
        cols: &[&D::Table],
    ) -> Result<(usize, usize), ExecError> {
        let slot = q
            .from
            .tables()
            .iter()
            .position(|t| *t == col.table)
            .ok_or_else(|| ExecError::UnknownTable(col.table.clone()))?;
        let cidx = cols[slot]
            .schema()
            .column_index(&col.column)
            .ok_or_else(|| ExecError::UnknownColumn(col.to_string()))?;
        Ok((slot, cidx))
    }

    fn resolve_items(
        &self,
        q: &SelectQuery,
        cols: &[&D::Table],
    ) -> Result<Vec<(usize, usize)>, ExecError> {
        if q.select.is_empty() {
            // SELECT *: every column of every table.
            let mut out = Vec::new();
            for (slot, t) in cols.iter().enumerate() {
                for c in 0..t.schema().columns.len() {
                    out.push((slot, c));
                }
            }
            return Ok(out);
        }
        q.select
            .iter()
            .map(|item| self.resolve(item.col_ref(), q, cols))
            .collect()
    }

    // --- aggregation ----------------------------------------------------

    fn aggregate_phase(
        &self,
        q: &SelectQuery,
        cols: &[&D::Table],
        tuples: &TupleSet,
        kept: &[usize],
    ) -> Result<ResultSet, ExecError> {
        let group_cols: Vec<(usize, usize)> = q
            .group_by
            .iter()
            .map(|c| self.resolve(c, q, cols))
            .collect::<Result<_, _>>()?;

        // Group tuples by group-by key (a single empty group when there is
        // no GROUP BY, matching SQL's semantics for plain aggregates).
        let mut groups: HashMap<Vec<HashKey>, Vec<usize>> = HashMap::new();
        if group_cols.is_empty() {
            groups.insert(Vec::new(), kept.to_vec());
        } else {
            for &i in kept {
                let t = tuples.tuple(i);
                let key: Vec<HashKey> = group_cols
                    .iter()
                    .map(|&(slot, c)| hash_key(&cols[slot].value(c, t[slot] as usize)))
                    .collect();
                groups.entry(key).or_default().push(i);
            }
        }

        // Resolve select items and the HAVING clause.
        struct ResolvedItem {
            agg: Option<AggFunc>,
            slot: usize,
            col: usize,
        }
        let items: Vec<ResolvedItem> = q
            .select
            .iter()
            .map(|item| {
                let (slot, col) = self.resolve(item.col_ref(), q, cols)?;
                Ok(ResolvedItem {
                    agg: match item {
                        SelectItem::Agg(f, _) => Some(*f),
                        SelectItem::Column(_) => None,
                    },
                    slot,
                    col,
                })
            })
            .collect::<Result<_, ExecError>>()?;

        let having = match &q.having {
            Some(h) => {
                let (slot, col) = self.resolve(&h.col, q, cols)?;
                let value = match &h.rhs {
                    Rhs::Value(v) => Some(v.clone()),
                    Rhs::Subquery(sub) => self.scalar_subquery(sub)?,
                };
                Some((h.agg, slot, col, h.op, value))
            }
            None => None,
        };

        // Deterministic output order: sort group keys.
        let mut entries: Vec<(Vec<HashKey>, Vec<usize>)> = groups.into_iter().collect();
        entries.sort_by(|a, b| format!("{:?}", a.0).cmp(&format!("{:?}", b.0)));

        let mut rows = Vec::new();
        for (_key, members) in &entries {
            if let Some((agg, slot, col, op, rhs)) = &having {
                let v = compute_agg(*agg, *slot, *col, members, tuples, cols)?;
                let pass = match rhs {
                    Some(r) => op.eval(v.try_cmp(r)),
                    None => false,
                };
                if !pass {
                    continue;
                }
            }
            let mut row = Vec::with_capacity(items.len());
            for item in &items {
                match item.agg {
                    Some(f) => {
                        row.push(compute_agg(f, item.slot, item.col, members, tuples, cols)?)
                    }
                    None => {
                        // Grouped column: take it from the first member.
                        let v = members.first().map(|&i| {
                            let t = tuples.tuple(i);
                            cols[item.slot].value(item.col, t[item.slot] as usize)
                        });
                        row.push(v.unwrap_or(Value::Null));
                    }
                }
            }
            rows.push(row);
        }
        Ok(ResultSet {
            columns: item_names(q),
            rows,
        })
    }
}

fn item_names(q: &SelectQuery) -> Vec<String> {
    q.select
        .iter()
        .map(|item| match item {
            SelectItem::Column(c) => c.to_string(),
            SelectItem::Agg(f, c) => format!("{}({})", f.name(), c),
        })
        .collect()
}

fn compute_agg<T: TableRead>(
    f: AggFunc,
    slot: usize,
    col: usize,
    members: &[usize],
    tuples: &TupleSet,
    cols: &[&T],
) -> Result<Value, ExecError> {
    if f == AggFunc::Count {
        return Ok(Value::Int(members.len() as i64));
    }
    let mut acc: Option<f64> = None;
    let mut sum = 0.0;
    for &i in members {
        let t = tuples.tuple(i);
        let v = cols[slot].value(col, t[slot] as usize);
        let x = v
            .as_f64()
            .ok_or_else(|| ExecError::TypeError(format!("{} over non-numeric column", f.name())))?;
        sum += x;
        acc = Some(match (acc, f) {
            (None, _) => x,
            (Some(a), AggFunc::Max) => a.max(x),
            (Some(a), AggFunc::Min) => a.min(x),
            (Some(a), _) => a, // Sum/Avg tracked via `sum`
        });
    }
    let n = members.len();
    Ok(match f {
        AggFunc::Count => unreachable!(),
        AggFunc::Max | AggFunc::Min => acc.map(Value::Float).unwrap_or(Value::Null),
        AggFunc::Sum => {
            if n == 0 {
                Value::Null
            } else {
                Value::Float(sum)
            }
        }
        AggFunc::Avg => {
            if n == 0 {
                Value::Null
            } else {
                Value::Float(sum / n as f64)
            }
        }
    })
}

fn column_of<T: TableRead>(table: &T, name: &str) -> Result<usize, ExecError> {
    table
        .schema()
        .column_index(name)
        .ok_or_else(|| ExecError::UnknownColumn(format!("{}.{}", table.schema().name, name)))
}

fn set_cell(col: &mut Column, row: usize, v: &Value) -> Result<(), ExecError> {
    match (col, v) {
        (Column::Int(c), Value::Int(x)) => c[row] = *x,
        (Column::Float(c), Value::Float(x)) => c[row] = *x,
        (Column::Float(c), Value::Int(x)) => c[row] = *x as f64,
        (Column::Text(c), Value::Text(x)) => c[row] = x.clone(),
        _ => {
            return Err(ExecError::TypeError(
                "UPDATE value type does not match column".into(),
            ))
        }
    }
    Ok(())
}

fn retain_rows(col: &mut Column, dead: &HashSet<usize>) {
    match col {
        Column::Int(v) => {
            let mut i = 0;
            v.retain(|_| {
                let keep = !dead.contains(&i);
                i += 1;
                keep
            });
        }
        Column::Float(v) => {
            let mut i = 0;
            v.retain(|_| {
                let keep = !dead.contains(&i);
                i += 1;
                keep
            });
        }
        Column::Text(v) => {
            let mut i = 0;
            v.retain(|_| {
                let keep = !dead.contains(&i);
                i += 1;
                keep
            });
        }
    }
}

/// One element of a compiled `LIKE` pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LikeTok {
    /// A literal character (including those written as `\%`, `\_`, `\\`).
    Lit(char),
    /// `_`: exactly one character.
    One,
    /// `%`: any run of characters, possibly empty.
    Any,
}

/// Compiles a `LIKE` pattern, honoring `\` escapes: `\%`, `\_` and `\\`
/// match the escaped character literally. A trailing lone `\` matches
/// itself (there is nothing left for it to escape).
fn compile_like(pattern: &str) -> Vec<LikeTok> {
    let mut out = Vec::new();
    let mut it = pattern.chars();
    while let Some(c) = it.next() {
        out.push(match c {
            '\\' => LikeTok::Lit(it.next().unwrap_or('\\')),
            '%' => LikeTok::Any,
            '_' => LikeTok::One,
            c => LikeTok::Lit(c),
        });
    }
    out
}

/// SQL `LIKE` matching with `%` (any run) and `_` (any single char)
/// wildcards and `\` escapes, via iterative backtracking over `%`
/// positions.
pub fn like_match(pattern: &str, text: &str) -> bool {
    like_match_tokens(&compile_like(pattern), text)
}

fn like_match_tokens(p: &[LikeTok], text: &str) -> bool {
    let t: Vec<char> = text.chars().collect();
    let (mut pi, mut ti) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None; // (pattern idx after %, text idx)
    while ti < t.len() {
        match p.get(pi) {
            Some(LikeTok::One) => {
                pi += 1;
                ti += 1;
            }
            Some(&LikeTok::Lit(c)) if c == t[ti] => {
                pi += 1;
                ti += 1;
            }
            Some(LikeTok::Any) => {
                star = Some((pi + 1, ti));
                pi += 1;
            }
            _ => {
                if let Some((sp, st)) = star {
                    // Backtrack: let the last % absorb one more character.
                    pi = sp;
                    ti = st + 1;
                    star = Some((sp, st + 1));
                } else {
                    return false;
                }
            }
        }
    }
    while matches!(p.get(pi), Some(LikeTok::Any)) {
        pi += 1;
    }
    pi == p.len()
}

/// If `pattern` contains no live wildcards (every `%`/`_` is escaped),
/// returns the literal string it matches, with escapes removed. The
/// estimator uses this to route such patterns through equality
/// selectivity so estimator and executor agree.
pub fn like_literal(pattern: &str) -> Option<String> {
    let mut out = String::new();
    for tok in compile_like(pattern) {
        match tok {
            LikeTok::Lit(c) => out.push(c),
            LikeTok::One | LikeTok::Any => return None,
        }
    }
    Some(out)
}

/// Compiled predicate with resolved column slots.
enum CompiledPred {
    Cmp {
        slot: usize,
        col: usize,
        op: CmpOp,
        /// `None` is SQL NULL: the comparison is never satisfied.
        value: Option<Value>,
    },
    In {
        slot: usize,
        col: usize,
        set: HashSet<HashKey>,
    },
    Like {
        slot: usize,
        col: usize,
        /// Pattern pre-compiled once instead of per row.
        tokens: Vec<LikeTok>,
    },
    Const(bool),
    Not(Box<CompiledPred>),
    And(Box<CompiledPred>, Box<CompiledPred>),
    Or(Box<CompiledPred>, Box<CompiledPred>),
}

fn eval_pred<T: TableRead>(p: &CompiledPred, tuple: &[u32], cols: &[&T]) -> bool {
    match p {
        CompiledPred::Cmp {
            slot,
            col,
            op,
            value,
        } => match value {
            Some(v) => {
                let lhs = cols[*slot].value(*col, tuple[*slot] as usize);
                op.eval(lhs.try_cmp(v))
            }
            None => false,
        },
        CompiledPred::In { slot, col, set } => {
            let lhs = cols[*slot].value(*col, tuple[*slot] as usize);
            eq_key(&lhs).is_some_and(|k| set.contains(&k))
        }
        CompiledPred::Like { slot, col, tokens } => {
            match cols[*slot].value(*col, tuple[*slot] as usize) {
                Value::Text(s) => like_match_tokens(tokens, &s),
                _ => false, // LIKE over non-text is never true
            }
        }
        CompiledPred::Const(b) => *b,
        CompiledPred::Not(inner) => !eval_pred(inner, tuple, cols),
        CompiledPred::And(a, b) => eval_pred(a, tuple, cols) && eval_pred(b, tuple, cols),
        CompiledPred::Or(a, b) => eval_pred(a, tuple, cols) || eval_pred(b, tuple, cols),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use sqlgen_storage::{ColumnDef, DataType, Table, TableSchema};

    /// students(id, age) x 10; scores(sid -> students.id, points) x 20.
    fn db() -> Database {
        let mut db = Database::new();
        let mut students = Table::new(
            TableSchema::new("students")
                .with_column(ColumnDef::new("id", DataType::Int))
                .with_primary_key()
                .with_column(ColumnDef::new("age", DataType::Int)),
        );
        for i in 0..10 {
            students.push_row(vec![Value::Int(i), Value::Int(18 + (i % 5))]);
        }
        let mut scores = Table::new(
            TableSchema::new("scores")
                .with_column(ColumnDef::new("sid", DataType::Int))
                .with_foreign_key("students", "id")
                .with_column(ColumnDef::new("points", DataType::Float)),
        );
        for i in 0..20 {
            scores.push_row(vec![
                Value::Int(i % 10),
                Value::Float(50.0 + (i * 2) as f64),
            ]);
        }
        db.add_table(students);
        db.add_table(scores);
        db
    }

    fn card(db: &Database, sql: &str) -> u64 {
        let stmt = parse(sql).unwrap();
        Executor::new(db).cardinality(&stmt).unwrap()
    }

    #[test]
    fn scan_and_filter() {
        let db = db();
        assert_eq!(card(&db, "SELECT students.id FROM students"), 10);
        assert_eq!(
            card(
                &db,
                "SELECT students.id FROM students WHERE students.age < 20"
            ),
            4 // ages 18,19 × 2 students each
        );
        assert_eq!(
            card(
                &db,
                "SELECT students.id FROM students WHERE students.age = 18"
            ),
            2
        );
    }

    #[test]
    fn and_or_not() {
        let db = db();
        assert_eq!(
            card(
                &db,
                "SELECT students.id FROM students WHERE students.age = 18 OR students.age = 19"
            ),
            4
        );
        assert_eq!(
            card(
                &db,
                "SELECT students.id FROM students WHERE students.age >= 18 AND students.age <= 19"
            ),
            4
        );
        assert_eq!(
            card(
                &db,
                "SELECT students.id FROM students WHERE NOT students.age = 18"
            ),
            8
        );
    }

    #[test]
    fn fk_join() {
        let db = db();
        // Every score row matches exactly one student.
        assert_eq!(
            card(
                &db,
                "SELECT scores.points FROM scores JOIN students ON scores.sid = students.id"
            ),
            20
        );
        // Filter on the joined dimension.
        assert_eq!(
            card(
                &db,
                "SELECT scores.points FROM scores JOIN students ON scores.sid = students.id \
                 WHERE students.age = 18"
            ),
            4
        );
    }

    #[test]
    fn aggregates() {
        let db = db();
        let rs = Executor::new(&db)
            .execute_select(
                &crate::parse::parse_select("SELECT COUNT(scores.sid) FROM scores").unwrap(),
            )
            .unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Int(20)]]);

        let rs = Executor::new(&db)
            .execute_select(
                &crate::parse::parse_select(
                    "SELECT MAX(scores.points) FROM scores WHERE scores.sid = 0",
                )
                .unwrap(),
            )
            .unwrap();
        // sid 0 appears at i = 0 and i = 10 → points 50 and 70.
        assert_eq!(rs.rows, vec![vec![Value::Float(70.0)]]);
    }

    #[test]
    fn group_by_and_having() {
        let db = db();
        // 10 distinct sids.
        assert_eq!(
            card(
                &db,
                "SELECT scores.sid, COUNT(scores.points) FROM scores GROUP BY scores.sid"
            ),
            10
        );
        // Every sid has exactly 2 rows, so SUM(points) > 130 keeps sids with
        // points pair summing above 130: pairs are (50+70)=120, (52+72)=124,
        // ..., (68+88)=156. Sums: 120,124,...,156 → >130 keeps 9 of 10? Let's
        // just check monotonicity with two thresholds.
        let lo = card(
            &db,
            "SELECT scores.sid FROM scores GROUP BY scores.sid HAVING SUM(scores.points) > 120",
        );
        let hi = card(
            &db,
            "SELECT scores.sid FROM scores GROUP BY scores.sid HAVING SUM(scores.points) > 150",
        );
        assert!(lo > hi);
        assert_eq!(
            card(
                &db,
                "SELECT scores.sid FROM scores GROUP BY scores.sid HAVING COUNT(scores.points) = 2"
            ),
            10
        );
    }

    #[test]
    fn in_subquery() {
        let db = db();
        assert_eq!(
            card(
                &db,
                "SELECT scores.points FROM scores WHERE scores.sid IN \
                 (SELECT students.id FROM students WHERE students.age = 18)"
            ),
            4
        );
    }

    #[test]
    fn exists_subquery_is_constant() {
        let db = db();
        assert_eq!(
            card(
                &db,
                "SELECT students.id FROM students WHERE EXISTS \
                 (SELECT scores.sid FROM scores WHERE scores.points > 1000.0)"
            ),
            0
        );
        assert_eq!(
            card(
                &db,
                "SELECT students.id FROM students WHERE EXISTS \
                 (SELECT scores.sid FROM scores WHERE scores.points > 0.0)"
            ),
            10
        );
    }

    #[test]
    fn scalar_subquery_compare() {
        let db = db();
        // MAX(points) = 88, so points > (SELECT AVG) keeps the top half.
        let n = card(
            &db,
            "SELECT scores.points FROM scores WHERE scores.points > \
             (SELECT AVG(scores.points) FROM scores)",
        );
        assert_eq!(n, 10);
    }

    #[test]
    fn scalar_subquery_multirow_errors() {
        let db = db();
        let stmt = parse(
            "SELECT scores.points FROM scores WHERE scores.points > \
             (SELECT students.age FROM students)",
        )
        .unwrap();
        assert_eq!(
            Executor::new(&db).cardinality(&stmt),
            Err(ExecError::NotScalar)
        );
    }

    #[test]
    fn dml_dry_run_counts() {
        let db = db();
        assert_eq!(card(&db, "INSERT INTO students VALUES (99, 30)"), 1);
        assert_eq!(
            card(&db, "UPDATE students SET age = 21 WHERE students.age = 18"),
            2
        );
        assert_eq!(card(&db, "DELETE FROM scores WHERE scores.sid < 3"), 6);
        // Dry run: nothing changed.
        assert_eq!(card(&db, "SELECT scores.sid FROM scores"), 20);
    }

    #[test]
    fn dml_apply_mutates() {
        let mut db = db();
        let n = Executor::apply(
            &parse("DELETE FROM scores WHERE scores.sid < 3").unwrap(),
            &mut db,
        )
        .unwrap();
        assert_eq!(n, 6);
        assert_eq!(card(&db, "SELECT scores.sid FROM scores"), 14);

        let n = Executor::apply(
            &parse("INSERT INTO students VALUES (99, 30)").unwrap(),
            &mut db,
        )
        .unwrap();
        assert_eq!(n, 1);
        assert_eq!(card(&db, "SELECT students.id FROM students"), 11);

        let n = Executor::apply(
            &parse("UPDATE students SET age = 50 WHERE students.id = 99").unwrap(),
            &mut db,
        )
        .unwrap();
        assert_eq!(n, 1);
        assert_eq!(
            card(
                &db,
                "SELECT students.id FROM students WHERE students.age = 50"
            ),
            1
        );
    }

    #[test]
    fn insert_from_query_apply() {
        let mut db = db();
        let n = Executor::apply(
            &parse("INSERT INTO students SELECT students.id, students.age FROM students WHERE students.age = 18")
                .unwrap(),
            &mut db,
        )
        .unwrap();
        assert_eq!(n, 2);
        assert_eq!(card(&db, "SELECT students.id FROM students"), 12);
    }

    #[test]
    fn unknown_table_and_column_error() {
        let db = db();
        let stmt = parse("SELECT nope.a FROM nope").unwrap();
        assert!(matches!(
            Executor::new(&db).cardinality(&stmt),
            Err(ExecError::UnknownTable(_))
        ));
        let stmt = parse("SELECT students.nope FROM students").unwrap();
        assert!(matches!(
            Executor::new(&db).cardinality(&stmt),
            Err(ExecError::UnknownColumn(_))
        ));
    }

    #[test]
    fn row_limit_guard() {
        let db = db();
        let ex = Executor::with_options(
            &db,
            ExecOptions {
                max_rows: 5,
                ..Default::default()
            },
        );
        let stmt =
            parse("SELECT scores.points FROM scores JOIN students ON scores.sid = students.id")
                .unwrap();
        assert_eq!(ex.cardinality(&stmt), Err(ExecError::TooLarge));
    }

    #[test]
    fn select_star_projects_all_columns() {
        let db = db();
        let rs = Executor::new(&db)
            .execute_select(&crate::parse::parse_select("SELECT * FROM students").unwrap())
            .unwrap();
        assert_eq!(rs.rows[0].len(), 2);
        assert_eq!(rs.rows.len(), 10);
    }

    #[test]
    fn order_by_sorts_results() {
        let db = db();
        let rs = Executor::new(&db)
            .execute_select(
                &crate::parse::parse_select(
                    "SELECT students.age FROM students WHERE students.id < 5 \
                     ORDER BY students.age DESC",
                )
                .unwrap(),
            )
            .unwrap();
        let ages: Vec<i64> = rs
            .rows
            .iter()
            .map(|r| match &r[0] {
                Value::Int(v) => *v,
                other => panic!("{other:?}"),
            })
            .collect();
        let mut sorted = ages.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(ages, sorted);
        assert_eq!(ages.len(), 5);
    }

    /// Regression (found by sqlgen-fuzz): `ORDER BY` over a float column
    /// containing NaN compared via `try_cmp(..).unwrap_or(Equal)`, which is
    /// not transitive (NaN "equal" to both 1 and 2 while 1 < 2) and made
    /// `slice::sort_by` panic with "comparison function does not correctly
    /// implement a total order" on larger results. Keys now sort with
    /// `Value::total_cmp`, which places NaN after every finite value.
    #[test]
    fn order_by_nan_keys_sorts_totally() {
        let mut db = Database::new();
        let mut t = Table::new(
            TableSchema::new("m")
                .with_column(ColumnDef::new("id", DataType::Int))
                .with_primary_key()
                .with_column(ColumnDef::new("x", DataType::Float)),
        );
        for i in 0..48 {
            let x = if i % 3 == 0 {
                f64::NAN
            } else {
                (40 - i) as f64
            };
            t.push_row(vec![Value::Int(i), Value::Float(x)]);
        }
        db.add_table(t);
        let q = crate::parse::parse_select("SELECT m.x FROM m ORDER BY m.x").unwrap();
        let rs = Executor::new(&db).execute_select(&q).unwrap();
        assert_eq!(rs.rows.len(), 48);
        for pair in rs.rows.windows(2) {
            assert_ne!(
                pair[0][0].total_cmp(&pair[1][0]),
                std::cmp::Ordering::Greater,
                "{} before {}",
                pair[0][0],
                pair[1][0]
            );
        }
    }

    #[test]
    fn order_by_unprojected_column_errors() {
        let db = db();
        let q =
            crate::parse::parse_select("SELECT students.id FROM students ORDER BY students.age")
                .unwrap();
        assert!(matches!(
            Executor::new(&db).execute_select(&q),
            Err(ExecError::UnknownColumn(_))
        ));
    }

    #[test]
    fn like_matcher_semantics() {
        assert!(like_match("%abc%", "xxabcyy"));
        assert!(like_match("abc", "abc"));
        assert!(!like_match("abc", "abcd"));
        assert!(like_match("a_c", "abc"));
        assert!(!like_match("a_c", "ac"));
        assert!(like_match("%", ""));
        assert!(like_match("%%", "anything"));
        assert!(like_match("a%", "a"));
        assert!(like_match("%a", "bca"));
        assert!(!like_match("", "x"));
        assert!(like_match("", ""));
        assert!(like_match("%b%d%", "abcd"));
        assert!(!like_match("%b%d%", "acde")); // needs b before d
    }

    #[test]
    fn like_matcher_escapes() {
        // Regression: `\%`, `\_`, `\\` used to be treated as two ordinary
        // characters, so escaped wildcards could never match.
        assert!(like_match(r"50\%", "50%"));
        assert!(!like_match(r"50\%", "500"));
        assert!(like_match(r"a\_b", "a_b"));
        assert!(!like_match(r"a\_b", "axb"));
        assert!(like_match(r"c:\\tmp", r"c:\tmp"));
        assert!(!like_match(r"c:\\tmp", "c:xtmp"));
        // Escapes compose with live wildcards.
        assert!(like_match(r"%\%%", "a%b"));
        assert!(!like_match(r"%\%%", "ab"));
        assert!(like_match(r"\%_", "%x"));
        // An escaped ordinary character is just that character.
        assert!(like_match(r"\a\b", "ab"));
        // A trailing lone backslash matches itself.
        assert!(like_match("ab\\", "ab\\"));
        assert!(!like_match("ab\\", "ab"));
    }

    #[test]
    fn like_literal_detects_wildcard_free_patterns() {
        assert_eq!(like_literal(r"50\%").as_deref(), Some("50%"));
        assert_eq!(like_literal(r"a\_\\b").as_deref(), Some(r"a_\b"));
        assert_eq!(like_literal("plain").as_deref(), Some("plain"));
        assert_eq!(like_literal(""), Some(String::new()));
        assert_eq!(like_literal("a%b"), None);
        assert_eq!(like_literal("a_b"), None);
    }

    #[test]
    fn like_predicate_filters_rows() {
        let mut db = Database::new();
        let mut t = Table::new(
            TableSchema::new("t").with_column(sqlgen_storage::ColumnDef::new(
                "name",
                sqlgen_storage::DataType::Text,
            )),
        );
        for n in ["alice", "bob", "carol", "alina"] {
            t.push_row(vec![Value::Text(n.into())]);
        }
        db.add_table(t);
        let stmt = parse("SELECT t.name FROM t WHERE t.name LIKE '%al%'").unwrap();
        assert_eq!(Executor::new(&db).cardinality(&stmt).unwrap(), 2);
        let stmt = parse("SELECT t.name FROM t WHERE NOT t.name LIKE 'a%'").unwrap();
        assert_eq!(Executor::new(&db).cardinality(&stmt).unwrap(), 2);
    }

    #[test]
    fn aggregate_over_empty_group_is_one_null_row() {
        let db = db();
        let rs = Executor::new(&db)
            .execute_select(
                &crate::parse::parse_select(
                    "SELECT SUM(scores.points) FROM scores WHERE scores.points < 0.0",
                )
                .unwrap(),
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 1);
        assert!(rs.rows[0][0].is_null());
    }
}
