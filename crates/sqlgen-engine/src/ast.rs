//! Abstract syntax tree for the SQL subset of Table 1 in the paper.
//!
//! The grammar covers: Select-Project-Join queries, conjunctive/disjunctive
//! predicates, nested queries (`IN` / `EXISTS` / scalar comparison),
//! aggregation with `GROUP BY` / `HAVING`, and `INSERT` / `UPDATE` /
//! `DELETE` statements.

use serde::{Deserialize, Serialize};
use sqlgen_storage::Value;
use std::fmt;

/// Comparison operators. The paper supports `{>, =, <, >=, <=}` plus `<>`
/// in the grammar table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

impl CmpOp {
    pub const ALL: [CmpOp; 6] = [
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
        CmpOp::Eq,
        CmpOp::Ne,
    ];

    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
        }
    }

    /// Evaluates the operator given a three-valued comparison result.
    pub fn eval(self, ord: Option<std::cmp::Ordering>) -> bool {
        use std::cmp::Ordering::*;
        matches!(
            (self, ord),
            (CmpOp::Lt, Some(Less))
                | (CmpOp::Le, Some(Less | Equal))
                | (CmpOp::Gt, Some(Greater))
                | (CmpOp::Ge, Some(Greater | Equal))
                | (CmpOp::Eq, Some(Equal))
                | (CmpOp::Ne, Some(Less | Greater))
        )
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Aggregate functions (paper: max/min/count/sum/avg).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggFunc {
    Max,
    Min,
    Sum,
    Avg,
    Count,
}

impl AggFunc {
    pub const ALL: [AggFunc; 5] = [
        AggFunc::Max,
        AggFunc::Min,
        AggFunc::Sum,
        AggFunc::Avg,
        AggFunc::Count,
    ];

    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Max => "MAX",
            AggFunc::Min => "MIN",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Count => "COUNT",
        }
    }

    /// `COUNT` works on any type; the others need numeric input
    /// (the paper's semantic checking: "only numerical attributes can be
    /// included in average/sum/max/min aggregation operations").
    pub fn requires_numeric(self) -> bool {
        !matches!(self, AggFunc::Count)
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A fully qualified column reference `table.column`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ColRef {
    pub table: String,
    pub column: String,
}

impl ColRef {
    pub fn new(table: impl Into<String>, column: impl Into<String>) -> Self {
        ColRef {
            table: table.into(),
            column: column.into(),
        }
    }
}

impl fmt::Display for ColRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.table, self.column)
    }
}

/// One item of the `SELECT` list: `attr` or `agg(attr)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SelectItem {
    Column(ColRef),
    Agg(AggFunc, ColRef),
}

impl SelectItem {
    pub fn col_ref(&self) -> &ColRef {
        match self {
            SelectItem::Column(c) | SelectItem::Agg(_, c) => c,
        }
    }

    pub fn is_agg(&self) -> bool {
        matches!(self, SelectItem::Agg(..))
    }
}

/// An equi-join to `table` along a PK-FK edge. `left` refers to a table that
/// appears earlier in the `FROM` clause; `right` is a column of `table`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Join {
    pub table: String,
    pub left: ColRef,
    pub right: ColRef,
}

/// `FROM base [JOIN t ON l = r]*`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FromClause {
    pub base: String,
    pub joins: Vec<Join>,
}

impl FromClause {
    pub fn single(table: impl Into<String>) -> Self {
        FromClause {
            base: table.into(),
            joins: Vec::new(),
        }
    }

    /// All table names in the clause, base first.
    pub fn tables(&self) -> Vec<&str> {
        std::iter::once(self.base.as_str())
            .chain(self.joins.iter().map(|j| j.table.as_str()))
            .collect()
    }
}

/// Right-hand side of a comparison: a literal or a (scalar) subquery.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Rhs {
    Value(Value),
    Subquery(Box<SelectQuery>),
}

/// Boolean predicate tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Predicate {
    /// `col op rhs`.
    Cmp {
        col: ColRef,
        op: CmpOp,
        rhs: Rhs,
    },
    /// `col IN (subquery)`.
    In {
        col: ColRef,
        sub: Box<SelectQuery>,
    },
    /// `col LIKE 'pattern'` (`%` and `_` wildcards). Paper future work §5,
    /// implemented here: patterns are substrings sampled from the column.
    Like {
        col: ColRef,
        pattern: String,
    },
    /// `EXISTS (subquery)`.
    Exists {
        sub: Box<SelectQuery>,
    },
    Not(Box<Predicate>),
    And(Box<Predicate>, Box<Predicate>),
    Or(Box<Predicate>, Box<Predicate>),
}

impl Predicate {
    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }

    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// Number of atomic comparisons in the tree (used by the Figure 10
    /// query-distribution experiment).
    pub fn atom_count(&self) -> usize {
        match self {
            Predicate::Cmp { .. }
            | Predicate::In { .. }
            | Predicate::Exists { .. }
            | Predicate::Like { .. } => 1,
            Predicate::Not(p) => p.atom_count(),
            Predicate::And(a, b) | Predicate::Or(a, b) => a.atom_count() + b.atom_count(),
        }
    }

    /// Whether the tree contains a nested subquery anywhere.
    pub fn has_subquery(&self) -> bool {
        match self {
            Predicate::Cmp { rhs, .. } => matches!(rhs, Rhs::Subquery(_)),
            Predicate::Like { .. } => false,
            Predicate::In { .. } | Predicate::Exists { .. } => true,
            Predicate::Not(p) => p.has_subquery(),
            Predicate::And(a, b) | Predicate::Or(a, b) => a.has_subquery() || b.has_subquery(),
        }
    }
}

/// `HAVING agg(attr) op (value | subquery)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HavingClause {
    pub agg: AggFunc,
    pub col: ColRef,
    pub op: CmpOp,
    pub rhs: Rhs,
}

/// `ORDER BY col [DESC]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OrderBy {
    pub col: ColRef,
    pub desc: bool,
}

/// A `SELECT` query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectQuery {
    pub from: FromClause,
    pub select: Vec<SelectItem>,
    pub predicate: Option<Predicate>,
    pub group_by: Vec<ColRef>,
    pub having: Option<HavingClause>,
    /// `ORDER BY` keys ("Order BY" is in the paper's reserved-word list,
    /// §4.1; it affects cost, never cardinality).
    #[serde(default)]
    pub order_by: Vec<OrderBy>,
}

impl SelectQuery {
    /// A bare `SELECT cols FROM table` skeleton.
    pub fn scan(table: impl Into<String>, select: Vec<SelectItem>) -> Self {
        SelectQuery {
            from: FromClause::single(table),
            select,
            predicate: None,
            group_by: Vec::new(),
            having: None,
            order_by: Vec::new(),
        }
    }

    /// Whether the query produces one row per group (aggregation) rather
    /// than one per input tuple.
    pub fn is_aggregate(&self) -> bool {
        !self.group_by.is_empty()
            || self.select.iter().all(SelectItem::is_agg) && !self.select.is_empty()
    }

    pub fn join_count(&self) -> usize {
        self.from.joins.len()
    }

    /// Whether any predicate (including HAVING) nests a subquery.
    pub fn has_subquery(&self) -> bool {
        self.predicate.as_ref().is_some_and(Predicate::has_subquery)
            || self
                .having
                .as_ref()
                .is_some_and(|h| matches!(h.rhs, Rhs::Subquery(_)))
    }

    pub fn has_aggregate(&self) -> bool {
        self.select.iter().any(SelectItem::is_agg) || self.having.is_some()
    }
}

/// `INSERT INTO table (VALUES ... | SELECT ...)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InsertStmt {
    pub table: String,
    pub source: InsertSource,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum InsertSource {
    Values(Vec<Value>),
    Query(Box<SelectQuery>),
}

/// `UPDATE table SET col = value [, ...] [WHERE ...]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UpdateStmt {
    pub table: String,
    pub sets: Vec<(String, Value)>,
    pub predicate: Option<Predicate>,
}

/// `DELETE FROM table [WHERE ...]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeleteStmt {
    pub table: String,
    pub predicate: Option<Predicate>,
}

/// Any supported statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Statement {
    Select(SelectQuery),
    Insert(InsertStmt),
    Update(UpdateStmt),
    Delete(DeleteStmt),
}

impl Statement {
    pub fn kind(&self) -> StatementKind {
        match self {
            Statement::Select(_) => StatementKind::Select,
            Statement::Insert(_) => StatementKind::Insert,
            Statement::Update(_) => StatementKind::Update,
            Statement::Delete(_) => StatementKind::Delete,
        }
    }

    pub fn as_select(&self) -> Option<&SelectQuery> {
        match self {
            Statement::Select(q) => Some(q),
            _ => None,
        }
    }
}

/// Statement kind tags (Figure 10(e) reports the query-type distribution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum StatementKind {
    Select,
    Insert,
    Update,
    Delete,
}

impl StatementKind {
    pub const ALL: [StatementKind; 4] = [
        StatementKind::Select,
        StatementKind::Insert,
        StatementKind::Update,
        StatementKind::Delete,
    ];

    pub fn name(self) -> &'static str {
        match self {
            StatementKind::Select => "SELECT",
            StatementKind::Insert => "INSERT",
            StatementKind::Update => "UPDATE",
            StatementKind::Delete => "DELETE",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_op_eval() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Lt.eval(Some(Less)));
        assert!(!CmpOp::Lt.eval(Some(Equal)));
        assert!(CmpOp::Le.eval(Some(Equal)));
        assert!(CmpOp::Ne.eval(Some(Greater)));
        assert!(!CmpOp::Eq.eval(None)); // NULL comparisons are never true
    }

    #[test]
    fn predicate_atom_count_and_subquery_detection() {
        let p1 = Predicate::Cmp {
            col: ColRef::new("t", "a"),
            op: CmpOp::Lt,
            rhs: Rhs::Value(Value::Int(5)),
        };
        let p2 = Predicate::In {
            col: ColRef::new("t", "b"),
            sub: Box::new(SelectQuery::scan(
                "u",
                vec![SelectItem::Column(ColRef::new("u", "b"))],
            )),
        };
        let tree = p1.clone().and(p2).or(p1);
        assert_eq!(tree.atom_count(), 3);
        assert!(tree.has_subquery());
    }

    #[test]
    fn aggregate_detection() {
        let mut q = SelectQuery::scan(
            "t",
            vec![SelectItem::Agg(AggFunc::Count, ColRef::new("t", "a"))],
        );
        assert!(q.is_aggregate());
        q.select = vec![SelectItem::Column(ColRef::new("t", "a"))];
        assert!(!q.is_aggregate());
        q.group_by = vec![ColRef::new("t", "a")];
        assert!(q.is_aggregate());
    }

    #[test]
    fn from_clause_tables() {
        let mut f = FromClause::single("a");
        f.joins.push(Join {
            table: "b".into(),
            left: ColRef::new("a", "x"),
            right: ColRef::new("b", "y"),
        });
        assert_eq!(f.tables(), vec!["a", "b"]);
    }
}
