//! Cardinality estimation.
//!
//! A System-R-style estimator: per-column statistics (equi-depth histograms,
//! MCV lists, distinct counts), attribute-independence for conjunctions,
//! inclusion-exclusion for disjunctions, and the classic
//! `|R| · |S| / max(ndv(a), ndv(b))` formula for equi-joins.
//!
//! The paper uses the DBMS's own estimator to compute rewards ("we do not
//! use the real cardinality for the efficiency issue", §3.2) — this module
//! plays that role. It never touches row data at estimation time, only the
//! statistics built once up front, so a single estimate is microseconds.

use crate::ast::*;
use sqlgen_storage::{ColumnStats, DataType, Database, TableStats, Value};
use std::collections::HashMap;

/// Default selectivity for predicates the statistics cannot answer
/// (the textbook magic constant).
pub const DEFAULT_SELECTIVITY: f64 = 1.0 / 3.0;
/// Default selectivity of a HAVING clause.
pub const DEFAULT_HAVING_SELECTIVITY: f64 = 1.0 / 3.0;
/// Default selectivity of a LIKE predicate with no usable MCV evidence
/// (mirrors PostgreSQL's DEFAULT_MATCH_SEL ballpark).
pub const DEFAULT_LIKE_SELECTIVITY: f64 = 0.1;
/// Upper bound on any cardinality estimate. Long join chains multiply row
/// counts, and the RL reward must stay finite, so the estimate saturates
/// here instead of running off to infinity.
pub const MAX_CARD: f64 = 1e15;

/// Forces a cardinality estimate into `[0, MAX_CARD]`; NaN (from degenerate
/// statistics) becomes 0. Note `f64::clamp` propagates NaN, so the guard
/// has to be explicit.
fn sanitize_card(c: f64) -> f64 {
    if c.is_nan() {
        0.0
    } else {
        c.clamp(0.0, MAX_CARD)
    }
}

/// The cardinality estimator. Build once per database; estimates are pure.
#[derive(Debug, Clone)]
pub struct Estimator {
    tables: HashMap<String, TableStats>,
}

impl Estimator {
    /// Scans the database once and builds all statistics.
    pub fn build(db: &Database) -> Self {
        let tables = db
            .tables()
            .map(|t| (t.name().to_string(), TableStats::build(t)))
            .collect();
        Estimator { tables }
    }

    /// Builds the estimator from precomputed per-table statistics — e.g.
    /// the stride-sampled stats of a paged store, where a second full
    /// scan would thrash the buffer pool.
    pub fn from_stats(stats: impl IntoIterator<Item = TableStats>) -> Self {
        Estimator {
            tables: stats.into_iter().map(|t| (t.table.clone(), t)).collect(),
        }
    }

    pub fn table_stats(&self, table: &str) -> Option<&TableStats> {
        self.tables.get(table)
    }

    fn column_stats(&self, col: &ColRef) -> Option<&ColumnStats> {
        self.tables.get(&col.table)?.column(&col.column)
    }

    fn table_rows(&self, table: &str) -> f64 {
        self.tables
            .get(table)
            .map(|t| t.row_count as f64)
            .unwrap_or(0.0)
    }

    /// Estimated cardinality of any statement: result rows for `SELECT`,
    /// affected rows for DML.
    pub fn cardinality(&self, stmt: &Statement) -> f64 {
        let _t = sqlgen_obs::obs_time!("estimator.card.latency_us");
        sqlgen_obs::obs_count!("estimator.card.calls");
        sanitize_card(match stmt {
            Statement::Select(q) => self.select_cardinality(q),
            Statement::Insert(i) => match &i.source {
                InsertSource::Values(_) => 1.0,
                InsertSource::Query(q) => self.select_cardinality(q),
            },
            Statement::Update(u) => {
                self.table_rows(&u.table) * self.opt_selectivity(u.predicate.as_ref())
            }
            Statement::Delete(d) => {
                self.table_rows(&d.table) * self.opt_selectivity(d.predicate.as_ref())
            }
        })
    }

    /// Estimated output cardinality of a `SELECT`.
    pub fn select_cardinality(&self, q: &SelectQuery) -> f64 {
        let filtered = self.filtered_cardinality(q);
        let out = if q.is_aggregate() {
            if q.group_by.is_empty() {
                // Plain aggregate: exactly one output row.
                1.0
            } else {
                let mut groups: f64 = 1.0;
                for c in &q.group_by {
                    let ndv = self
                        .column_stats(c)
                        .map(|s| s.distinct as f64)
                        .unwrap_or(1.0);
                    // Cap the running product at the input cardinality:
                    // a grouped result can never exceed its input, and
                    // the unchecked NDV product overflows to infinity on
                    // wide GROUP BY lists over high-cardinality columns.
                    groups = (groups * ndv.max(1.0)).min(filtered.max(1.0));
                }
                let mut out = groups.min(filtered);
                if q.having.is_some() {
                    out *= DEFAULT_HAVING_SELECTIVITY;
                }
                out
            }
        } else {
            filtered
        };
        sanitize_card(out)
    }

    /// Join cardinality times predicate selectivity (pre-aggregation).
    pub fn filtered_cardinality(&self, q: &SelectQuery) -> f64 {
        sanitize_card(self.join_cardinality(&q.from) * self.opt_selectivity(q.predicate.as_ref()))
    }

    /// Estimated cardinality of the `FROM` clause (joins only).
    pub fn join_cardinality(&self, from: &FromClause) -> f64 {
        let mut card = self.table_rows(&from.base);
        for j in &from.joins {
            let right_rows = self.table_rows(&j.table);
            let ndv_left = self
                .column_stats(&j.left)
                .map(|s| s.distinct as f64)
                .unwrap_or(1.0);
            let ndv_right = self
                .column_stats(&j.right)
                .map(|s| s.distinct as f64)
                .unwrap_or(1.0);
            // `distinct` can be 0 on a degenerate column and the product
            // can overflow on long join chains, so the denominator is
            // floored at 1 and the running product saturated each step.
            let denom = ndv_left.max(ndv_right).max(1.0);
            card = sanitize_card(card * right_rows / denom);
        }
        sanitize_card(card)
    }

    fn opt_selectivity(&self, p: Option<&Predicate>) -> f64 {
        p.map(|p| self.selectivity(p)).unwrap_or(1.0)
    }

    /// Estimated selectivity of a predicate tree, in `[0, 1]`.
    pub fn selectivity(&self, p: &Predicate) -> f64 {
        let s = match p {
            Predicate::Cmp { col, op, rhs } => self.cmp_selectivity(col, *op, rhs),
            Predicate::In { col, sub } => {
                let sub_card = self.select_cardinality(sub);
                let ndv = self
                    .column_stats(col)
                    .map(|s| s.distinct as f64)
                    .unwrap_or(1.0)
                    .max(1.0);
                // Containment assumption: the subquery's values are a subset
                // of the column's domain.
                (sub_card / ndv).min(1.0)
            }
            Predicate::Like { col, pattern } => self.like_selectivity(col, pattern),
            Predicate::Exists { sub } => {
                // Uncorrelated EXISTS: all-or-nothing; the probability the
                // subquery is non-empty saturates quickly with its estimate.
                self.select_cardinality(sub).min(1.0)
            }
            Predicate::Not(inner) => 1.0 - self.selectivity(inner),
            Predicate::And(a, b) => self.selectivity(a) * self.selectivity(b),
            Predicate::Or(a, b) => {
                let (sa, sb) = (self.selectivity(a), self.selectivity(b));
                sa + sb - sa * sb
            }
        };
        // `f64::clamp` propagates NaN, so degenerate statistics need an
        // explicit fallback before the range clamp.
        if s.is_nan() {
            DEFAULT_SELECTIVITY
        } else {
            s.clamp(0.0, 1.0)
        }
    }

    /// LIKE selectivity: equality selectivity when the pattern has no live
    /// wildcards (every `%`/`_` escaped), else the MCV-mass fraction
    /// matching the pattern when the MCV list covers enough mass, otherwise
    /// the default constant.
    fn like_selectivity(&self, col: &ColRef, pattern: &str) -> f64 {
        let stats = match self.column_stats(col) {
            Some(s) => s,
            None => return DEFAULT_LIKE_SELECTIVITY,
        };
        // A wildcard-free pattern is an equality test; route it through the
        // same estimate the executor's semantics imply.
        if let Some(lit) = crate::exec::like_literal(pattern) {
            return stats.eq_selectivity(&Value::Text(lit));
        }
        let mcv_mass: f64 = stats.mcvs.iter().map(|(_, f)| f).sum();
        if mcv_mass < 0.2 || stats.mcvs.is_empty() {
            return DEFAULT_LIKE_SELECTIVITY;
        }
        let matched: f64 = stats
            .mcvs
            .iter()
            .filter(|(v, _)| {
                v.as_text()
                    .is_some_and(|s| crate::exec::like_match(pattern, s))
            })
            .map(|(_, f)| f)
            .sum();
        // Extrapolate the matched share of MCV mass to the whole column,
        // floored so rare matches are not estimated as impossible.
        (matched / mcv_mass).max(DEFAULT_LIKE_SELECTIVITY / 10.0)
    }

    fn cmp_selectivity(&self, col: &ColRef, op: CmpOp, rhs: &Rhs) -> f64 {
        let stats = match self.column_stats(col) {
            Some(s) => s,
            None => return DEFAULT_SELECTIVITY,
        };
        let value = match rhs {
            Rhs::Value(v) => v.clone(),
            Rhs::Subquery(_) => {
                // Scalar subquery: value unknown at estimation time.
                return match op {
                    CmpOp::Eq => 1.0 / (stats.distinct as f64).max(1.0),
                    CmpOp::Ne => 1.0 - 1.0 / (stats.distinct as f64).max(1.0),
                    _ => DEFAULT_SELECTIVITY,
                };
            }
        };
        if value.is_null() {
            return 0.0;
        }
        match op {
            CmpOp::Eq => stats.eq_selectivity(&value),
            CmpOp::Ne => (1.0 - stats.eq_selectivity(&value)).max(0.0),
            CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
                match (stats.dtype, value.as_f64(), &stats.histogram) {
                    // A non-finite probe (NaN/inf literal) would poison the
                    // histogram math; it falls through to the default.
                    (DataType::Int | DataType::Float, Some(x), Some(h)) if x.is_finite() => {
                        let below = h.fraction_below(x);
                        let eq = stats.eq_selectivity(&value);
                        match op {
                            CmpOp::Lt => below,
                            CmpOp::Le => (below + eq).min(1.0),
                            CmpOp::Gt => (1.0 - below - eq).max(0.0),
                            CmpOp::Ge => 1.0 - below,
                            _ => unreachable!(),
                        }
                    }
                    // Text ranges or missing histogram: magic constant.
                    _ => text_range_selectivity(stats, op, &value),
                }
            }
        }
    }
}

/// Range selectivity over text columns: rank the value within the MCV list
/// if possible, otherwise fall back to the default.
fn text_range_selectivity(stats: &ColumnStats, op: CmpOp, value: &Value) -> f64 {
    let text = match value.as_text() {
        Some(t) => t,
        None => return DEFAULT_SELECTIVITY,
    };
    if stats.mcvs.is_empty() {
        return DEFAULT_SELECTIVITY;
    }
    // Fraction of MCV mass strictly below the probe value, as a proxy for
    // the column-wide fraction.
    let below: f64 = stats
        .mcvs
        .iter()
        .filter(|(v, _)| v.as_text().is_some_and(|s| s < text))
        .map(|(_, f)| f)
        .sum();
    let total: f64 = stats.mcvs.iter().map(|(_, f)| f).sum();
    if total <= 0.0 {
        return DEFAULT_SELECTIVITY;
    }
    let frac = below / total;
    match op {
        CmpOp::Lt | CmpOp::Le => frac,
        CmpOp::Gt | CmpOp::Ge => 1.0 - frac,
        _ => DEFAULT_SELECTIVITY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Executor;
    use crate::parse::{parse, parse_select};
    use sqlgen_storage::gen::tpch_database;

    fn est_and_real(db: &Database, sql: &str) -> (f64, f64) {
        let stmt = parse(sql).unwrap();
        let est = Estimator::build(db).cardinality(&stmt);
        let real = Executor::new(db).cardinality(&stmt).unwrap() as f64;
        (est, real)
    }

    /// Estimates should be within an order of magnitude on simple predicates
    /// (q-error <= 10 is a normal bar for histogram estimators).
    fn assert_qerror(db: &Database, sql: &str, bound: f64) {
        let (est, real) = est_and_real(db, sql);
        let q = if est.max(real) <= 0.0 {
            1.0
        } else {
            (est.max(1.0) / real.max(1.0)).max(real.max(1.0) / est.max(1.0))
        };
        assert!(
            q <= bound,
            "q-error {q:.2} > {bound} for {sql}: est={est:.1} real={real}"
        );
    }

    #[test]
    fn full_scan_is_exact() {
        let db = tpch_database(0.5, 11);
        let (est, real) = est_and_real(&db, "SELECT lineitem.l_quantity FROM lineitem");
        assert_eq!(est, real);
    }

    #[test]
    fn range_predicates_are_close() {
        let db = tpch_database(0.5, 11);
        assert_qerror(
            &db,
            "SELECT lineitem.l_quantity FROM lineitem WHERE lineitem.l_quantity < 10",
            2.0,
        );
        assert_qerror(
            &db,
            "SELECT orders.o_totalprice FROM orders WHERE orders.o_totalprice > 400000.0",
            3.0,
        );
    }

    #[test]
    fn equality_on_categorical_uses_mcvs() {
        let db = tpch_database(0.5, 11);
        assert_qerror(
            &db,
            "SELECT lineitem.l_quantity FROM lineitem WHERE lineitem.l_shipmode = 'AIR'",
            2.0,
        );
    }

    #[test]
    fn conjunction_uses_independence() {
        let db = tpch_database(0.5, 11);
        assert_qerror(
            &db,
            "SELECT lineitem.l_quantity FROM lineitem \
             WHERE lineitem.l_quantity < 25 AND lineitem.l_shipmode = 'AIR'",
            3.0,
        );
    }

    #[test]
    fn fk_join_estimate_close_to_real() {
        let db = tpch_database(0.5, 11);
        // FK join: output = |lineitem| exactly; estimator should agree
        // within a small factor.
        assert_qerror(
            &db,
            "SELECT lineitem.l_quantity FROM lineitem \
             JOIN orders ON lineitem.l_orderkey = orders.o_orderkey",
            2.0,
        );
    }

    #[test]
    fn selectivity_bounds() {
        let db = tpch_database(0.2, 3);
        let est = Estimator::build(&db);
        let q = parse_select(
            "SELECT lineitem.l_quantity FROM lineitem \
             WHERE lineitem.l_quantity < 10 OR lineitem.l_quantity > 40 \
             OR NOT lineitem.l_shipmode = 'AIR'",
        )
        .unwrap();
        let s = est.selectivity(q.predicate.as_ref().unwrap());
        assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn aggregates_estimate_one_row() {
        let db = tpch_database(0.2, 3);
        let est = Estimator::build(&db);
        let q = parse_select("SELECT COUNT(orders.o_orderkey) FROM orders").unwrap();
        assert_eq!(est.select_cardinality(&q), 1.0);
    }

    #[test]
    fn group_by_capped_by_ndv() {
        let db = tpch_database(0.5, 11);
        let est = Estimator::build(&db);
        let q = parse_select(
            "SELECT lineitem.l_shipmode, COUNT(lineitem.l_quantity) FROM lineitem \
             GROUP BY lineitem.l_shipmode",
        )
        .unwrap();
        let c = est.select_cardinality(&q);
        assert!(c <= 7.0 + 1e-9, "7 ship modes, got {c}");
        assert!(c >= 1.0);
    }

    #[test]
    fn dml_estimates() {
        let db = tpch_database(0.2, 3);
        let est = Estimator::build(&db);
        assert_eq!(
            est.cardinality(&parse("INSERT INTO orders VALUES (1, 1, 'F', 10.0, 3, 'x')").unwrap()),
            1.0
        );
        let del = parse("DELETE FROM orders WHERE orders.o_orderstatus = 'F'").unwrap();
        let c = est.cardinality(&del);
        let real = Executor::new(&db).cardinality(&del).unwrap() as f64;
        assert!((c / real.max(1.0)).max(real.max(1.0) / c.max(1.0)) < 2.0);
    }

    #[test]
    fn in_subquery_selectivity_reasonable() {
        let db = tpch_database(0.5, 11);
        assert_qerror(
            &db,
            "SELECT lineitem.l_quantity FROM lineitem WHERE lineitem.l_orderkey IN \
             (SELECT orders.o_orderkey FROM orders WHERE orders.o_orderstatus = 'F')",
            4.0,
        );
    }

    /// wide(a..h): 4000 rows of high-NDV ints; empty(x): zero rows.
    fn degenerate_db() -> Database {
        use sqlgen_storage::{ColumnDef, Table, TableSchema};
        let mut db = Database::new();
        let names = ["a", "b", "c", "d", "e", "f", "g", "h"];
        let mut schema = TableSchema::new("wide");
        for n in names {
            schema = schema.with_column(ColumnDef::new(n, DataType::Int));
        }
        let mut wide = Table::new(schema);
        for i in 0..4000i64 {
            wide.push_row(
                (0..names.len())
                    .map(|j| Value::Int(i * 31 + j as i64))
                    .collect(),
            );
        }
        db.add_table(wide);
        let empty =
            Table::new(TableSchema::new("empty").with_column(ColumnDef::new("x", DataType::Int)));
        db.add_table(empty);
        db
    }

    /// Regression: the GROUP BY NDV product used to be capped only after the
    /// full multiply, so eight ~4000-NDV columns produced 4000^8 ≈ 6.6e28
    /// intermediate values (and unbounded column counts overflow to inf).
    #[test]
    fn group_by_product_capped_at_input() {
        let db = degenerate_db();
        let est = Estimator::build(&db);
        let q = crate::parse::parse_select(
            "SELECT wide.a, wide.b, wide.c, wide.d, wide.e, wide.f, wide.g, wide.h, \
             COUNT(wide.a) FROM wide \
             GROUP BY wide.a, wide.b, wide.c, wide.d, wide.e, wide.f, wide.g, wide.h",
        )
        .unwrap();
        let c = est.select_cardinality(&q);
        assert!(c.is_finite() && c >= 0.0);
        assert!(
            c <= 4000.0,
            "grouped output cannot exceed input rows, got {c}"
        );
    }

    /// Regression: degenerate statistics (0 rows, 0 distinct) used to leak
    /// NaN through selectivity and cardinality.
    #[test]
    fn zero_row_table_estimates_are_finite() {
        let db = degenerate_db();
        let est = Estimator::build(&db);
        for sql in [
            "SELECT empty.x FROM empty",
            "SELECT empty.x FROM empty WHERE empty.x = 3",
            "SELECT empty.x FROM empty WHERE empty.x < 7 OR empty.x > 9",
            "SELECT COUNT(empty.x) FROM empty",
            "SELECT empty.x, COUNT(empty.x) FROM empty GROUP BY empty.x",
            "DELETE FROM empty WHERE empty.x = 1",
        ] {
            let stmt = parse(sql).unwrap();
            let c = est.cardinality(&stmt);
            assert!(c.is_finite() && c >= 0.0, "{sql} -> {c}");
            if let Statement::Select(q) = &stmt {
                if let Some(p) = &q.predicate {
                    let s = est.selectivity(p);
                    assert!((0.0..=1.0).contains(&s), "{sql} -> sel {s}");
                }
            }
        }
    }

    /// Non-finite literals must not poison the histogram math.
    #[test]
    fn non_finite_probe_value_falls_back() {
        let db = tpch_database(0.2, 3);
        let est = Estimator::build(&db);
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let p = Predicate::Cmp {
                col: ColRef::new("lineitem", "l_quantity"),
                op: CmpOp::Lt,
                rhs: Rhs::Value(Value::Float(v)),
            };
            let s = est.selectivity(&p);
            assert!((0.0..=1.0).contains(&s), "probe {v} -> sel {s}");
        }
    }

    /// Long join chains saturate at MAX_CARD instead of overflowing.
    #[test]
    fn join_chain_saturates_finite() {
        let db = tpch_database(0.5, 11);
        let est = Estimator::build(&db);
        let mut from = FromClause {
            base: "lineitem".into(),
            joins: Vec::new(),
        };
        // Deliberately bogus self-join chain (unknown columns -> ndv 1):
        // each step multiplies by |lineitem| with denominator 1.
        for _ in 0..40 {
            from.joins.push(Join {
                table: "lineitem".into(),
                left: ColRef::new("lineitem", "nope"),
                right: ColRef::new("lineitem", "nope"),
            });
        }
        let c = est.join_cardinality(&from);
        assert!(c.is_finite() && c >= 0.0);
        assert!(c <= MAX_CARD);
    }

    #[test]
    fn estimates_are_nonnegative_and_finite() {
        let db = tpch_database(0.2, 3);
        let est = Estimator::build(&db);
        for sql in [
            "SELECT region.r_name FROM region WHERE region.r_name = 'ASIA'",
            "SELECT nation.n_name FROM nation WHERE nation.n_nationkey < 0",
            "SELECT part.p_size FROM part WHERE part.p_size > 100 AND part.p_size < 0",
        ] {
            let c = est.cardinality(&parse(sql).unwrap());
            assert!(c.is_finite() && c >= 0.0, "{sql} -> {c}");
        }
    }
}
