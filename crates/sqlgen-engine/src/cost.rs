//! Plan cost model.
//!
//! PostgreSQL-flavoured cost units layered on top of the cardinality
//! estimator. The paper's `Cost` constraint is the optimizer's estimated
//! execution expense; this model reproduces that role: sequential page I/O,
//! per-tuple CPU, hash-join build/probe, aggregation and (for DML) write
//! costs, with subquery costs added where they are evaluated.

use crate::ast::*;
use crate::card::Estimator;

/// Tunable cost constants (defaults mirror PostgreSQL's).
#[derive(Debug, Clone)]
pub struct CostParams {
    pub seq_page_cost: f64,
    pub cpu_tuple_cost: f64,
    pub cpu_operator_cost: f64,
    /// Per-tuple cost of inserting into a hash-join build table.
    pub hash_build_cost: f64,
    /// Tuples per page for the synthetic page count.
    pub rows_per_page: f64,
    /// Per-row cost of a write (INSERT/UPDATE/DELETE).
    pub write_row_cost: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            seq_page_cost: 1.0,
            cpu_tuple_cost: 0.01,
            cpu_operator_cost: 0.0025,
            hash_build_cost: 0.015,
            rows_per_page: 100.0,
            write_row_cost: 0.05,
        }
    }
}

/// The cost model: estimates the execution expense of a statement.
#[derive(Debug, Clone, Default)]
pub struct CostModel {
    pub params: CostParams,
}

impl CostModel {
    pub fn new(params: CostParams) -> Self {
        CostModel { params }
    }

    /// Estimated cost of a statement in abstract cost units.
    pub fn cost(&self, est: &Estimator, stmt: &Statement) -> f64 {
        let _t = sqlgen_obs::obs_time!("estimator.cost.latency_us");
        sqlgen_obs::obs_count!("estimator.cost.calls");
        match stmt {
            Statement::Select(q) => self.select_cost(est, q),
            Statement::Insert(i) => match &i.source {
                InsertSource::Values(_) => self.params.write_row_cost + self.params.cpu_tuple_cost,
                InsertSource::Query(q) => {
                    let rows = est.select_cardinality(q);
                    self.select_cost(est, q) + rows * self.params.write_row_cost
                }
            },
            Statement::Update(u) => {
                let scan = self.scan_cost(est, &u.table);
                let filter = self.pred_cost(est, u.predicate.as_ref(), table_rows(est, &u.table));
                let matched =
                    table_rows(est, &u.table) * opt_selectivity(est, u.predicate.as_ref());
                scan + filter + matched * self.params.write_row_cost * u.sets.len().max(1) as f64
            }
            Statement::Delete(d) => {
                let scan = self.scan_cost(est, &d.table);
                let filter = self.pred_cost(est, d.predicate.as_ref(), table_rows(est, &d.table));
                let matched =
                    table_rows(est, &d.table) * opt_selectivity(est, d.predicate.as_ref());
                scan + filter + matched * self.params.write_row_cost
            }
        }
    }

    /// Estimated cost of a `SELECT` query.
    pub fn select_cost(&self, est: &Estimator, q: &SelectQuery) -> f64 {
        let p = &self.params;
        let mut cost = 0.0;

        // Scan every table in the FROM clause.
        for t in q.from.tables() {
            cost += self.scan_cost(est, t);
        }

        // Hash joins: build over the new (right) table, probe with the
        // running intermediate result.
        let mut card = table_rows(est, &q.from.base);
        for j in &q.from.joins {
            let right = table_rows(est, &j.table);
            cost += right * p.hash_build_cost; // build
            cost += card * p.cpu_tuple_cost; // probe
            let ndv = join_ndv(est, j);
            card = card * right / ndv;
            cost += card * p.cpu_tuple_cost; // emit
        }

        // Filter: one operator evaluation per atom per input tuple, plus the
        // cost of evaluating each subquery once (uncorrelated).
        cost += self.pred_cost(est, q.predicate.as_ref(), card);
        let filtered = card * opt_selectivity(est, q.predicate.as_ref());

        // Aggregation.
        if q.is_aggregate() {
            cost += filtered * p.cpu_operator_cost * q.select.len().max(1) as f64;
            let out = est.select_cardinality(q);
            cost += out * p.cpu_tuple_cost;
            if let Some(h) = &q.having {
                cost += out * p.cpu_operator_cost;
                if let Rhs::Subquery(sub) = &h.rhs {
                    cost += self.select_cost(est, sub);
                }
            }
        } else {
            cost += filtered * p.cpu_tuple_cost; // projection / emit
        }

        // ORDER BY: comparison sort over the output.
        if !q.order_by.is_empty() {
            let out = est.select_cardinality(q).max(1.0);
            cost += out * out.log2().max(1.0) * p.cpu_operator_cost;
        }
        cost
    }

    fn scan_cost(&self, est: &Estimator, table: &str) -> f64 {
        let rows = table_rows(est, table);
        let pages = (rows / self.params.rows_per_page).ceil();
        pages * self.params.seq_page_cost + rows * self.params.cpu_tuple_cost
    }

    fn pred_cost(&self, est: &Estimator, pred: Option<&Predicate>, input_rows: f64) -> f64 {
        let pred = match pred {
            Some(p) => p,
            None => return 0.0,
        };
        let atoms = pred.atom_count() as f64;
        let mut cost = atoms * input_rows * self.params.cpu_operator_cost;
        cost += self.subquery_costs(est, pred);
        cost
    }

    /// Sums the one-time evaluation cost of every subquery in the tree.
    fn subquery_costs(&self, est: &Estimator, p: &Predicate) -> f64 {
        match p {
            Predicate::Cmp { rhs, .. } => match rhs {
                Rhs::Subquery(sub) => self.select_cost(est, sub),
                Rhs::Value(_) => 0.0,
            },
            Predicate::Like { .. } => 0.0,
            Predicate::In { sub, .. } | Predicate::Exists { sub } => self.select_cost(est, sub),
            Predicate::Not(inner) => self.subquery_costs(est, inner),
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                self.subquery_costs(est, a) + self.subquery_costs(est, b)
            }
        }
    }
}

fn table_rows(est: &Estimator, table: &str) -> f64 {
    est.table_stats(table)
        .map(|s| s.row_count as f64)
        .unwrap_or(0.0)
}

fn opt_selectivity(est: &Estimator, p: Option<&Predicate>) -> f64 {
    p.map(|p| est.selectivity(p)).unwrap_or(1.0)
}

fn join_ndv(est: &Estimator, j: &Join) -> f64 {
    let ndv = |c: &ColRef| {
        est.table_stats(&c.table)
            .and_then(|t| t.column(&c.column))
            .map(|s| s.distinct as f64)
            .unwrap_or(1.0)
    };
    ndv(&j.left).max(ndv(&j.right)).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use sqlgen_storage::gen::tpch_database;

    fn cost_of(sql: &str) -> f64 {
        let db = tpch_database(0.5, 11);
        let est = Estimator::build(&db);
        CostModel::default().cost(&est, &parse(sql).unwrap())
    }

    #[test]
    fn bigger_tables_cost_more() {
        assert!(
            cost_of("SELECT lineitem.l_quantity FROM lineitem")
                > cost_of("SELECT region.r_name FROM region")
        );
    }

    #[test]
    fn joins_cost_more_than_scans() {
        assert!(
            cost_of(
                "SELECT lineitem.l_quantity FROM lineitem \
                 JOIN orders ON lineitem.l_orderkey = orders.o_orderkey"
            ) > cost_of("SELECT lineitem.l_quantity FROM lineitem")
        );
    }

    #[test]
    fn more_joins_cost_more() {
        let two = cost_of(
            "SELECT lineitem.l_quantity FROM lineitem \
             JOIN orders ON lineitem.l_orderkey = orders.o_orderkey",
        );
        let three = cost_of(
            "SELECT lineitem.l_quantity FROM lineitem \
             JOIN orders ON lineitem.l_orderkey = orders.o_orderkey \
             JOIN customer ON orders.o_custkey = customer.c_custkey",
        );
        assert!(three > two);
    }

    #[test]
    fn predicates_add_cost() {
        assert!(
            cost_of("SELECT orders.o_totalprice FROM orders WHERE orders.o_totalprice > 100.0")
                > cost_of("SELECT orders.o_totalprice FROM orders") * 0.99
        );
        // Subqueries add their own evaluation cost.
        assert!(
            cost_of(
                "SELECT orders.o_totalprice FROM orders WHERE orders.o_custkey IN \
                 (SELECT customer.c_custkey FROM customer)"
            ) > cost_of("SELECT orders.o_totalprice FROM orders")
        );
    }

    #[test]
    fn dml_costs_track_matched_rows() {
        let narrow = cost_of("DELETE FROM orders WHERE orders.o_orderkey = 5");
        let wide = cost_of("DELETE FROM orders WHERE orders.o_orderkey > 0");
        assert!(wide > narrow);
        let ins = cost_of("INSERT INTO region VALUES (9, 'X')");
        assert!(ins > 0.0 && ins < narrow);
    }

    #[test]
    fn order_by_adds_sort_cost() {
        let plain = cost_of("SELECT lineitem.l_quantity FROM lineitem");
        let sorted =
            cost_of("SELECT lineitem.l_quantity FROM lineitem ORDER BY lineitem.l_quantity");
        assert!(sorted > plain);
    }

    #[test]
    fn costs_are_finite_positive() {
        for sql in [
            "SELECT region.r_name FROM region",
            "SELECT COUNT(orders.o_orderkey) FROM orders GROUP BY orders.o_orderstatus",
            "UPDATE part SET p_size = 3 WHERE part.p_size < 10",
        ] {
            let c = cost_of(sql);
            assert!(c.is_finite() && c > 0.0, "{sql} -> {c}");
        }
    }
}
