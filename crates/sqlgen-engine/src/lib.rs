//! SQL engine substrate for LearnedSQLGen.
//!
//! The paper treats the DBMS as the RL environment: it validates queries,
//! estimates their cardinality/cost for the reward, and (optionally)
//! executes them. This crate provides all of that:
//!
//! * [`ast`] — the SQL subset of the paper's Table 1 grammar,
//! * [`render`] — canonical SQL text rendering,
//! * [`parse`] — a round-tripping recursive-descent parser,
//! * [`exec`] — a hash-join executor (ground truth),
//! * [`card`] — a System-R-style cardinality estimator (the reward oracle),
//! * [`cost`] — a PostgreSQL-flavoured cost model,
//! * [`plan`] — EXPLAIN-style annotated logical plans,
//! * [`validate`] — independent semantic checking.

pub mod ast;
pub mod card;
pub mod cost;
pub mod exec;
pub mod parse;
pub mod plan;
pub mod render;
pub mod validate;

pub use ast::{
    AggFunc, CmpOp, ColRef, DeleteStmt, FromClause, HavingClause, InsertSource, InsertStmt, Join,
    OrderBy, Predicate, Rhs, SelectItem, SelectQuery, Statement, StatementKind, UpdateStmt,
};
pub use card::Estimator;
pub use cost::{CostModel, CostParams};
pub use exec::{like_literal, like_match, ExecError, ExecOptions, Executor, ResultSet};
pub use parse::{parse, parse_select, ParseError};
pub use plan::{explain, Explained, PlanNode, PlanOp};
pub use render::{render, render_select};
pub use validate::{validate, validate_select, ValidationError};
