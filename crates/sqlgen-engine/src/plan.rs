//! `EXPLAIN`-style logical plans with per-node estimates.
//!
//! Database testing (one of the paper's motivating applications) wants more
//! than a pass/fail signal: a tester compares the optimizer's *plan and
//! estimates* across versions. This module derives the logical plan our
//! executor follows and annotates every node with the estimator's row count
//! and the cost model's cumulative cost — the same information
//! `EXPLAIN` prints in a real DBMS.

use crate::ast::*;
use crate::card::Estimator;
use crate::cost::CostModel;
use std::fmt;

/// A logical plan node with estimates.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanNode {
    pub op: PlanOp,
    /// Estimated output rows of this node.
    pub rows: f64,
    pub children: Vec<PlanNode>,
}

/// Plan operators (matching the executor's pipeline).
#[derive(Debug, Clone, PartialEq)]
pub enum PlanOp {
    SeqScan { table: String },
    HashJoin { left: ColRef, right: ColRef },
    Filter { predicate: String, atoms: usize },
    Aggregate { group_by: usize, having: bool },
    Sort { keys: usize },
    Project { items: usize },
    Insert { table: String },
    Update { table: String },
    Delete { table: String },
    Subquery,
}

impl PlanNode {
    /// Number of nodes in the subtree.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(PlanNode::size).sum::<usize>()
    }

    /// Depth of the subtree.
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(PlanNode::depth).max().unwrap_or(0)
    }

    fn fmt_indent(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        for _ in 0..indent {
            write!(f, "  ")?;
        }
        match &self.op {
            PlanOp::SeqScan { table } => write!(f, "Seq Scan on {table}")?,
            PlanOp::HashJoin { left, right } => write!(f, "Hash Join ({left} = {right})")?,
            PlanOp::Filter { predicate, atoms } => {
                write!(f, "Filter [{atoms} atoms] ({predicate})")?
            }
            PlanOp::Aggregate { group_by, having } => write!(
                f,
                "Aggregate [group keys: {group_by}{}]",
                if *having { ", having" } else { "" }
            )?,
            PlanOp::Sort { keys } => write!(f, "Sort [{keys} keys]")?,
            PlanOp::Project { items } => write!(f, "Project [{items} items]")?,
            PlanOp::Insert { table } => write!(f, "Insert into {table}")?,
            PlanOp::Update { table } => write!(f, "Update {table}")?,
            PlanOp::Delete { table } => write!(f, "Delete from {table}")?,
            PlanOp::Subquery => write!(f, "Subquery")?,
        }
        writeln!(f, "  (rows={:.0})", self.rows)?;
        for c in &self.children {
            c.fmt_indent(f, indent + 1)?;
        }
        Ok(())
    }
}

impl fmt::Display for PlanNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indent(f, 0)
    }
}

/// An explained statement: the plan tree plus totals.
#[derive(Debug, Clone)]
pub struct Explained {
    pub plan: PlanNode,
    /// Estimated statement cardinality.
    pub rows: f64,
    /// Estimated total cost.
    pub cost: f64,
}

impl fmt::Display for Explained {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "estimated rows: {:.0}, cost: {:.2}",
            self.rows, self.cost
        )?;
        self.plan.fmt_indent(f, 0)
    }
}

/// Builds the annotated logical plan for a statement.
pub fn explain(est: &Estimator, cost: &CostModel, stmt: &Statement) -> Explained {
    let plan = match stmt {
        Statement::Select(q) => select_plan(est, q),
        Statement::Insert(i) => PlanNode {
            op: PlanOp::Insert {
                table: i.table.clone(),
            },
            rows: est.cardinality(stmt),
            children: match &i.source {
                InsertSource::Values(_) => Vec::new(),
                InsertSource::Query(q) => vec![select_plan(est, q)],
            },
        },
        Statement::Update(u) => dml_plan(
            est,
            PlanOp::Update {
                table: u.table.clone(),
            },
            &u.table,
            u.predicate.as_ref(),
            est.cardinality(stmt),
        ),
        Statement::Delete(d) => dml_plan(
            est,
            PlanOp::Delete {
                table: d.table.clone(),
            },
            &d.table,
            d.predicate.as_ref(),
            est.cardinality(stmt),
        ),
    };
    Explained {
        rows: est.cardinality(stmt),
        cost: cost.cost(est, stmt),
        plan,
    }
}

fn table_rows(est: &Estimator, t: &str) -> f64 {
    est.table_stats(t)
        .map(|s| s.row_count as f64)
        .unwrap_or(0.0)
}

fn select_plan(est: &Estimator, q: &SelectQuery) -> PlanNode {
    // Scan + join pipeline.
    let mut node = PlanNode {
        op: PlanOp::SeqScan {
            table: q.from.base.clone(),
        },
        rows: table_rows(est, &q.from.base),
        children: Vec::new(),
    };
    let mut from_so_far = FromClause::single(q.from.base.clone());
    for j in &q.from.joins {
        from_so_far.joins.push(j.clone());
        let rows = est.join_cardinality(&from_so_far);
        let scan = PlanNode {
            op: PlanOp::SeqScan {
                table: j.table.clone(),
            },
            rows: table_rows(est, &j.table),
            children: Vec::new(),
        };
        node = PlanNode {
            op: PlanOp::HashJoin {
                left: j.left.clone(),
                right: j.right.clone(),
            },
            rows,
            children: vec![node, scan],
        };
    }

    // Filter.
    if let Some(p) = &q.predicate {
        let rows = est.filtered_cardinality(q);
        let mut children = vec![node];
        children.extend(subquery_plans(est, p));
        node = PlanNode {
            op: PlanOp::Filter {
                predicate: predicate_summary(p),
                atoms: p.atom_count(),
            },
            rows,
            children,
        };
    }

    // Aggregate / project.
    if q.is_aggregate() {
        node = PlanNode {
            op: PlanOp::Aggregate {
                group_by: q.group_by.len(),
                having: q.having.is_some(),
            },
            rows: est.select_cardinality(q),
            children: vec![node],
        };
    } else {
        node = PlanNode {
            op: PlanOp::Project {
                items: q.select.len().max(1),
            },
            rows: est.select_cardinality(q),
            children: vec![node],
        };
    }

    if !q.order_by.is_empty() {
        node = PlanNode {
            op: PlanOp::Sort {
                keys: q.order_by.len(),
            },
            rows: node.rows,
            children: vec![node],
        };
    }
    node
}

fn dml_plan(
    est: &Estimator,
    op: PlanOp,
    table: &str,
    pred: Option<&Predicate>,
    rows: f64,
) -> PlanNode {
    let mut child = PlanNode {
        op: PlanOp::SeqScan {
            table: table.to_string(),
        },
        rows: table_rows(est, table),
        children: Vec::new(),
    };
    if let Some(p) = pred {
        let mut children = vec![child];
        children.extend(subquery_plans(est, p));
        child = PlanNode {
            op: PlanOp::Filter {
                predicate: predicate_summary(p),
                atoms: p.atom_count(),
            },
            rows,
            children,
        };
    }
    PlanNode {
        op,
        rows,
        children: vec![child],
    }
}

fn subquery_plans(est: &Estimator, p: &Predicate) -> Vec<PlanNode> {
    match p {
        Predicate::Cmp { rhs, .. } => match rhs {
            Rhs::Subquery(sub) => vec![wrap_subquery(est, sub)],
            Rhs::Value(_) => Vec::new(),
        },
        Predicate::In { sub, .. } | Predicate::Exists { sub } => vec![wrap_subquery(est, sub)],
        Predicate::Like { .. } => Vec::new(),
        Predicate::Not(inner) => subquery_plans(est, inner),
        Predicate::And(a, b) | Predicate::Or(a, b) => {
            let mut v = subquery_plans(est, a);
            v.extend(subquery_plans(est, b));
            v
        }
    }
}

fn wrap_subquery(est: &Estimator, sub: &SelectQuery) -> PlanNode {
    PlanNode {
        op: PlanOp::Subquery,
        rows: est.select_cardinality(sub),
        children: vec![select_plan(est, sub)],
    }
}

/// Shortened predicate text for plan display: renders through a dummy
/// query and strips the prefix (the predicate renderer is private).
fn predicate_summary(p: &Predicate) -> String {
    let mut s = String::new();
    let full = crate::render::render(&Statement::Select(SelectQuery {
        from: FromClause::single("x"),
        select: Vec::new(),
        predicate: Some(p.clone()),
        group_by: Vec::new(),
        having: None,
        order_by: Vec::new(),
    }));
    if let Some(idx) = full.find(" WHERE ") {
        s.push_str(&full[idx + 7..]);
    }
    if s.len() > 60 {
        s.truncate(57);
        s.push_str("...");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use sqlgen_storage::gen::tpch_database;

    fn explain_sql(sql: &str) -> Explained {
        let db = tpch_database(0.2, 5);
        let est = Estimator::build(&db);
        explain(&est, &CostModel::default(), &parse(sql).unwrap())
    }

    #[test]
    fn scan_plan_shape() {
        let e = explain_sql("SELECT region.r_name FROM region");
        assert_eq!(e.plan.size(), 2); // project over scan
        assert!(matches!(e.plan.op, PlanOp::Project { .. }));
        assert!(e.rows > 0.0 && e.cost > 0.0);
    }

    #[test]
    fn join_filter_plan_shape() {
        let e = explain_sql(
            "SELECT lineitem.l_quantity FROM lineitem \
             JOIN orders ON lineitem.l_orderkey = orders.o_orderkey \
             WHERE lineitem.l_quantity < 10",
        );
        // project > filter > hashjoin > (scan, scan)
        assert_eq!(e.plan.depth(), 4);
        let filter = &e.plan.children[0];
        assert!(matches!(filter.op, PlanOp::Filter { .. }));
        let join = &filter.children[0];
        assert!(matches!(join.op, PlanOp::HashJoin { .. }));
        assert_eq!(join.children.len(), 2);
        // Filter output <= join output.
        assert!(filter.rows <= join.rows + 1e-9);
    }

    #[test]
    fn aggregate_and_sort_nodes() {
        let e = explain_sql(
            "SELECT lineitem.l_shipmode, COUNT(lineitem.l_quantity) FROM lineitem \
             GROUP BY lineitem.l_shipmode",
        );
        assert!(matches!(e.plan.op, PlanOp::Aggregate { group_by: 1, .. }));

        let e =
            explain_sql("SELECT orders.o_totalprice FROM orders ORDER BY orders.o_totalprice DESC");
        assert!(matches!(e.plan.op, PlanOp::Sort { keys: 1 }));
    }

    #[test]
    fn subquery_appears_in_plan() {
        let e = explain_sql(
            "SELECT orders.o_orderkey FROM orders WHERE orders.o_custkey IN \
             (SELECT customer.c_custkey FROM customer)",
        );
        let text = e.to_string();
        assert!(text.contains("Subquery"), "{text}");
        assert!(text.contains("Seq Scan on customer"), "{text}");
    }

    #[test]
    fn dml_plans() {
        let e = explain_sql("DELETE FROM part WHERE part.p_size < 10");
        assert!(matches!(e.plan.op, PlanOp::Delete { .. }));
        assert!(e.plan.to_string().contains("Filter"));
        let e = explain_sql("INSERT INTO region VALUES (9, 'X')");
        assert!(matches!(e.plan.op, PlanOp::Insert { .. }));
        assert_eq!(e.rows, 1.0);
    }

    #[test]
    fn display_is_indented() {
        let e = explain_sql(
            "SELECT lineitem.l_quantity FROM lineitem \
             JOIN orders ON lineitem.l_orderkey = orders.o_orderkey",
        );
        let text = e.to_string();
        assert!(text.contains("\n  Hash Join") || text.contains("Hash Join"));
        assert!(text.contains("    Seq Scan"), "{text}");
        assert!(text.starts_with("estimated rows:"));
    }
}
