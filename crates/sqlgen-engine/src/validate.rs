//! Semantic validation of statements against a database catalog.
//!
//! Implements the paper's "Syntactic and Semantic Checking" (§5):
//! references must resolve, datatypes must be compatible, only numeric
//! attributes may appear in SUM/AVG/MAX/MIN, and joins must follow PK-FK
//! (or user-declared) relationships. The FSM guarantees these properties by
//! construction; this module is the independent checker the test suite uses
//! to prove that guarantee holds.

use crate::ast::*;
use sqlgen_storage::{DataType, Database, Value};
use std::fmt;

/// A semantic validation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    UnknownTable(String),
    UnknownColumn(String),
    /// Column referenced from a table not in the FROM clause.
    TableNotInScope(String),
    /// Aggregate over a non-numeric column.
    NonNumericAggregate(String),
    /// Comparison between incompatible types.
    TypeMismatch(String),
    /// Join without a declared PK-FK edge.
    JoinNotDeclared(String),
    /// Non-aggregated select item not in GROUP BY.
    NotGrouped(String),
    /// HAVING without GROUP BY.
    HavingWithoutGroupBy,
    /// Subquery used as a value must return a single column.
    SubqueryArity,
    /// Scalar-compared subquery must be an aggregate (guaranteed scalar).
    SubqueryNotScalar,
    /// INSERT row arity mismatch.
    InsertArity(String),
    /// Duplicate table in FROM (self-joins are out of the paper's grammar).
    DuplicateTable(String),
    /// ORDER BY key not in the SELECT list.
    OrderByNotProjected(String),
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::UnknownTable(t) => write!(f, "unknown table {t}"),
            ValidationError::UnknownColumn(c) => write!(f, "unknown column {c}"),
            ValidationError::TableNotInScope(t) => write!(f, "table {t} not in FROM clause"),
            ValidationError::NonNumericAggregate(c) => {
                write!(f, "aggregate over non-numeric column {c}")
            }
            ValidationError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            ValidationError::JoinNotDeclared(m) => write!(f, "join not along a PK-FK edge: {m}"),
            ValidationError::NotGrouped(c) => write!(f, "column {c} not in GROUP BY"),
            ValidationError::HavingWithoutGroupBy => write!(f, "HAVING requires GROUP BY"),
            ValidationError::SubqueryArity => write!(f, "subquery must return one column"),
            ValidationError::SubqueryNotScalar => {
                write!(f, "scalar-compared subquery must aggregate")
            }
            ValidationError::InsertArity(t) => write!(f, "INSERT arity mismatch for {t}"),
            ValidationError::DuplicateTable(t) => write!(f, "table {t} appears twice in FROM"),
            ValidationError::OrderByNotProjected(c) => {
                write!(f, "ORDER BY key {c} is not in the SELECT list")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Validates a statement; returns the first error found.
pub fn validate(db: &Database, stmt: &Statement) -> Result<(), ValidationError> {
    match stmt {
        Statement::Select(q) => validate_select(db, q),
        Statement::Insert(i) => {
            let schema = db
                .schema(&i.table)
                .ok_or_else(|| ValidationError::UnknownTable(i.table.clone()))?;
            match &i.source {
                InsertSource::Values(vals) => {
                    if vals.len() != schema.columns.len() {
                        return Err(ValidationError::InsertArity(i.table.clone()));
                    }
                    for (v, c) in vals.iter().zip(&schema.columns) {
                        check_value_type(v, c.dtype, &c.name)?;
                    }
                    Ok(())
                }
                InsertSource::Query(q) => {
                    validate_select(db, q)?;
                    let arity = if q.select.is_empty() {
                        // SELECT *: arity checked against the source tables.
                        q.from
                            .tables()
                            .iter()
                            .filter_map(|t| db.schema(t))
                            .map(|s| s.columns.len())
                            .sum()
                    } else {
                        q.select.len()
                    };
                    if arity != schema.columns.len() {
                        return Err(ValidationError::InsertArity(i.table.clone()));
                    }
                    Ok(())
                }
            }
        }
        Statement::Update(u) => {
            let schema = db
                .schema(&u.table)
                .ok_or_else(|| ValidationError::UnknownTable(u.table.clone()))?;
            for (c, v) in &u.sets {
                let col = schema
                    .column(c)
                    .ok_or_else(|| ValidationError::UnknownColumn(c.clone()))?;
                check_value_type(v, col.dtype, c)?;
            }
            if let Some(p) = &u.predicate {
                validate_predicate(db, p, &[u.table.as_str()])?;
            }
            Ok(())
        }
        Statement::Delete(d) => {
            db.schema(&d.table)
                .ok_or_else(|| ValidationError::UnknownTable(d.table.clone()))?;
            if let Some(p) = &d.predicate {
                validate_predicate(db, p, &[d.table.as_str()])?;
            }
            Ok(())
        }
    }
}

/// Validates a `SELECT` query.
pub fn validate_select(db: &Database, q: &SelectQuery) -> Result<(), ValidationError> {
    // FROM clause: tables exist, no duplicates, joins along declared edges.
    let tables = q.from.tables();
    for t in &tables {
        db.schema(t)
            .ok_or_else(|| ValidationError::UnknownTable(t.to_string()))?;
    }
    for (i, t) in tables.iter().enumerate() {
        if tables[..i].contains(t) {
            return Err(ValidationError::DuplicateTable(t.to_string()));
        }
    }
    for (jno, j) in q.from.joins.iter().enumerate() {
        // Left table must already be in scope.
        if !tables[..jno + 1].contains(&j.left.table.as_str()) {
            return Err(ValidationError::TableNotInScope(j.left.table.clone()));
        }
        check_col(db, &j.left, &tables)?;
        check_col(db, &j.right, &tables)?;
        // Join key types must match (paper: "columns with different
        // datatypes cannot be joined").
        let lt = db
            .column_type(&j.left.table, &j.left.column)
            .expect("checked");
        let rt = db
            .column_type(&j.right.table, &j.right.column)
            .expect("checked");
        if !types_comparable(lt, rt) {
            return Err(ValidationError::TypeMismatch(format!(
                "join {} = {}",
                j.left, j.right
            )));
        }
        // The edge must be a declared PK-FK relationship.
        let declared = db.join_edges(&j.left.table).into_iter().any(|e| {
            e.left_column == j.left.column
                && e.right_table == j.table
                && e.right_column == j.right.column
        });
        if !declared {
            return Err(ValidationError::JoinNotDeclared(format!(
                "{} = {}",
                j.left, j.right
            )));
        }
    }

    // SELECT items.
    for item in &q.select {
        check_col(db, item.col_ref(), &tables)?;
        if let SelectItem::Agg(f, c) = item {
            if f.requires_numeric() {
                let t = db.column_type(&c.table, &c.column).expect("checked");
                if !t.is_numeric() {
                    return Err(ValidationError::NonNumericAggregate(c.to_string()));
                }
            }
        }
    }

    // Grouping rules.
    if !q.group_by.is_empty() {
        for c in &q.group_by {
            check_col(db, c, &tables)?;
        }
        for item in &q.select {
            if let SelectItem::Column(c) = item {
                if !q.group_by.contains(c) {
                    return Err(ValidationError::NotGrouped(c.to_string()));
                }
            }
        }
    }
    if let Some(h) = &q.having {
        if q.group_by.is_empty() {
            return Err(ValidationError::HavingWithoutGroupBy);
        }
        check_col(db, &h.col, &tables)?;
        if h.agg.requires_numeric() {
            let t = db
                .column_type(&h.col.table, &h.col.column)
                .expect("checked");
            if !t.is_numeric() {
                return Err(ValidationError::NonNumericAggregate(h.col.to_string()));
            }
        }
        match &h.rhs {
            Rhs::Value(v) => {
                // Aggregates produce numbers; the literal must be numeric.
                if v.as_f64().is_none() && !v.is_null() {
                    return Err(ValidationError::TypeMismatch(format!(
                        "HAVING {} vs {v:?}",
                        h.agg
                    )));
                }
            }
            Rhs::Subquery(sub) => validate_scalar_subquery(db, sub)?,
        }
    }

    // ORDER BY: keys must be projected plain columns (our executor sorts
    // the materialized output).
    for o in &q.order_by {
        check_col(db, &o.col, &tables)?;
        let projected = q
            .select
            .iter()
            .any(|i| matches!(i, SelectItem::Column(c) if *c == o.col));
        if !projected {
            return Err(ValidationError::OrderByNotProjected(o.col.to_string()));
        }
    }

    // WHERE clause.
    if let Some(p) = &q.predicate {
        validate_predicate(db, p, &tables)?;
    }
    Ok(())
}

fn validate_predicate(
    db: &Database,
    p: &Predicate,
    tables: &[&str],
) -> Result<(), ValidationError> {
    match p {
        Predicate::Cmp { col, op: _, rhs } => {
            check_col(db, col, tables)?;
            let ct = db.column_type(&col.table, &col.column).expect("checked");
            match rhs {
                Rhs::Value(v) => {
                    check_value_type(v, ct, &col.to_string())?;
                }
                Rhs::Subquery(sub) => {
                    validate_scalar_subquery(db, sub)?;
                    if !ct.is_numeric() {
                        // Aggregate subqueries produce numbers.
                        return Err(ValidationError::TypeMismatch(format!(
                            "{col} compared to aggregate subquery"
                        )));
                    }
                }
            }
            Ok(())
        }
        Predicate::In { col, sub } => {
            check_col(db, col, tables)?;
            validate_select(db, sub)?;
            if sub.select.len() != 1 {
                return Err(ValidationError::SubqueryArity);
            }
            let ct = db.column_type(&col.table, &col.column).expect("checked");
            let inner = sub.select[0].col_ref();
            let it = db
                .column_type(&inner.table, &inner.column)
                .ok_or_else(|| ValidationError::UnknownColumn(inner.to_string()))?;
            let it = if sub.select[0].is_agg() {
                DataType::Float
            } else {
                it
            };
            if !types_comparable(ct, it) {
                return Err(ValidationError::TypeMismatch(format!("{col} IN subquery")));
            }
            Ok(())
        }
        Predicate::Like { col, .. } => {
            check_col(db, col, tables)?;
            let ct = db.column_type(&col.table, &col.column).expect("checked");
            if ct != DataType::Text {
                return Err(ValidationError::TypeMismatch(format!(
                    "{col} LIKE over non-text column"
                )));
            }
            Ok(())
        }
        Predicate::Exists { sub } => validate_select(db, sub),
        Predicate::Not(inner) => validate_predicate(db, inner, tables),
        Predicate::And(a, b) | Predicate::Or(a, b) => {
            validate_predicate(db, a, tables)?;
            validate_predicate(db, b, tables)
        }
    }
}

/// A subquery compared with a scalar operator must be a plain (non-grouped)
/// aggregate with a single item, so it is scalar by construction.
fn validate_scalar_subquery(db: &Database, sub: &SelectQuery) -> Result<(), ValidationError> {
    validate_select(db, sub)?;
    if sub.select.len() != 1 {
        return Err(ValidationError::SubqueryArity);
    }
    if !sub.select[0].is_agg() || !sub.group_by.is_empty() {
        return Err(ValidationError::SubqueryNotScalar);
    }
    Ok(())
}

fn check_col(db: &Database, col: &ColRef, tables: &[&str]) -> Result<(), ValidationError> {
    if !tables.contains(&col.table.as_str()) {
        return Err(ValidationError::TableNotInScope(col.table.clone()));
    }
    db.column_type(&col.table, &col.column)
        .map(|_| ())
        .ok_or_else(|| ValidationError::UnknownColumn(col.to_string()))
}

fn check_value_type(v: &Value, dtype: DataType, ctx: &str) -> Result<(), ValidationError> {
    let ok = matches!(
        (v, dtype),
        (Value::Null, _)
            | (Value::Int(_), DataType::Int | DataType::Float)
            | (Value::Float(_), DataType::Float | DataType::Int)
            | (Value::Text(_), DataType::Text)
    );
    if ok {
        Ok(())
    } else {
        Err(ValidationError::TypeMismatch(format!(
            "{ctx}: {v:?} vs {dtype}"
        )))
    }
}

fn types_comparable(a: DataType, b: DataType) -> bool {
    a == b || (a.is_numeric() && b.is_numeric())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use sqlgen_storage::gen::tpch_database;

    fn check(sql: &str) -> Result<(), ValidationError> {
        let db = tpch_database(0.1, 1);
        validate(&db, &parse(sql).unwrap())
    }

    #[test]
    fn accepts_valid_queries() {
        check("SELECT orders.o_totalprice FROM orders WHERE orders.o_orderstatus = 'F'").unwrap();
        check(
            "SELECT lineitem.l_quantity FROM lineitem \
             JOIN orders ON lineitem.l_orderkey = orders.o_orderkey \
             WHERE orders.o_totalprice > 1000.0",
        )
        .unwrap();
        check(
            "SELECT orders.o_orderstatus, COUNT(orders.o_orderkey) FROM orders \
             GROUP BY orders.o_orderstatus HAVING SUM(orders.o_totalprice) > 10.0",
        )
        .unwrap();
        check("INSERT INTO region VALUES (9, 'X')").unwrap();
        check("UPDATE part SET p_size = 3 WHERE part.p_size < 10").unwrap();
        check("DELETE FROM part WHERE part.p_brand = 'Brand#11'").unwrap();
    }

    #[test]
    fn rejects_unknown_references() {
        assert!(matches!(
            check("SELECT nope.a FROM nope"),
            Err(ValidationError::UnknownTable(_))
        ));
        assert!(matches!(
            check("SELECT orders.nope FROM orders"),
            Err(ValidationError::UnknownColumn(_))
        ));
        assert!(matches!(
            check("SELECT customer.c_name FROM orders"),
            Err(ValidationError::TableNotInScope(_))
        ));
    }

    #[test]
    fn rejects_undeclared_join() {
        // part and customer share no FK edge.
        assert!(matches!(
            check(
                "SELECT part.p_size FROM part JOIN customer ON part.p_partkey = customer.c_custkey"
            ),
            Err(ValidationError::JoinNotDeclared(_))
        ));
    }

    #[test]
    fn rejects_type_errors() {
        assert!(matches!(
            check("SELECT orders.o_orderkey FROM orders WHERE orders.o_orderstatus < 5"),
            Err(ValidationError::TypeMismatch(_))
        ));
        assert!(matches!(
            check("SELECT SUM(orders.o_orderstatus) FROM orders"),
            Err(ValidationError::NonNumericAggregate(_))
        ));
        assert!(matches!(
            check("INSERT INTO region VALUES ('oops', 'X')"),
            Err(ValidationError::TypeMismatch(_))
        ));
    }

    #[test]
    fn count_over_text_is_fine() {
        check("SELECT COUNT(orders.o_orderstatus) FROM orders").unwrap();
    }

    #[test]
    fn grouping_rules() {
        assert!(matches!(
            check("SELECT orders.o_orderkey FROM orders GROUP BY orders.o_orderstatus"),
            Err(ValidationError::NotGrouped(_))
        ));
        assert!(matches!(
            check(
                "SELECT orders.o_orderkey FROM orders \
                 HAVING SUM(orders.o_totalprice) > 1.0"
            ),
            Err(ValidationError::HavingWithoutGroupBy)
        ));
    }

    #[test]
    fn subquery_rules() {
        // Scalar comparison requires an aggregate subquery.
        assert!(matches!(
            check(
                "SELECT orders.o_totalprice FROM orders WHERE orders.o_totalprice > \
                 (SELECT customer.c_acctbal FROM customer)"
            ),
            Err(ValidationError::SubqueryNotScalar)
        ));
        check(
            "SELECT orders.o_totalprice FROM orders WHERE orders.o_totalprice > \
             (SELECT AVG(customer.c_acctbal) FROM customer)",
        )
        .unwrap();
        check(
            "SELECT orders.o_orderkey FROM orders WHERE orders.o_custkey IN \
             (SELECT customer.c_custkey FROM customer)",
        )
        .unwrap();
        // IN with a text/int mismatch.
        assert!(matches!(
            check(
                "SELECT orders.o_orderkey FROM orders WHERE orders.o_custkey IN \
                 (SELECT customer.c_name FROM customer)"
            ),
            Err(ValidationError::TypeMismatch(_))
        ));
    }

    #[test]
    fn rejects_duplicate_table() {
        assert!(matches!(
            check("SELECT nation.n_name FROM nation JOIN nation ON nation.n_regionkey = nation.n_nationkey"),
            Err(ValidationError::DuplicateTable(_))
        ));
    }

    #[test]
    fn order_by_rules() {
        check("SELECT orders.o_totalprice FROM orders ORDER BY orders.o_totalprice DESC").unwrap();
        assert!(matches!(
            check("SELECT orders.o_orderkey FROM orders ORDER BY orders.o_totalprice"),
            Err(ValidationError::OrderByNotProjected(_))
        ));
        assert!(matches!(
            check("SELECT orders.o_orderkey FROM orders ORDER BY customer.c_name"),
            Err(ValidationError::TableNotInScope(_))
        ));
    }

    #[test]
    fn insert_arity() {
        assert!(matches!(
            check("INSERT INTO region VALUES (9)"),
            Err(ValidationError::InsertArity(_))
        ));
    }
}
