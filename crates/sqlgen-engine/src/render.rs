//! Rendering the AST to SQL text.
//!
//! The output is canonical: rendering, parsing and re-rendering any
//! statement yields the identical string (a property test in `parse.rs`
//! enforces this). `AND` binds tighter than `OR`, so `OR` children of an
//! `AND` node are parenthesized.

use crate::ast::*;

/// Renders a statement as SQL text.
pub fn render(stmt: &Statement) -> String {
    match stmt {
        Statement::Select(q) => render_select(q),
        Statement::Insert(i) => render_insert(i),
        Statement::Update(u) => render_update(u),
        Statement::Delete(d) => render_delete(d),
    }
}

/// Renders a `SELECT` query (no trailing semicolon, usable as a subquery).
pub fn render_select(q: &SelectQuery) -> String {
    let mut out = String::with_capacity(128);
    out.push_str("SELECT ");
    if q.select.is_empty() {
        out.push('*');
    } else {
        for (i, item) in q.select.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            match item {
                SelectItem::Column(c) => out.push_str(&c.to_string()),
                SelectItem::Agg(f, c) => {
                    out.push_str(f.name());
                    out.push('(');
                    out.push_str(&c.to_string());
                    out.push(')');
                }
            }
        }
    }
    out.push_str(" FROM ");
    out.push_str(&q.from.base);
    for j in &q.from.joins {
        out.push_str(" JOIN ");
        out.push_str(&j.table);
        out.push_str(" ON ");
        out.push_str(&j.left.to_string());
        out.push_str(" = ");
        out.push_str(&j.right.to_string());
    }
    if let Some(p) = &q.predicate {
        out.push_str(" WHERE ");
        render_predicate(p, PredCtx::Or, &mut out);
    }
    if !q.group_by.is_empty() {
        out.push_str(" GROUP BY ");
        for (i, c) in q.group_by.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&c.to_string());
        }
    }
    if let Some(h) = &q.having {
        out.push_str(" HAVING ");
        out.push_str(h.agg.name());
        out.push('(');
        out.push_str(&h.col.to_string());
        out.push_str(") ");
        out.push_str(h.op.symbol());
        out.push(' ');
        render_rhs(&h.rhs, &mut out);
    }
    if !q.order_by.is_empty() {
        out.push_str(" ORDER BY ");
        for (i, o) in q.order_by.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&o.col.to_string());
            if o.desc {
                out.push_str(" DESC");
            }
        }
    }
    out
}

/// The binding context a predicate is rendered in: parentheses are inserted
/// only when a looser operator appears under a tighter one.
#[derive(Clone, Copy, PartialEq, PartialOrd)]
enum PredCtx {
    /// Loosest: top level or under an `OR`.
    Or,
    /// Under an `AND`: nested `OR` needs parens.
    And,
    /// Under a `NOT`: any binary operator needs parens.
    Atom,
}

fn render_predicate(p: &Predicate, ctx: PredCtx, out: &mut String) {
    match p {
        Predicate::Cmp { col, op, rhs } => {
            out.push_str(&col.to_string());
            out.push(' ');
            out.push_str(op.symbol());
            out.push(' ');
            render_rhs(rhs, out);
        }
        Predicate::In { col, sub } => {
            out.push_str(&col.to_string());
            out.push_str(" IN (");
            out.push_str(&render_select(sub));
            out.push(')');
        }
        Predicate::Like { col, pattern } => {
            out.push_str(&col.to_string());
            out.push_str(" LIKE '");
            out.push_str(&pattern.replace('\'', "''"));
            out.push('\'');
        }
        Predicate::Exists { sub } => {
            out.push_str("EXISTS (");
            out.push_str(&render_select(sub));
            out.push(')');
        }
        Predicate::Not(inner) => {
            out.push_str("NOT ");
            let needs = matches!(**inner, Predicate::And(..) | Predicate::Or(..));
            if needs {
                out.push('(');
            }
            render_predicate(inner, PredCtx::Atom, out);
            if needs {
                out.push(')');
            }
        }
        Predicate::And(a, b) => {
            let needs = ctx == PredCtx::Atom;
            if needs {
                out.push('(');
            }
            render_predicate(a, PredCtx::And, out);
            out.push_str(" AND ");
            render_predicate(b, PredCtx::And, out);
            if needs {
                out.push(')');
            }
        }
        Predicate::Or(a, b) => {
            let needs = ctx != PredCtx::Or;
            if needs {
                out.push('(');
            }
            render_predicate(a, PredCtx::Or, out);
            out.push_str(" OR ");
            render_predicate(b, PredCtx::Or, out);
            if needs {
                out.push(')');
            }
        }
    }
}

fn render_rhs(rhs: &Rhs, out: &mut String) {
    match rhs {
        Rhs::Value(v) => out.push_str(&v.to_sql()),
        Rhs::Subquery(q) => {
            out.push('(');
            out.push_str(&render_select(q));
            out.push(')');
        }
    }
}

fn render_insert(i: &InsertStmt) -> String {
    match &i.source {
        InsertSource::Values(vals) => {
            let vals: Vec<String> = vals.iter().map(|v| v.to_sql()).collect();
            format!("INSERT INTO {} VALUES ({})", i.table, vals.join(", "))
        }
        InsertSource::Query(q) => format!("INSERT INTO {} {}", i.table, render_select(q)),
    }
}

fn render_update(u: &UpdateStmt) -> String {
    let sets: Vec<String> = u
        .sets
        .iter()
        .map(|(c, v)| format!("{c} = {}", v.to_sql()))
        .collect();
    let mut out = format!("UPDATE {} SET {}", u.table, sets.join(", "));
    if let Some(p) = &u.predicate {
        out.push_str(" WHERE ");
        render_predicate(p, PredCtx::Or, &mut out);
    }
    out
}

fn render_delete(d: &DeleteStmt) -> String {
    let mut out = format!("DELETE FROM {}", d.table);
    if let Some(p) = &d.predicate {
        out.push_str(" WHERE ");
        render_predicate(p, PredCtx::Or, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlgen_storage::Value;

    fn cmp(col: &str, op: CmpOp, v: i64) -> Predicate {
        Predicate::Cmp {
            col: ColRef::new("t", col),
            op,
            rhs: Rhs::Value(Value::Int(v)),
        }
    }

    #[test]
    fn renders_simple_select() {
        let q = SelectQuery {
            from: FromClause::single("t"),
            select: vec![SelectItem::Column(ColRef::new("t", "a"))],
            predicate: Some(cmp("a", CmpOp::Lt, 5)),
            group_by: vec![],
            having: None,
            order_by: vec![],
        };
        assert_eq!(render_select(&q), "SELECT t.a FROM t WHERE t.a < 5");
    }

    #[test]
    fn renders_join_and_groupby_having() {
        let q = SelectQuery {
            from: FromClause {
                base: "t".into(),
                joins: vec![Join {
                    table: "u".into(),
                    left: ColRef::new("t", "id"),
                    right: ColRef::new("u", "tid"),
                }],
            },
            select: vec![SelectItem::Agg(AggFunc::Count, ColRef::new("t", "a"))],
            predicate: None,
            group_by: vec![ColRef::new("u", "g")],
            having: Some(HavingClause {
                agg: AggFunc::Sum,
                col: ColRef::new("t", "a"),
                op: CmpOp::Gt,
                rhs: Rhs::Value(Value::Int(10)),
            }),
            order_by: vec![],
        };
        assert_eq!(
            render_select(&q),
            "SELECT COUNT(t.a) FROM t JOIN u ON t.id = u.tid GROUP BY u.g HAVING SUM(t.a) > 10"
        );
    }

    #[test]
    fn parenthesizes_or_under_and() {
        let p = cmp("a", CmpOp::Lt, 1)
            .or(cmp("b", CmpOp::Gt, 2))
            .and(cmp("c", CmpOp::Eq, 3));
        let q = SelectQuery {
            from: FromClause::single("t"),
            select: vec![SelectItem::Column(ColRef::new("t", "a"))],
            predicate: Some(p),
            group_by: vec![],
            having: None,
            order_by: vec![],
        };
        assert_eq!(
            render_select(&q),
            "SELECT t.a FROM t WHERE (t.a < 1 OR t.b > 2) AND t.c = 3"
        );
    }

    #[test]
    fn flat_and_or_chain_has_no_parens() {
        let p = cmp("a", CmpOp::Lt, 1)
            .and(cmp("b", CmpOp::Gt, 2))
            .or(cmp("c", CmpOp::Eq, 3));
        let mut out = String::new();
        render_predicate(&p, PredCtx::Or, &mut out);
        assert_eq!(out, "t.a < 1 AND t.b > 2 OR t.c = 3");
    }

    #[test]
    fn renders_dml() {
        let ins = Statement::Insert(InsertStmt {
            table: "t".into(),
            source: InsertSource::Values(vec![Value::Int(1), Value::Text("x".into())]),
        });
        assert_eq!(render(&ins), "INSERT INTO t VALUES (1, 'x')");

        let upd = Statement::Update(UpdateStmt {
            table: "t".into(),
            sets: vec![("a".into(), Value::Int(2))],
            predicate: Some(cmp("b", CmpOp::Eq, 7)),
        });
        assert_eq!(render(&upd), "UPDATE t SET a = 2 WHERE t.b = 7");

        let del = Statement::Delete(DeleteStmt {
            table: "t".into(),
            predicate: None,
        });
        assert_eq!(render(&del), "DELETE FROM t");
    }

    #[test]
    fn renders_nested_in_subquery() {
        let sub = SelectQuery::scan("u", vec![SelectItem::Column(ColRef::new("u", "id"))]);
        let p = Predicate::In {
            col: ColRef::new("t", "uid"),
            sub: Box::new(sub),
        };
        let q = SelectQuery {
            from: FromClause::single("t"),
            select: vec![SelectItem::Column(ColRef::new("t", "a"))],
            predicate: Some(p),
            group_by: vec![],
            having: None,
            order_by: vec![],
        };
        assert_eq!(
            render_select(&q),
            "SELECT t.a FROM t WHERE t.uid IN (SELECT u.id FROM u)"
        );
    }
}
