//! A recursive-descent parser for the SQL subset the generator emits.
//!
//! Round-tripping is the contract: for every statement `s` the generator can
//! build, `parse(render(s)) == s`. A proptest in `tests/` enforces this over
//! generated query corpora. The parser exists so that (a) users can feed
//! externally produced template queries to the template baseline and (b) the
//! test suite can treat SQL text, not Rust structs, as the interchange format.

use crate::ast::*;
use sqlgen_storage::Value;
use std::fmt;

/// Parse errors with byte offsets into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub message: String,
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Symbol(&'static str),
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { src, pos: 0 }
    }

    fn tokens(mut self) -> Result<Vec<(Tok, usize)>, ParseError> {
        let mut out = Vec::new();
        while self.pos < self.src.len() {
            // Dispatch on the real character, not the lead byte: a
            // multi-byte char whose lead byte casts to an ASCII-alphabetic
            // value must not be mistaken for an identifier start (found by
            // the parser fuzz test — it caused an infinite loop).
            let Some(c) = self.peek() else { break };
            let start = self.pos;
            match c {
                ' ' | '\t' | '\n' | '\r' => {
                    self.pos += 1;
                }
                '(' | ')' | ',' | '.' | '*' | ';' => {
                    let s = match c {
                        '(' => "(",
                        ')' => ")",
                        ',' => ",",
                        '.' => ".",
                        '*' => "*",
                        _ => ";",
                    };
                    out.push((Tok::Symbol(s), start));
                    self.pos += 1;
                }
                '=' => {
                    out.push((Tok::Symbol("="), start));
                    self.pos += 1;
                }
                '<' => {
                    self.pos += 1;
                    if self.peek() == Some('=') {
                        self.pos += 1;
                        out.push((Tok::Symbol("<="), start));
                    } else if self.peek() == Some('>') {
                        self.pos += 1;
                        out.push((Tok::Symbol("<>"), start));
                    } else {
                        out.push((Tok::Symbol("<"), start));
                    }
                }
                '>' => {
                    self.pos += 1;
                    if self.peek() == Some('=') {
                        self.pos += 1;
                        out.push((Tok::Symbol(">="), start));
                    } else {
                        out.push((Tok::Symbol(">"), start));
                    }
                }
                '\'' => {
                    self.pos += 1;
                    let mut s = String::new();
                    loop {
                        match self.peek() {
                            Some('\'') => {
                                self.pos += 1;
                                if self.peek() == Some('\'') {
                                    s.push('\'');
                                    self.pos += 1;
                                } else {
                                    break;
                                }
                            }
                            Some(ch) => {
                                s.push(ch);
                                self.pos += ch.len_utf8();
                            }
                            None => {
                                return Err(ParseError {
                                    message: "unterminated string literal".into(),
                                    offset: start,
                                })
                            }
                        }
                    }
                    out.push((Tok::Str(s), start));
                }
                '-' | '0'..='9' => {
                    let neg = c == '-';
                    if neg {
                        self.pos += 1;
                        if !self.peek().is_some_and(|c| c.is_ascii_digit()) {
                            return Err(ParseError {
                                message: "expected digits after '-'".into(),
                                offset: start,
                            });
                        }
                    }
                    let num_start = self.pos;
                    let mut saw_dot = false;
                    let mut saw_exp = false;
                    while let Some(ch) = self.peek() {
                        if ch.is_ascii_digit() {
                            self.pos += 1;
                        } else if ch == '.' && !saw_dot && !saw_exp {
                            // Only a decimal point if a digit follows
                            // (avoids eating the dot of `1.t` — not valid SQL
                            // here anyway, but be defensive).
                            let next = self.src[self.pos + 1..].chars().next();
                            if next.is_some_and(|c| c.is_ascii_digit()) {
                                saw_dot = true;
                                self.pos += 1;
                            } else {
                                break;
                            }
                        } else if (ch == 'e' || ch == 'E') && !saw_exp {
                            let rest = &self.src[self.pos + 1..];
                            let mut chars = rest.chars();
                            let n1 = chars.next();
                            let ok = match n1 {
                                Some(c2) if c2.is_ascii_digit() => true,
                                Some('-') | Some('+') => {
                                    chars.next().is_some_and(|c3| c3.is_ascii_digit())
                                }
                                _ => false,
                            };
                            if ok {
                                saw_exp = true;
                                self.pos += 1;
                                if let Some('-') | Some('+') = self.peek() {
                                    self.pos += 1;
                                }
                            } else {
                                break;
                            }
                        } else {
                            break;
                        }
                    }
                    let text = &self.src[num_start..self.pos];
                    if saw_dot || saw_exp {
                        let v: f64 = text.parse().map_err(|_| ParseError {
                            message: format!("bad float literal {text}"),
                            offset: start,
                        })?;
                        out.push((Tok::Float(if neg { -v } else { v }), start));
                    } else {
                        let v: i64 = text.parse().map_err(|_| ParseError {
                            message: format!("bad int literal {text}"),
                            offset: start,
                        })?;
                        out.push((Tok::Int(if neg { -v } else { v }), start));
                    }
                }
                c if c.is_alphabetic() || c == '_' => {
                    // The first char is consumed unconditionally, so the
                    // lexer always makes progress. Each continuation char is
                    // peeked exactly once — no second `unwrap` that could
                    // panic if the two reads ever disagreed.
                    self.pos += c.len_utf8();
                    while let Some(ch) = self.peek() {
                        if ch.is_alphanumeric() || ch == '_' || ch == '#' {
                            self.pos += ch.len_utf8();
                        } else {
                            break;
                        }
                    }
                    out.push((Tok::Ident(self.src[start..self.pos].to_string()), start));
                }
                other => {
                    return Err(ParseError {
                        message: format!("unexpected character {other:?}"),
                        offset: start,
                    })
                }
            }
        }
        Ok(out)
    }

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }
}

/// Maximum parser recursion depth (nested parens/subqueries/NOT chains).
/// Protects against stack overflow on adversarial inputs.
const MAX_DEPTH: usize = 64;

struct Parser {
    toks: Vec<(Tok, usize)>,
    idx: usize,
    depth: usize,
}

/// RAII guard for the recursion-depth budget.
macro_rules! enter {
    ($self:ident) => {{
        $self.depth += 1;
        if $self.depth > MAX_DEPTH {
            $self.depth -= 1;
            return Err($self.err("expression nesting too deep"));
        }
    }};
}

macro_rules! leave {
    ($self:ident) => {
        $self.depth -= 1;
    };
}

/// Parses a single SQL statement.
pub fn parse(sql: &str) -> Result<Statement, ParseError> {
    let toks = Lexer::new(sql).tokens()?;
    let mut p = Parser {
        toks,
        idx: 0,
        depth: 0,
    };
    let stmt = p.statement()?;
    // Allow one trailing semicolon.
    p.eat_symbol(";");
    if p.idx != p.toks.len() {
        return Err(p.err("trailing tokens after statement"));
    }
    Ok(stmt)
}

/// Parses a `SELECT` query (rejects DML).
pub fn parse_select(sql: &str) -> Result<SelectQuery, ParseError> {
    match parse(sql)? {
        Statement::Select(q) => Ok(q),
        other => Err(ParseError {
            message: format!("expected SELECT, got {:?}", other.kind()),
            offset: 0,
        }),
    }
}

impl Parser {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        let offset = self.toks.get(self.idx).map(|t| t.1).unwrap_or(usize::MAX);
        ParseError {
            message: msg.into(),
            offset,
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.idx).map(|t| &t.0)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.idx).map(|t| t.0.clone());
        if t.is_some() {
            self.idx += 1;
        }
        t
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword(kw) {
            self.idx += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected keyword {kw}")))
        }
    }

    fn eat_symbol(&mut self, s: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Symbol(sym)) if *sym == s) {
            self.idx += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, s: &str) -> Result<(), ParseError> {
        if self.eat_symbol(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected '{s}'")))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            _ => {
                self.idx = self.idx.saturating_sub(1);
                Err(self.err("expected identifier"))
            }
        }
    }

    fn statement(&mut self) -> Result<Statement, ParseError> {
        if self.peek_keyword("SELECT") {
            Ok(Statement::Select(self.select()?))
        } else if self.eat_keyword("INSERT") {
            self.expect_keyword("INTO")?;
            let table = self.ident()?;
            if self.eat_keyword("VALUES") {
                self.expect_symbol("(")?;
                let mut values = Vec::new();
                loop {
                    values.push(self.literal()?);
                    if !self.eat_symbol(",") {
                        break;
                    }
                }
                self.expect_symbol(")")?;
                Ok(Statement::Insert(InsertStmt {
                    table,
                    source: InsertSource::Values(values),
                }))
            } else {
                let q = self.select()?;
                Ok(Statement::Insert(InsertStmt {
                    table,
                    source: InsertSource::Query(Box::new(q)),
                }))
            }
        } else if self.eat_keyword("UPDATE") {
            let table = self.ident()?;
            self.expect_keyword("SET")?;
            let mut sets = Vec::new();
            loop {
                let col = self.ident()?;
                self.expect_symbol("=")?;
                sets.push((col, self.literal()?));
                if !self.eat_symbol(",") {
                    break;
                }
            }
            let predicate = if self.eat_keyword("WHERE") {
                Some(self.or_expr()?)
            } else {
                None
            };
            Ok(Statement::Update(UpdateStmt {
                table,
                sets,
                predicate,
            }))
        } else if self.eat_keyword("DELETE") {
            self.expect_keyword("FROM")?;
            let table = self.ident()?;
            let predicate = if self.eat_keyword("WHERE") {
                Some(self.or_expr()?)
            } else {
                None
            };
            Ok(Statement::Delete(DeleteStmt { table, predicate }))
        } else {
            Err(self.err("expected SELECT/INSERT/UPDATE/DELETE"))
        }
    }

    fn select(&mut self) -> Result<SelectQuery, ParseError> {
        enter!(self);
        let out = self.select_inner();
        leave!(self);
        out
    }

    fn select_inner(&mut self) -> Result<SelectQuery, ParseError> {
        self.expect_keyword("SELECT")?;
        let mut select = Vec::new();
        if self.eat_symbol("*") {
            // `SELECT *` maps to an empty item list (renderer's convention).
        } else {
            loop {
                select.push(self.select_item()?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }
        self.expect_keyword("FROM")?;
        let base = self.ident()?;
        let mut joins = Vec::new();
        while self.eat_keyword("JOIN") {
            let table = self.ident()?;
            self.expect_keyword("ON")?;
            let left = self.col_ref()?;
            self.expect_symbol("=")?;
            let right = self.col_ref()?;
            joins.push(Join { table, left, right });
        }
        let predicate = if self.eat_keyword("WHERE") {
            Some(self.or_expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            loop {
                group_by.push(self.col_ref()?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }
        let having = if self.eat_keyword("HAVING") {
            let agg = self.agg_func()?;
            self.expect_symbol("(")?;
            let col = self.col_ref()?;
            self.expect_symbol(")")?;
            let op = self.cmp_op()?;
            let rhs = self.rhs()?;
            Some(HavingClause { agg, col, op, rhs })
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let col = self.col_ref()?;
                let desc = self.eat_keyword("DESC");
                order_by.push(OrderBy { col, desc });
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }
        Ok(SelectQuery {
            from: FromClause { base, joins },
            select,
            predicate,
            group_by,
            having,
            order_by,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem, ParseError> {
        // Lookahead: `AGG (` means an aggregate.
        if let Some(Tok::Ident(name)) = self.peek() {
            if let Some(agg) = agg_from_name(name) {
                if matches!(self.toks.get(self.idx + 1), Some((Tok::Symbol("("), _))) {
                    self.idx += 2;
                    let col = self.col_ref()?;
                    self.expect_symbol(")")?;
                    return Ok(SelectItem::Agg(agg, col));
                }
            }
        }
        Ok(SelectItem::Column(self.col_ref()?))
    }

    fn agg_func(&mut self) -> Result<AggFunc, ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) => {
                agg_from_name(&s).ok_or_else(|| self.err(format!("unknown aggregate {s}")))
            }
            _ => Err(self.err("expected aggregate function")),
        }
    }

    fn col_ref(&mut self) -> Result<ColRef, ParseError> {
        let table = self.ident()?;
        self.expect_symbol(".")?;
        let column = self.ident()?;
        Ok(ColRef { table, column })
    }

    fn cmp_op(&mut self) -> Result<CmpOp, ParseError> {
        let op = match self.peek() {
            Some(Tok::Symbol("<")) => CmpOp::Lt,
            Some(Tok::Symbol("<=")) => CmpOp::Le,
            Some(Tok::Symbol(">")) => CmpOp::Gt,
            Some(Tok::Symbol(">=")) => CmpOp::Ge,
            Some(Tok::Symbol("=")) => CmpOp::Eq,
            Some(Tok::Symbol("<>")) => CmpOp::Ne,
            _ => return Err(self.err("expected comparison operator")),
        };
        self.idx += 1;
        Ok(op)
    }

    fn literal(&mut self) -> Result<Value, ParseError> {
        match self.next() {
            Some(Tok::Int(v)) => Ok(Value::Int(v)),
            Some(Tok::Float(v)) => Ok(Value::Float(v)),
            Some(Tok::Str(s)) => Ok(Value::Text(s)),
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("NULL") => Ok(Value::Null),
            _ => {
                self.idx = self.idx.saturating_sub(1);
                Err(self.err("expected literal"))
            }
        }
    }

    fn rhs(&mut self) -> Result<Rhs, ParseError> {
        if matches!(self.peek(), Some(Tok::Symbol("(")))
            && matches!(self.toks.get(self.idx + 1), Some((Tok::Ident(s), _)) if s.eq_ignore_ascii_case("SELECT"))
        {
            self.expect_symbol("(")?;
            let q = self.select()?;
            self.expect_symbol(")")?;
            Ok(Rhs::Subquery(Box::new(q)))
        } else {
            Ok(Rhs::Value(self.literal()?))
        }
    }

    fn or_expr(&mut self) -> Result<Predicate, ParseError> {
        let mut left = self.and_expr()?;
        while self.eat_keyword("OR") {
            let right = self.and_expr()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Predicate, ParseError> {
        let mut left = self.not_expr()?;
        while self.eat_keyword("AND") {
            let right = self.not_expr()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Predicate, ParseError> {
        enter!(self);
        let out = if self.eat_keyword("NOT") {
            self.not_expr().map(|p| Predicate::Not(Box::new(p)))
        } else {
            self.atom()
        };
        leave!(self);
        out
    }

    fn atom(&mut self) -> Result<Predicate, ParseError> {
        if self.eat_keyword("EXISTS") {
            self.expect_symbol("(")?;
            let q = self.select()?;
            self.expect_symbol(")")?;
            return Ok(Predicate::Exists { sub: Box::new(q) });
        }
        if matches!(self.peek(), Some(Tok::Symbol("("))) {
            self.expect_symbol("(")?;
            let p = self.or_expr()?;
            self.expect_symbol(")")?;
            return Ok(p);
        }
        let col = self.col_ref()?;
        if self.eat_keyword("IN") {
            self.expect_symbol("(")?;
            let q = self.select()?;
            self.expect_symbol(")")?;
            return Ok(Predicate::In {
                col,
                sub: Box::new(q),
            });
        }
        if self.eat_keyword("LIKE") {
            match self.next() {
                Some(Tok::Str(pattern)) => return Ok(Predicate::Like { col, pattern }),
                _ => return Err(self.err("expected string literal after LIKE")),
            }
        }
        let op = self.cmp_op()?;
        let rhs = self.rhs()?;
        Ok(Predicate::Cmp { col, op, rhs })
    }
}

fn agg_from_name(s: &str) -> Option<AggFunc> {
    match s.to_ascii_uppercase().as_str() {
        "MAX" => Some(AggFunc::Max),
        "MIN" => Some(AggFunc::Min),
        "SUM" => Some(AggFunc::Sum),
        "AVG" => Some(AggFunc::Avg),
        "COUNT" => Some(AggFunc::Count),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::render::render;

    fn roundtrip(sql: &str) {
        let stmt = parse(sql).unwrap_or_else(|e| panic!("parse {sql}: {e}"));
        assert_eq!(render(&stmt), sql, "round-trip mismatch");
    }

    #[test]
    fn roundtrips_select_variants() {
        roundtrip("SELECT t.a FROM t");
        roundtrip("SELECT t.a, t.b FROM t WHERE t.a < 5");
        roundtrip("SELECT COUNT(t.a) FROM t JOIN u ON t.id = u.tid WHERE t.a >= 1 AND u.b = 'x'");
        roundtrip("SELECT t.a FROM t WHERE (t.a < 1 OR t.b > 2) AND t.c = 3");
        roundtrip("SELECT t.a FROM t WHERE t.a < 1 AND t.b > 2 OR t.c = 3");
        roundtrip("SELECT AVG(t.a) FROM t GROUP BY t.g HAVING SUM(t.a) > 10");
        roundtrip("SELECT t.a FROM t WHERE t.uid IN (SELECT u.id FROM u)");
        roundtrip("SELECT t.a FROM t WHERE EXISTS (SELECT u.id FROM u WHERE u.x = 1)");
        roundtrip("SELECT t.a FROM t WHERE t.a > (SELECT MAX(u.v) FROM u)");
        roundtrip("SELECT t.a FROM t WHERE NOT t.a = 1");
        roundtrip("SELECT t.a FROM t WHERE t.b LIKE '%foo%'");
        roundtrip("SELECT t.a FROM t ORDER BY t.a");
        roundtrip("SELECT t.a, t.b FROM t WHERE t.a < 5 ORDER BY t.b DESC, t.a");
        roundtrip("SELECT t.a FROM t WHERE NOT t.b LIKE 'x_y' AND t.a < 2");
    }

    #[test]
    fn roundtrips_dml() {
        roundtrip("INSERT INTO t VALUES (1, 'x', 2.5)");
        roundtrip("INSERT INTO t SELECT u.a FROM u WHERE u.b < 3");
        roundtrip("UPDATE t SET a = 2 WHERE t.b = 7");
        roundtrip("UPDATE t SET a = 2, b = 'y'");
        roundtrip("DELETE FROM t WHERE t.a <> 0");
        roundtrip("DELETE FROM t");
    }

    #[test]
    fn parses_numbers() {
        let s = parse("SELECT t.a FROM t WHERE t.a = -3").unwrap();
        if let Statement::Select(q) = s {
            match q.predicate.unwrap() {
                Predicate::Cmp {
                    rhs: Rhs::Value(Value::Int(-3)),
                    ..
                } => {}
                other => panic!("unexpected {other:?}"),
            }
        }
        parse("SELECT t.a FROM t WHERE t.a = 2.5").unwrap();
        parse("SELECT t.a FROM t WHERE t.a = -0.001").unwrap();
    }

    #[test]
    fn parses_escaped_string() {
        let s = parse("SELECT t.a FROM t WHERE t.b = 'o''clock'").unwrap();
        if let Statement::Select(q) = s {
            match q.predicate.unwrap() {
                Predicate::Cmp {
                    rhs: Rhs::Value(Value::Text(t)),
                    ..
                } => assert_eq!(t, "o'clock"),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn precedence_and_binds_tighter() {
        let s = parse_select("SELECT t.a FROM t WHERE t.a = 1 OR t.b = 2 AND t.c = 3").unwrap();
        match s.predicate.unwrap() {
            Predicate::Or(_, rhs) => assert!(matches!(*rhs, Predicate::And(..))),
            other => panic!("expected OR at top, got {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("SELEC t.a FROM t").is_err());
        assert!(parse("SELECT t.a FROM t WHERE").is_err());
        assert!(parse("SELECT t.a FROM t trailing").is_err());
        assert!(parse("SELECT t.a FROM t WHERE t.a < 'x").is_err());
        assert!(parse("SELECT t.a FROM t WHERE t.a ! 1").is_err());
    }

    #[test]
    fn multibyte_chars_do_not_hang_the_lexer() {
        // '«' (U+00AB): lead byte 0xC2 casts to an alphabetic Latin-1 char.
        assert!(parse("«").is_err());
        assert!(parse("SELECT «.a FROM t").is_err());
        // Genuinely alphabetic multi-byte identifiers lex fine.
        assert!(parse("SELECT tété.a FROM tété").is_ok());
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        let deep = format!(
            "SELECT t.a FROM t WHERE {}t.a < 1{}",
            "(".repeat(5_000),
            ")".repeat(5_000)
        );
        let err = parse(&deep).unwrap_err();
        assert!(err.message.contains("too deep"), "{err}");
        // Moderate nesting still parses.
        let ok = format!(
            "SELECT t.a FROM t WHERE {}t.a < 1{}",
            "(".repeat(30),
            ")".repeat(30)
        );
        parse(&ok).unwrap();
    }

    /// Arbitrary UTF-8 must produce `Err`, never a panic (the ident loop
    /// used to double-peek with an `unwrap` between the two reads).
    #[test]
    fn lexer_survives_arbitrary_utf8() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xF00D);
        // Mix of ASCII syntax chars, multi-byte letters, symbols,
        // combining marks, and astral-plane chars.
        let alphabet: Vec<char> =
            "SELCTfromwher'\"();,.*<>=_-#0123456789 \t\n\\éß漢語λ𝔘𝕏\u{0301}\u{200D}«»€\u{7f}"
                .chars()
                .collect();
        for _ in 0..3000 {
            let len = rng.random_range(0..40);
            let s: String = (0..len)
                .map(|_| {
                    if rng.random_range(0..8) == 0 {
                        // Fully random scalar value.
                        char::from_u32(rng.random_range(0..=0x10FFFF)).unwrap_or('\u{FFFD}')
                    } else {
                        alphabet[rng.random_range(0..alphabet.len())]
                    }
                })
                .collect();
            // Ok or Err are both fine; panicking is the bug.
            let _ = parse(&s);
        }
    }

    /// `''` escaping must survive a full render -> parse round trip.
    #[test]
    fn quote_escaping_round_trips() {
        for text in ["o'clock", "''", "'", "a''b'", "", "emb'ed\\ded%_"] {
            let stmt = Statement::Select(SelectQuery {
                select: vec![SelectItem::Column(ColRef::new("t", "a"))],
                from: FromClause::single("t"),
                predicate: Some(Predicate::Cmp {
                    col: ColRef::new("t", "a"),
                    op: CmpOp::Eq,
                    rhs: Rhs::Value(Value::Text(text.into())),
                }),
                group_by: vec![],
                having: None,
                order_by: vec![],
            });
            let sql = render(&stmt);
            let back = parse(&sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
            assert_eq!(back, stmt, "{sql}");
        }
    }

    #[test]
    fn trailing_semicolon_is_ok() {
        parse("SELECT t.a FROM t;").unwrap();
    }

    #[test]
    fn select_star() {
        let q = parse_select("SELECT * FROM t").unwrap();
        assert!(q.select.is_empty());
    }
}
