//! Property tests for the SQL engine: parser robustness, LIKE-matcher
//! laws, estimator bounds and renderer/parser agreement on generated ASTs.

use proptest::prelude::*;
use sqlgen_engine::exec::like_match;
use sqlgen_engine::{
    parse, render, CmpOp, ColRef, Predicate, Rhs, SelectItem, SelectQuery, Statement,
};
use sqlgen_storage::Value;

proptest! {
    /// The parser never panics, whatever bytes it is fed.
    #[test]
    fn parser_never_panics(input in "\\PC{0,120}") {
        let _ = parse(&input);
    }

    /// The parser never panics on inputs that *look* like SQL.
    #[test]
    fn parser_never_panics_on_sqlish(
        kw in prop::sample::select(vec!["SELECT", "FROM", "WHERE", "AND", "OR", "GROUP", "BY", "ORDER", "LIKE", "IN", "(", ")", "'", ",", ".", "<", ">=", "1", "2.5", "t", "u.a"]),
        rest in proptest::collection::vec(
            prop::sample::select(vec!["SELECT", "FROM", "WHERE", "AND", "OR", "GROUP", "BY", "ORDER", "LIKE", "IN", "(", ")", "'", ",", ".", "<", ">=", "1", "2.5", "t", "u.a"]),
            0..25,
        ),
    ) {
        let mut s = kw.to_string();
        for r in rest {
            s.push(' ');
            s.push_str(r);
        }
        let _ = parse(&s);
    }

    /// A `%sub%` pattern matches exactly the strings containing `sub`.
    #[test]
    fn like_contains_law(hay in "[a-z]{0,12}", needle in "[a-z]{1,4}") {
        let pattern = format!("%{needle}%");
        prop_assert_eq!(like_match(&pattern, &hay), hay.contains(&needle));
    }

    /// A pattern with no wildcards matches only the identical string.
    #[test]
    fn like_exact_law(a in "[a-z]{0,8}", b in "[a-z]{0,8}") {
        prop_assert_eq!(like_match(&a, &b), a == b);
    }

    /// `%` alone matches everything; `_` repeated n times matches exactly
    /// length-n strings.
    #[test]
    fn like_wildcard_laws(s in "[a-z]{0,10}", n in 0usize..10) {
        prop_assert!(like_match("%", &s));
        let underscores = "_".repeat(n);
        prop_assert_eq!(like_match(&underscores, &s), s.chars().count() == n);
    }

    /// Prefix/suffix patterns behave like starts_with / ends_with.
    #[test]
    fn like_prefix_suffix_laws(hay in "[a-z]{0,12}", affix in "[a-z]{1,4}") {
        prop_assert_eq!(like_match(&format!("{affix}%"), &hay), hay.starts_with(&affix));
        prop_assert_eq!(like_match(&format!("%{affix}"), &hay), hay.ends_with(&affix));
    }

    /// Rendering a simple generated SELECT and parsing it back is the
    /// identity (AST-level round trip on arbitrary names and literals).
    #[test]
    fn render_parse_roundtrip_on_generated_ast(
        table in "[a-z][a-z0-9_]{0,8}",
        col_a in "[a-z][a-z0-9_]{0,8}",
        col_b in "[a-z][a-z0-9_]{0,8}",
        v in -1000i64..1000,
        text in "[a-zA-Z0-9 ']{0,10}",
        op_idx in 0usize..6,
        use_text in any::<bool>(),
        desc in any::<bool>(),
    ) {
        let op = CmpOp::ALL[op_idx];
        let rhs = if use_text {
            Rhs::Value(Value::Text(text))
        } else {
            Rhs::Value(Value::Int(v))
        };
        let q = SelectQuery {
            from: sqlgen_engine::FromClause::single(table.clone()),
            select: vec![SelectItem::Column(ColRef::new(table.clone(), col_a.clone()))],
            predicate: Some(Predicate::Cmp {
                col: ColRef::new(table.clone(), col_b),
                op,
                rhs,
            }),
            group_by: vec![],
            having: None,
            order_by: vec![sqlgen_engine::OrderBy {
                col: ColRef::new(table, col_a),
                desc,
            }],
        };
        let stmt = Statement::Select(q);
        let sql = render(&stmt);
        let back = parse(&sql).map_err(|e| TestCaseError::fail(format!("{e}: {sql}")))?;
        prop_assert_eq!(back, stmt, "{}", sql);
    }
}
