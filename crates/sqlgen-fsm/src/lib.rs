//! Finite-state machine guaranteeing SQL validity (paper §5).
//!
//! * [`vocab`] — the token vocabulary: the RL action space built from the
//!   database schema plus sampled cell values,
//! * [`config`] — which statement types / structural limits to generate,
//! * [`state`] — the dynamic FSM ([`GenState`]): allowed-token masks and
//!   incremental AST construction,
//! * [`rollout`] — uniform-random FSM walks (the SQLsmith-equivalent
//!   baseline engine and the validity property-test driver).
//!
//! The invariant the rest of the system builds on: **any token sequence the
//! FSM permits terminates in a statement that passes independent semantic
//! validation and executes without error.** `rollout`'s tests enforce this
//! over hundreds of random walks per benchmark schema.

pub mod config;
pub mod rollout;
pub mod state;
pub mod vocab;

pub use config::FsmConfig;
pub use rollout::random_statement;
pub use state::{FsmError, GenState};
pub use vocab::{Token, VocabColumn, VocabEdge, Vocabulary};

#[cfg(test)]
mod tests {
    use super::*;
    use sqlgen_engine::{render, StatementKind};
    use sqlgen_storage::gen::tpch_database;
    use sqlgen_storage::sample::SampleConfig;

    fn setup() -> (sqlgen_storage::Database, Vocabulary) {
        let db = tpch_database(0.1, 1);
        let vocab = Vocabulary::build(
            &db,
            &SampleConfig {
                k: 10,
                ..Default::default()
            },
        );
        (db, vocab)
    }

    /// Drives the FSM through an explicit token script.
    fn drive<'v>(vocab: &'v Vocabulary, cfg: FsmConfig, script: &[Token]) -> GenState<'v> {
        let mut s = GenState::new(vocab, cfg);
        for t in script {
            let id = vocab.id(t);
            s.apply(id).unwrap_or_else(|e| {
                panic!(
                    "{e} (script token {t:?}, allowed: {:?})",
                    s.allowed()
                        .iter()
                        .map(|&a| vocab.describe(a))
                        .collect::<Vec<_>>()
                )
            });
        }
        s
    }

    fn tid(vocab: &Vocabulary, name: &str) -> u32 {
        vocab.tables.iter().position(|t| t == name).unwrap() as u32
    }

    fn cid(vocab: &Vocabulary, table: &str, col: &str) -> u32 {
        let t = tid(vocab, table);
        vocab
            .columns
            .iter()
            .position(|c| c.table == t && c.name == col)
            .unwrap() as u32
    }

    #[test]
    fn simple_select_script() {
        let (_, vocab) = setup();
        let region = tid(&vocab, "region");
        let rname = cid(&vocab, "region", "r_name");
        let s = drive(
            &vocab,
            FsmConfig::default(),
            &[
                Token::From,
                Token::Table(region),
                Token::Select,
                Token::Column(rname),
                Token::Eof,
            ],
        );
        assert!(s.is_complete());
        assert_eq!(
            render(s.statement().unwrap()),
            "SELECT region.r_name FROM region"
        );
    }

    #[test]
    fn where_predicate_script() {
        let (_, vocab) = setup();
        let orders = tid(&vocab, "orders");
        let price = cid(&vocab, "orders", "o_totalprice");
        let val = vocab.value_tokens_of(price)[0];
        let mut s = drive(
            &vocab,
            FsmConfig::default(),
            &[
                Token::From,
                Token::Table(orders),
                Token::Select,
                Token::Column(price),
                Token::Where,
                Token::Column(price),
                Token::Op(sqlgen_engine::CmpOp::Lt),
            ],
        );
        s.apply(val as usize).unwrap();
        // Executable at the predicate boundary.
        let partial = s.partial_statement().expect("executable partial");
        assert!(render(&partial).contains("WHERE orders.o_totalprice <"));
        s.apply(vocab.id(&Token::Eof)).unwrap();
        assert!(s.is_complete());
    }

    #[test]
    fn join_only_along_fk_edges() {
        let (_, vocab) = setup();
        let part = tid(&vocab, "part");
        let customer = tid(&vocab, "customer");
        let lineitem = tid(&vocab, "lineitem");
        let s = drive(
            &vocab,
            FsmConfig::default(),
            &[Token::From, Token::Table(part), Token::Join],
        );
        let allowed = s.allowed();
        // part joins partsupp and lineitem, never customer.
        assert!(allowed.contains(&vocab.id(&Token::Table(lineitem))));
        assert!(!allowed.contains(&vocab.id(&Token::Table(customer))));
        assert!(
            !allowed.contains(&vocab.id(&Token::Table(part))),
            "no self-join"
        );
    }

    #[test]
    fn text_columns_get_restricted_operators() {
        let (_, vocab) = setup();
        let orders = tid(&vocab, "orders");
        let status = cid(&vocab, "orders", "o_orderstatus");
        let s = drive(
            &vocab,
            FsmConfig::default(),
            &[
                Token::From,
                Token::Table(orders),
                Token::Select,
                Token::Column(status),
                Token::Where,
                Token::Column(status),
            ],
        );
        let allowed = s.allowed();
        assert!(allowed.contains(&vocab.id(&Token::Op(sqlgen_engine::CmpOp::Eq))));
        assert!(!allowed.contains(&vocab.id(&Token::Op(sqlgen_engine::CmpOp::Le))));
        assert!(!allowed.contains(&vocab.id(&Token::Op(sqlgen_engine::CmpOp::Ne))));
    }

    #[test]
    fn value_tokens_restricted_to_predicate_column() {
        let (_, vocab) = setup();
        let orders = tid(&vocab, "orders");
        let price = cid(&vocab, "orders", "o_totalprice");
        let date = cid(&vocab, "orders", "o_orderdate");
        let s = drive(
            &vocab,
            FsmConfig::default(),
            &[
                Token::From,
                Token::Table(orders),
                Token::Select,
                Token::Column(price),
                Token::Where,
                Token::Column(price),
                Token::Op(sqlgen_engine::CmpOp::Gt),
            ],
        );
        let allowed = s.allowed();
        for &v in vocab.value_tokens_of(price) {
            assert!(allowed.contains(&(v as usize)));
        }
        for &v in vocab.value_tokens_of(date) {
            assert!(!allowed.contains(&(v as usize)));
        }
    }

    #[test]
    fn mixed_select_requires_group_by() {
        let (_, vocab) = setup();
        let orders = tid(&vocab, "orders");
        let status = cid(&vocab, "orders", "o_orderstatus");
        let price = cid(&vocab, "orders", "o_totalprice");
        let s = drive(
            &vocab,
            FsmConfig::default(),
            &[
                Token::From,
                Token::Table(orders),
                Token::Select,
                Token::Column(status),
                Token::Agg(sqlgen_engine::AggFunc::Sum),
                Token::Column(price),
            ],
        );
        let allowed = s.allowed();
        assert!(
            !allowed.contains(&vocab.id(&Token::Eof)),
            "EOF before GROUP BY"
        );
        assert!(allowed.contains(&vocab.id(&Token::GroupBy)));
        // The mixed select is not executable as a partial either.
        assert!(s.partial_statement().is_none());
        // After GROUP BY, the ungrouped plain column is mandatory.
        let mut s = s;
        s.apply(vocab.id(&Token::GroupBy)).unwrap();
        let allowed = s.allowed();
        assert_eq!(allowed, vec![vocab.id(&Token::Column(status))]);
        s.apply(vocab.id(&Token::Column(status))).unwrap();
        assert!(s.allowed().contains(&vocab.id(&Token::Eof)));
    }

    #[test]
    fn aggregates_only_over_numeric_columns() {
        let (_, vocab) = setup();
        let orders = tid(&vocab, "orders");
        let status = cid(&vocab, "orders", "o_orderstatus");
        let price = cid(&vocab, "orders", "o_totalprice");
        let s = drive(
            &vocab,
            FsmConfig::default(),
            &[
                Token::From,
                Token::Table(orders),
                Token::Select,
                Token::Agg(sqlgen_engine::AggFunc::Avg),
            ],
        );
        let allowed = s.allowed();
        assert!(allowed.contains(&vocab.id(&Token::Column(price))));
        assert!(!allowed.contains(&vocab.id(&Token::Column(status))));
        // COUNT accepts any column.
        let s2 = drive(
            &vocab,
            FsmConfig::default(),
            &[
                Token::From,
                Token::Table(orders),
                Token::Select,
                Token::Agg(sqlgen_engine::AggFunc::Count),
            ],
        );
        assert!(s2.allowed().contains(&vocab.id(&Token::Column(status))));
    }

    #[test]
    fn nested_in_subquery_script() {
        let (db, vocab) = setup();
        let orders = tid(&vocab, "orders");
        let customer = tid(&vocab, "customer");
        let custkey = cid(&vocab, "orders", "o_custkey");
        let ckey = cid(&vocab, "customer", "c_custkey");
        let s = drive(
            &vocab,
            FsmConfig::default(),
            &[
                Token::From,
                Token::Table(orders),
                Token::Select,
                Token::Column(custkey),
                Token::Where,
                Token::Column(custkey),
                Token::In,
                Token::OpenSub,
                Token::From,
                Token::Table(customer),
                Token::Select,
                Token::Column(ckey),
                Token::CloseSub,
                Token::Eof,
            ],
        );
        let stmt = s.statement().unwrap();
        let sql = render(stmt);
        assert!(
            sql.contains("IN (SELECT customer.c_custkey FROM customer)"),
            "{sql}"
        );
        sqlgen_engine::validate(&db, stmt).unwrap();
    }

    #[test]
    fn no_double_nesting_at_depth_one() {
        let (_, vocab) = setup();
        let orders = tid(&vocab, "orders");
        let customer = tid(&vocab, "customer");
        let custkey = cid(&vocab, "orders", "o_custkey");
        let ckey = cid(&vocab, "customer", "c_custkey");
        let s = drive(
            &vocab,
            FsmConfig::default(), // depth 1
            &[
                Token::From,
                Token::Table(orders),
                Token::Select,
                Token::Column(custkey),
                Token::Where,
                Token::Column(custkey),
                Token::In,
                Token::OpenSub,
                Token::From,
                Token::Table(customer),
                Token::Select,
                Token::Column(ckey),
                Token::Where,
                Token::Column(ckey),
            ],
        );
        // Inside the subquery, In/OpenSub must be masked (depth exhausted).
        let allowed = s.allowed();
        assert!(!allowed.contains(&vocab.id(&Token::In)));
    }

    #[test]
    fn insert_walks_all_columns_in_order() {
        let (db, vocab) = setup();
        let region = tid(&vocab, "region");
        let mut s = drive(
            &vocab,
            FsmConfig::full(),
            &[Token::InsertInto, Token::Table(region), Token::Values],
        );
        // Two columns: r_regionkey then r_name.
        for _ in 0..2 {
            let allowed = s.allowed();
            assert!(!allowed.is_empty());
            s.apply(allowed[0]).unwrap();
        }
        assert_eq!(s.allowed(), vec![vocab.id(&Token::Eof)]);
        s.apply(vocab.id(&Token::Eof)).unwrap();
        let stmt = s.statement().unwrap();
        assert_eq!(stmt.kind(), StatementKind::Insert);
        sqlgen_engine::validate(&db, stmt).unwrap();
    }

    #[test]
    fn update_and_delete_scripts() {
        let (db, vocab) = setup();
        let part = tid(&vocab, "part");
        let size = cid(&vocab, "part", "p_size");
        let val = vocab.value_tokens_of(size)[0] as usize;
        let mut s = drive(
            &vocab,
            FsmConfig::full(),
            &[
                Token::Update,
                Token::Table(part),
                Token::Set,
                Token::Column(size),
            ],
        );
        s.apply(val).unwrap();
        // Executable at the SET boundary (updates every row).
        assert!(s.partial_statement().is_some());
        s.apply(vocab.id(&Token::Where)).unwrap();
        s.apply(vocab.id(&Token::Column(size))).unwrap();
        s.apply(vocab.id(&Token::Op(sqlgen_engine::CmpOp::Lt)))
            .unwrap();
        s.apply(vocab.value_tokens_of(size)[1] as usize).unwrap();
        s.apply(vocab.id(&Token::Eof)).unwrap();
        sqlgen_engine::validate(&db, s.statement().unwrap()).unwrap();

        let s = drive(
            &vocab,
            FsmConfig::full(),
            &[Token::DeleteFrom, Token::Table(part), Token::Eof],
        );
        assert_eq!(s.statement().unwrap().kind(), StatementKind::Delete);
    }

    #[test]
    fn like_predicate_script() {
        let (db, vocab) = setup();
        let orders = tid(&vocab, "orders");
        let priority = cid(&vocab, "orders", "o_orderpriority");
        let mut s = drive(
            &vocab,
            FsmConfig::default(),
            &[
                Token::From,
                Token::Table(orders),
                Token::Select,
                Token::Column(priority),
                Token::Where,
                Token::Column(priority),
                Token::Like,
            ],
        );
        // Only this column's patterns are offered.
        let allowed = s.allowed();
        assert!(!allowed.is_empty());
        for &a in &allowed {
            match vocab.token(a) {
                Token::Pattern(p) => {
                    assert_eq!(vocab.like_patterns[*p as usize].0, priority);
                }
                other => panic!("expected Pattern, got {other:?}"),
            }
        }
        s.apply(allowed[0]).unwrap();
        s.apply(vocab.id(&Token::Eof)).unwrap();
        let stmt = s.statement().unwrap();
        let sql = render(stmt);
        assert!(sql.contains("LIKE '%"), "{sql}");
        sqlgen_engine::validate(&db, stmt).unwrap();
    }

    #[test]
    fn like_disabled_by_config() {
        let (_, vocab) = setup();
        let orders = tid(&vocab, "orders");
        let priority = cid(&vocab, "orders", "o_orderpriority");
        let s = drive(
            &vocab,
            FsmConfig {
                allow_like: false,
                ..FsmConfig::default()
            },
            &[
                Token::From,
                Token::Table(orders),
                Token::Select,
                Token::Column(priority),
                Token::Where,
                Token::Column(priority),
            ],
        );
        assert!(!s.allowed().contains(&vocab.id(&Token::Like)));
    }

    #[test]
    fn numeric_columns_never_offer_like() {
        let (_, vocab) = setup();
        let orders = tid(&vocab, "orders");
        let price = cid(&vocab, "orders", "o_totalprice");
        let s = drive(
            &vocab,
            FsmConfig::default(),
            &[
                Token::From,
                Token::Table(orders),
                Token::Select,
                Token::Column(price),
                Token::Where,
                Token::Column(price),
            ],
        );
        assert!(!s.allowed().contains(&vocab.id(&Token::Like)));
    }

    #[test]
    fn rejects_disallowed_token() {
        let (_, vocab) = setup();
        let mut s = GenState::new(&vocab, FsmConfig::default());
        let err = s.apply(vocab.id(&Token::Select)).unwrap_err();
        assert!(err.message.contains("not allowed"));
        // State unchanged: From still works.
        s.apply(vocab.id(&Token::From)).unwrap();
    }

    #[test]
    fn select_only_config_masks_dml() {
        let (_, vocab) = setup();
        let s = GenState::new(&vocab, FsmConfig::default());
        let allowed = s.allowed();
        assert_eq!(allowed, vec![vocab.id(&Token::From)]);
    }

    #[test]
    fn partial_statements_track_clause_boundaries() {
        let (_, vocab) = setup();
        let orders = tid(&vocab, "orders");
        let price = cid(&vocab, "orders", "o_totalprice");
        let mut s = GenState::new(&vocab, FsmConfig::default());
        assert!(s.partial_statement().is_none());
        s.apply(vocab.id(&Token::From)).unwrap();
        assert!(s.partial_statement().is_none());
        s.apply(vocab.id(&Token::Table(orders))).unwrap();
        assert!(s.partial_statement().is_none(), "no select list yet");
        s.apply(vocab.id(&Token::Select)).unwrap();
        s.apply(vocab.id(&Token::Column(price))).unwrap();
        assert!(s.partial_statement().is_some(), "complete SPJ prefix");
        s.apply(vocab.id(&Token::Where)).unwrap();
        assert!(s.partial_statement().is_none(), "dangling WHERE");
    }
}
