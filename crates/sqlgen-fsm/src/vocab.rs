//! The token vocabulary — the RL action space.
//!
//! Five token classes (paper §4.1): reserved words, schema metadata
//! (tables/columns), sampled cell values, comparison operators, and `EOF`.
//! Token ids are dense `0..size()` and stable for a given database + sample
//! configuration, so they double as indices into the policy network's
//! output layer.

use serde::{Deserialize, Serialize};
use sqlgen_engine::{AggFunc, CmpOp};
use sqlgen_storage::sample::{sample_database, SampleConfig};
use sqlgen_storage::{DataType, DbRead, TableRead, Value};
use std::collections::HashMap;

/// A generation token (= one RL action).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Token {
    // Reserved words / structure.
    From,
    Join,
    Select,
    Where,
    GroupBy,
    Having,
    And,
    Or,
    Not,
    In,
    Exists,
    InsertInto,
    Values,
    Update,
    Set,
    DeleteFrom,
    /// `LIKE` keyword (paper §5 future work, implemented here).
    Like,
    /// `ORDER BY` keyword (listed in the paper's reserved words, §4.1).
    OrderBy,
    /// `DESC` modifier for ORDER BY.
    Desc,
    /// Opens a nested subquery.
    OpenSub,
    /// Closes a nested subquery.
    CloseSub,
    /// Ends the statement.
    Eof,
    Agg(AggFunc),
    Op(CmpOp),
    /// Index into [`Vocabulary::tables`].
    Table(u32),
    /// Index into [`Vocabulary::columns`].
    Column(u32),
    /// Index into [`Vocabulary::values`].
    Value(u32),
    /// Index into [`Vocabulary::like_patterns`].
    Pattern(u32),
}

/// Column metadata carried by the vocabulary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VocabColumn {
    pub table: u32,
    pub name: String,
    pub dtype: DataType,
    pub categorical: bool,
}

/// A PK-FK join edge between vocabulary tables (both directions present).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VocabEdge {
    pub left_table: u32,
    pub left_column: u32,
    pub right_table: u32,
    pub right_column: u32,
}

/// The full action space plus the schema metadata the FSM needs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Vocabulary {
    pub tables: Vec<String>,
    pub columns: Vec<VocabColumn>,
    /// `(column index, value)` pairs; the candidate literals per column.
    pub values: Vec<(u32, Value)>,
    /// `(column index, pattern)` pairs: `%substring%` LIKE patterns sampled
    /// from text-column values (paper §5: "sampling substrings from the
    /// values of a column").
    pub like_patterns: Vec<(u32, String)>,
    /// Join edges, both directions.
    pub edges: Vec<VocabEdge>,
    /// Per table: its column indices.
    pub table_columns: Vec<Vec<u32>>,
    /// Per column: its value-token vocabulary ids.
    pub column_value_tokens: Vec<Vec<u32>>,
    /// Per column: its LIKE-pattern vocabulary ids.
    pub column_pattern_tokens: Vec<Vec<u32>>,
    /// Per table: row count at vocabulary-build time (used to mask INSERT
    /// into tables whose columns have no sampled values).
    pub table_rows: Vec<usize>,
    tokens: Vec<Token>,
}

impl Vocabulary {
    /// Builds the action space from a database — in-memory or any other
    /// [`DbRead`] backend (the paged store samples through its buffer
    /// pool). Deterministic for a given `SampleConfig` (the paper's
    /// `k = 100` default lives there), and bit-identical across backends
    /// holding the same data.
    pub fn build<D: DbRead>(db: &D, cfg: &SampleConfig) -> Self {
        let mut tokens: Vec<Token> = vec![
            Token::From,
            Token::Join,
            Token::Select,
            Token::Where,
            Token::GroupBy,
            Token::Having,
            Token::And,
            Token::Or,
            Token::Not,
            Token::In,
            Token::Exists,
            Token::InsertInto,
            Token::Values,
            Token::Update,
            Token::Set,
            Token::DeleteFrom,
            Token::Like,
            Token::OrderBy,
            Token::Desc,
            Token::OpenSub,
            Token::CloseSub,
            Token::Eof,
        ];
        tokens.extend(AggFunc::ALL.iter().map(|&f| Token::Agg(f)));
        tokens.extend(CmpOp::ALL.iter().map(|&o| Token::Op(o)));

        let mut tables = Vec::new();
        let mut columns = Vec::new();
        let mut table_columns = Vec::new();
        let mut table_rows = Vec::new();
        let mut col_index: HashMap<(String, String), u32> = HashMap::new();
        for tname in db.table_names() {
            let t = db.read_table(tname).expect("listed table exists");
            let tid = tables.len() as u32;
            tables.push(tname.to_string());
            table_rows.push(t.row_count());
            let mut cols = Vec::new();
            for def in &t.schema().columns {
                let cid = columns.len() as u32;
                columns.push(VocabColumn {
                    table: tid,
                    name: def.name.clone(),
                    dtype: def.dtype,
                    categorical: def.categorical,
                });
                col_index.insert((tname.to_string(), def.name.clone()), cid);
                cols.push(cid);
            }
            table_columns.push(cols);
        }

        // FK edges, both directions.
        let mut edges = Vec::new();
        for (i, tname) in tables.iter().enumerate() {
            for e in db.join_edges(tname) {
                let left_column = col_index[&(e.left_table.clone(), e.left_column.clone())];
                let right_table = tables
                    .iter()
                    .position(|t| *t == e.right_table)
                    .expect("edge target exists") as u32;
                let right_column = col_index[&(e.right_table.clone(), e.right_column.clone())];
                edges.push(VocabEdge {
                    left_table: i as u32,
                    left_column,
                    right_table,
                    right_column,
                });
            }
        }

        // Sampled cell values.
        let samples = sample_database(db, cfg);
        let mut values = Vec::new();
        let mut column_value_tokens = vec![Vec::new(); columns.len()];
        let mut like_patterns = Vec::new();
        let mut column_pattern_tokens = vec![Vec::new(); columns.len()];
        for s in samples {
            let cid = col_index[&(s.table.clone(), s.column.clone())];
            // LIKE patterns: distinct substrings of the sampled text values.
            if columns[cid as usize].dtype == sqlgen_storage::DataType::Text {
                for pat in sample_like_patterns(&s.values, LIKE_PATTERNS_PER_COLUMN) {
                    let pid = like_patterns.len() as u32;
                    like_patterns.push((cid, pat));
                    column_pattern_tokens[cid as usize].push(pid);
                }
            }
            for v in s.values {
                let vid = values.len() as u32;
                values.push((cid, v));
                // Token id is assigned below; record the value index now and
                // fix up after the token list is complete.
                column_value_tokens[cid as usize].push(vid);
            }
        }

        for tid in 0..tables.len() {
            tokens.push(Token::Table(tid as u32));
        }
        for cid in 0..columns.len() {
            tokens.push(Token::Column(cid as u32));
        }
        let value_base = tokens.len() as u32;
        for vid in 0..values.len() {
            tokens.push(Token::Value(vid as u32));
        }
        // Convert per-column value indices to token ids.
        for list in &mut column_value_tokens {
            for v in list.iter_mut() {
                *v += value_base;
            }
        }
        let pattern_base = tokens.len() as u32;
        for pid in 0..like_patterns.len() {
            tokens.push(Token::Pattern(pid as u32));
        }
        for list in &mut column_pattern_tokens {
            for v in list.iter_mut() {
                *v += pattern_base;
            }
        }

        Vocabulary {
            tables,
            columns,
            values,
            like_patterns,
            edges,
            table_columns,
            column_value_tokens,
            column_pattern_tokens,
            table_rows,
            tokens,
        }
    }

    /// Total number of tokens (= the policy network's output dimension).
    pub fn size(&self) -> usize {
        self.tokens.len()
    }

    pub fn token(&self, id: usize) -> &Token {
        &self.tokens[id]
    }

    /// Token id for a structural (non-parameterized) token.
    pub fn id(&self, token: &Token) -> usize {
        match token {
            Token::Table(t) => self.table_token_base() + *t as usize,
            Token::Column(c) => self.column_token_base() + *c as usize,
            Token::Value(v) => self.value_token_base() + *v as usize,
            Token::Pattern(p) => self.pattern_token_base() + *p as usize,
            other => self
                .tokens
                .iter()
                .position(|t| t == other)
                .expect("structural token exists"),
        }
    }

    pub fn table_token_base(&self) -> usize {
        // 22 structural + 5 aggs + 6 ops.
        22 + AggFunc::ALL.len() + CmpOp::ALL.len()
    }

    pub fn column_token_base(&self) -> usize {
        self.table_token_base() + self.tables.len()
    }

    pub fn value_token_base(&self) -> usize {
        self.column_token_base() + self.columns.len()
    }

    pub fn pattern_token_base(&self) -> usize {
        self.value_token_base() + self.values.len()
    }

    /// Value tokens available for a column.
    pub fn value_tokens_of(&self, col: u32) -> &[u32] {
        &self.column_value_tokens[col as usize]
    }

    /// LIKE-pattern tokens available for a (text) column.
    pub fn pattern_tokens_of(&self, col: u32) -> &[u32] {
        &self.column_pattern_tokens[col as usize]
    }

    /// Join edges whose left side is `table`.
    pub fn edges_from(&self, table: u32) -> impl Iterator<Item = &VocabEdge> {
        self.edges.iter().filter(move |e| e.left_table == table)
    }

    pub fn column_name(&self, col: u32) -> &str {
        &self.columns[col as usize].name
    }

    pub fn table_name(&self, table: u32) -> &str {
        &self.tables[table as usize]
    }

    /// Fully qualified `table.column` for a vocabulary column.
    pub fn col_ref(&self, col: u32) -> sqlgen_engine::ColRef {
        let c = &self.columns[col as usize];
        sqlgen_engine::ColRef::new(self.tables[c.table as usize].clone(), c.name.clone())
    }

    /// A short human-readable rendering of a token (for traces).
    pub fn describe(&self, id: usize) -> String {
        match self.token(id) {
            Token::Table(t) => format!("table:{}", self.table_name(*t)),
            Token::Column(c) => {
                let col = &self.columns[*c as usize];
                format!("col:{}.{}", self.table_name(col.table), col.name)
            }
            Token::Value(v) => format!("val:{}", self.values[*v as usize].1.to_sql()),
            Token::Pattern(p) => format!("like:'{}'", self.like_patterns[*p as usize].1),
            other => format!("{other:?}"),
        }
    }
}

/// How many LIKE patterns are sampled per text column.
pub const LIKE_PATTERNS_PER_COLUMN: usize = 6;

/// Derives `%substring%` patterns from sampled text values: distinct
/// mid-length substrings, deterministic (no RNG — the samples are already
/// a random draw).
fn sample_like_patterns(values: &[Value], k: usize) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for v in values {
        let Some(text) = v.as_text() else { continue };
        if text.is_empty() {
            continue;
        }
        // Take a middle-ish chunk of up to 4 chars: selective but not
        // equality-equivalent.
        let chars: Vec<char> = text.chars().collect();
        let len = chars.len().clamp(1, 4);
        let start = (chars.len() - len) / 2;
        // Escape `%` and `\` so a chunk cut from hostile data matches the
        // source row literally instead of acting as nested wildcards. `_`
        // is deliberately left live: it still matches the source row, and
        // escaping it would perturb the action space (and the pinned
        // golden rollouts) for data that merely contains underscores.
        let sub: String = chars[start..start + len]
            .iter()
            .flat_map(|&c| match c {
                '%' | '\\' => vec!['\\', c],
                c => vec![c],
            })
            .collect();
        let pattern = format!("%{sub}%");
        if !out.contains(&pattern) {
            out.push(pattern);
        }
        if out.len() >= k {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlgen_storage::gen::tpch_database;

    fn vocab() -> Vocabulary {
        let db = tpch_database(0.2, 1);
        Vocabulary::build(
            &db,
            &SampleConfig {
                k: 20,
                ..Default::default()
            },
        )
    }

    #[test]
    fn ids_are_dense_and_roundtrip() {
        let v = vocab();
        for id in 0..v.size() {
            let t = v.token(id).clone();
            assert_eq!(v.id(&t), id, "token {t:?}");
        }
    }

    #[test]
    fn has_all_tables_and_columns() {
        let v = vocab();
        assert_eq!(v.tables.len(), 8);
        assert!(v.columns.len() > 30);
        assert_eq!(v.table_columns.len(), 8);
        let lineitem = v.tables.iter().position(|t| t == "lineitem").unwrap();
        assert_eq!(v.table_columns[lineitem].len(), 10);
    }

    #[test]
    fn value_tokens_point_to_their_column() {
        let v = vocab();
        for (cid, list) in v.column_value_tokens.iter().enumerate() {
            for &tok in list {
                match v.token(tok as usize) {
                    Token::Value(vid) => {
                        assert_eq!(v.values[*vid as usize].0 as usize, cid);
                    }
                    other => panic!("expected Value token, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn categorical_columns_enumerate_their_domain() {
        let v = vocab();
        let shipmode = v
            .columns
            .iter()
            .position(|c| c.name == "l_shipmode")
            .unwrap();
        assert_eq!(v.value_tokens_of(shipmode as u32).len(), 7);
    }

    #[test]
    fn edges_are_bidirectional() {
        let v = vocab();
        let lineitem = v.tables.iter().position(|t| t == "lineitem").unwrap() as u32;
        let orders = v.tables.iter().position(|t| t == "orders").unwrap() as u32;
        assert!(v.edges_from(lineitem).any(|e| e.right_table == orders));
        assert!(v.edges_from(orders).any(|e| e.right_table == lineitem));
    }

    #[test]
    fn action_space_size_in_paper_ballpark() {
        // The paper reports action spaces of ~2000-4300 tokens with k=100.
        let db = tpch_database(1.0, 1);
        let v = Vocabulary::build(&db, &SampleConfig::default());
        assert!(
            v.size() > 800 && v.size() < 6000,
            "action space {} out of expected range",
            v.size()
        );
    }

    #[test]
    fn like_patterns_exist_for_text_columns_only() {
        let v = vocab();
        for (cid, col) in v.columns.iter().enumerate() {
            let pats = v.pattern_tokens_of(cid as u32);
            if col.dtype != sqlgen_storage::DataType::Text {
                assert!(pats.is_empty(), "{} has patterns", col.name);
            }
            for &t in pats {
                match v.token(t as usize) {
                    Token::Pattern(p) => {
                        let (pc, pat) = &v.like_patterns[*p as usize];
                        assert_eq!(*pc as usize, cid);
                        assert!(pat.starts_with('%') && pat.ends_with('%'));
                    }
                    other => panic!("expected Pattern, got {other:?}"),
                }
            }
        }
        // At least one text column produced patterns.
        assert!(!v.like_patterns.is_empty());
    }

    #[test]
    fn describe_is_readable() {
        let v = vocab();
        assert_eq!(v.describe(v.id(&Token::From)), "From");
        let t0 = v.table_token_base();
        assert!(v.describe(t0).starts_with("table:"));
    }

    /// Chunks cut from hostile text must have `%` and `\\` escaped so the
    /// pattern still matches its source row literally.
    #[test]
    fn like_patterns_escape_wildcards_in_data() {
        let vals = vec![
            Value::Text("ab%cd".into()),
            Value::Text(r"x\y_z".into()),
            Value::Text("plain".into()),
        ];
        let pats = sample_like_patterns(&vals, 8);
        assert!(pats.contains(&r"%ab\%c%".to_string()), "{pats:?}");
        assert!(pats.contains(&r"%x\\y_%".to_string()), "{pats:?}");
        // Every pattern must match the value it was derived from.
        for (v, pat) in vals.iter().zip(&pats) {
            assert!(
                sqlgen_engine::exec::like_match(pat, v.as_text().unwrap()),
                "{pat} should match {v:?}"
            );
        }
    }
}
