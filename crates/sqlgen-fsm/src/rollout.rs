//! Uniform-random rollouts of the FSM.
//!
//! Picking uniformly among the allowed tokens at every step yields a valid
//! random statement — this is the engine behind the SQLsmith-style baseline
//! and the property-testing harness ("every FSM path yields a valid,
//! executable statement").

use crate::config::FsmConfig;
use crate::state::GenState;
use crate::vocab::Vocabulary;
use rand::Rng;
use sqlgen_engine::Statement;

/// Walks the FSM with uniform-random choices until `Eof`.
///
/// Returns the statement and the token trace. Panics only if the FSM ever
/// offers an empty action set before completion, which would be an FSM bug
/// (the tests rely on this invariant).
pub fn random_statement<R: Rng + ?Sized>(
    vocab: &Vocabulary,
    config: &FsmConfig,
    rng: &mut R,
) -> (Statement, Vec<usize>) {
    let mut state = GenState::new(vocab, config.clone());
    while !state.is_complete() {
        let allowed = state.allowed();
        assert!(
            !allowed.is_empty(),
            "FSM dead-end after tokens {:?}",
            state
                .tokens()
                .iter()
                .map(|&t| vocab.describe(t))
                .collect::<Vec<_>>()
        );
        let pick = allowed[rng.random_range(0..allowed.len())];
        state.apply(pick).expect("allowed token must apply");
    }
    let tokens = state.tokens().to_vec();
    let stmt = state
        .statement()
        .expect("complete state has statement")
        .clone();
    (stmt, tokens)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sqlgen_engine::{render, validate, ExecOptions, Executor};
    use sqlgen_storage::gen::{tpch_database, xuetang_database};
    use sqlgen_storage::sample::SampleConfig;

    fn vocab_of(db: &sqlgen_storage::Database) -> Vocabulary {
        Vocabulary::build(
            db,
            &SampleConfig {
                k: 15,
                ..Default::default()
            },
        )
    }

    /// The headline FSM guarantee: every random path produces a statement
    /// that (a) passes independent semantic validation, (b) renders and
    /// re-parses identically, and (c) executes without error.
    #[test]
    fn every_rollout_is_valid_renderable_and_executable() {
        let db = tpch_database(0.1, 42);
        let vocab = vocab_of(&db);
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = FsmConfig::full();
        let ex = Executor::with_options(
            &db,
            ExecOptions {
                max_rows: 2_000_000,
                deadline: None,
            },
        );
        for i in 0..300 {
            let (stmt, _) = random_statement(&vocab, &cfg, &mut rng);
            let sql = render(&stmt);
            validate(&db, &stmt).unwrap_or_else(|e| panic!("rollout {i}: {e}\n{sql}"));
            let reparsed =
                sqlgen_engine::parse(&sql).unwrap_or_else(|e| panic!("rollout {i}: {e}\n{sql}"));
            assert_eq!(render(&reparsed), sql, "round-trip failed for {sql}");
            ex.cardinality(&stmt)
                .unwrap_or_else(|e| panic!("rollout {i}: exec {e}\n{sql}"));
        }
    }

    #[test]
    fn rollouts_on_xuetang_are_valid() {
        let db = xuetang_database(0.1, 5);
        let vocab = vocab_of(&db);
        let mut rng = StdRng::seed_from_u64(9);
        let cfg = FsmConfig::default();
        for _ in 0..150 {
            let (stmt, _) = random_statement(&vocab, &cfg, &mut rng);
            validate(&db, &stmt).unwrap();
        }
    }

    #[test]
    fn rollouts_cover_diverse_structures() {
        let db = tpch_database(0.1, 42);
        let vocab = vocab_of(&db);
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = FsmConfig::full();
        let mut joins = 0;
        let mut nested = 0;
        let mut aggregated = 0;
        let mut dml = 0;
        let mut likes = 0;
        for _ in 0..400 {
            let (stmt, tokens) = random_statement(&vocab, &cfg, &mut rng);
            likes += usize::from(
                tokens
                    .iter()
                    .any(|&t| matches!(vocab.token(t), crate::vocab::Token::Like)),
            );
            match &stmt {
                Statement::Select(q) => {
                    joins += usize::from(q.join_count() > 0);
                    nested += usize::from(q.has_subquery());
                    aggregated += usize::from(q.has_aggregate());
                }
                _ => dml += 1,
            }
        }
        assert!(joins > 20, "too few joins: {joins}");
        assert!(nested > 5, "too few nested queries: {nested}");
        assert!(aggregated > 20, "too few aggregates: {aggregated}");
        assert!(dml > 50, "too little DML: {dml}");
        assert!(likes > 3, "too few LIKE predicates: {likes}");
    }

    #[test]
    fn spj_config_generates_only_flat_selects() {
        let db = tpch_database(0.1, 42);
        let vocab = vocab_of(&db);
        let mut rng = StdRng::seed_from_u64(13);
        let cfg = FsmConfig::spj();
        for _ in 0..100 {
            let (stmt, _) = random_statement(&vocab, &cfg, &mut rng);
            let q = stmt.as_select().expect("SPJ config only emits SELECT");
            assert!(!q.has_subquery());
            assert!(!q.has_aggregate());
            assert!(q.group_by.is_empty());
        }
    }

    #[test]
    fn order_by_rollouts_are_valid_and_sorted_queries_execute() {
        let db = tpch_database(0.1, 42);
        let vocab = vocab_of(&db);
        let mut rng = StdRng::seed_from_u64(21);
        let cfg = FsmConfig {
            allow_order_by: true,
            ..FsmConfig::default()
        };
        let ex = Executor::with_options(
            &db,
            ExecOptions {
                max_rows: 2_000_000,
                deadline: None,
            },
        );
        let mut ordered = 0;
        for _ in 0..150 {
            let (stmt, _) = random_statement(&vocab, &cfg, &mut rng);
            validate(&db, &stmt).unwrap_or_else(|e| panic!("{e}: {}", render(&stmt)));
            ex.cardinality(&stmt).unwrap();
            if let Statement::Select(q) = &stmt {
                ordered += usize::from(!q.order_by.is_empty());
            }
        }
        assert!(ordered > 10, "too few ORDER BY rollouts: {ordered}");
    }

    #[test]
    fn rollout_is_deterministic_given_seed() {
        let db = tpch_database(0.1, 42);
        let vocab = vocab_of(&db);
        let cfg = FsmConfig::full();
        let a = random_statement(&vocab, &cfg, &mut StdRng::seed_from_u64(3)).1;
        let b = random_statement(&vocab, &cfg, &mut StdRng::seed_from_u64(3)).1;
        assert_eq!(a, b);
    }
}
