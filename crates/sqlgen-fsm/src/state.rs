//! The dynamic finite-state machine (paper §5).
//!
//! `GenState` tracks a partially generated statement and, at every step,
//! computes the set of tokens that keep the statement syntactically and
//! semantically valid ("the FSM masks the actions", §3.2). The FSM is built
//! on the fly ("Dynamic FSM construction"): allowed edges are derived from
//! the current clause-state stack, never materialized as a graph.
//!
//! Generation order follows the paper's Example 2: `From → tables → Select →
//! items → Where → predicates → GroupBy/Having → EOF`; the renderer reorders
//! clauses into textual SQL.
//!
//! Nested subqueries push a new [`Frame`] on a stack (`OpenSub`/`CloseSub`
//! tokens), so the machine is technically a pushdown automaton — exactly
//! what "ideally, subqueries can be generated recursively" (§5 case 2)
//! requires.

use crate::config::FsmConfig;
use crate::vocab::{Token, VocabEdge, Vocabulary};
use sqlgen_engine::{
    AggFunc, CmpOp, DeleteStmt, FromClause, HavingClause, InsertSource, InsertStmt, Join,
    Predicate, Rhs, SelectItem, SelectQuery, Statement, StatementKind, UpdateStmt,
};
use sqlgen_storage::{DataType, Value};
use std::cell::RefCell;
use std::fmt;

thread_local! {
    /// Reused id buffer for [`GenState::mask_into`]: the batched rollout
    /// engines call it once per lane per step, so the `allowed` set must
    /// not allocate on the hot path.
    static ALLOWED_SCRATCH: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
}

/// Errors from applying a token the FSM did not offer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsmError {
    pub message: String,
}

impl fmt::Display for FsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FSM error: {}", self.message)
    }
}

impl std::error::Error for FsmError {}

/// Pending boolean connective while building a predicate chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Conj {
    And,
    Or,
}

/// What kind of subquery the frame below is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SubKind {
    /// `col IN (SELECT ...)` — inner select must be one compatible column.
    In { outer_col: u32 },
    /// `col op (SELECT agg(...))` — inner select must be a scalar aggregate.
    Scalar,
    /// `EXISTS (SELECT ...)`.
    Exists,
}

/// Generation phase within the current frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Start,
    FromTable,
    AfterTable,
    JoinTable,
    SelectItem,
    AggCol(AggFunc),
    AfterItem,
    PredCol,
    PredOp,
    PredRhs,
    PredLikeRhs,
    SubOpen,
    AfterPred,
    GroupByCol,
    AfterGroupBy,
    HavingAgg,
    HavingCol(AggFunc),
    HavingOp,
    HavingRhs,
    AfterHaving,
    OrderCol,
    AfterOrder,
    // DML phases (root frame only).
    InsertTable,
    InsertValuesKw,
    InsertValues,
    AfterInsert,
    UpdateTable,
    SetKw,
    SetCol,
    SetVal(u32),
    AfterSet,
    DeleteTable,
    AfterDelete,
    Done,
}

/// In-progress predicate chain.
#[derive(Debug, Clone, Default)]
struct PredBuilder {
    done: Option<Predicate>,
    conj: Option<Conj>,
    negate: bool,
    col: Option<u32>,
    op: Option<CmpOp>,
    atoms: usize,
}

impl PredBuilder {
    fn push_atom(&mut self, atom: Predicate) {
        let atom = if self.negate {
            Predicate::Not(Box::new(atom))
        } else {
            atom
        };
        self.done = Some(match (self.done.take(), self.conj) {
            (None, _) => atom,
            (Some(prev), Some(Conj::And)) => prev.and(atom),
            (Some(prev), Some(Conj::Or)) => prev.or(atom),
            (Some(_), None) => unreachable!("second atom without connective"),
        });
        self.negate = false;
        self.conj = None;
        self.col = None;
        self.op = None;
        self.atoms += 1;
    }
}

/// One SELECT under construction (the root, or a nested subquery).
#[derive(Debug, Clone)]
struct Frame {
    phase: Phase,
    /// What the *parent* frame will do with this frame's query.
    sub: Option<SubKind>,
    base: Option<u32>,
    scope: Vec<u32>,
    joins: Vec<VocabEdge>,
    select: Vec<(Option<AggFunc>, u32)>,
    pred: PredBuilder,
    /// Set while this frame waits for a child subquery to complete.
    pending_sub: Option<SubKind>,
    group_by: Vec<u32>,
    having_agg: Option<AggFunc>,
    having_col: Option<u32>,
    having_op: Option<CmpOp>,
    having: Option<HavingClause>,
    /// `(column, desc)` ORDER BY keys (generated only when
    /// `FsmConfig::allow_order_by` is set).
    order_by: Vec<(u32, bool)>,
}

impl Frame {
    fn new(sub: Option<SubKind>) -> Self {
        Frame {
            phase: Phase::Start,
            sub,
            base: None,
            scope: Vec::new(),
            joins: Vec::new(),
            select: Vec::new(),
            pred: PredBuilder::default(),
            pending_sub: None,
            group_by: Vec::new(),
            having_agg: None,
            having_col: None,
            having_op: None,
            having: None,
            order_by: Vec::new(),
        }
    }

    fn has_agg_item(&self) -> bool {
        self.select.iter().any(|(a, _)| a.is_some())
    }

    fn has_plain_item(&self) -> bool {
        self.select.iter().any(|(a, _)| a.is_none())
    }

    /// Mixed aggregate/plain SELECT lists require a GROUP BY before the
    /// query may terminate.
    fn needs_group_by(&self) -> bool {
        self.has_agg_item() && self.has_plain_item() && self.group_by.is_empty()
    }

    /// Plain select columns not yet covered by GROUP BY (must be grouped
    /// before Having/EOF once grouping started).
    fn ungrouped_plain_cols(&self) -> Vec<u32> {
        self.select
            .iter()
            .filter(|(a, _)| a.is_none())
            .map(|(_, c)| *c)
            .filter(|c| !self.group_by.contains(c))
            .collect()
    }
}

/// The FSM over a partially generated statement.
#[derive(Debug, Clone)]
pub struct GenState<'v> {
    vocab: &'v Vocabulary,
    config: FsmConfig,
    kind: Option<StatementKind>,
    frames: Vec<Frame>,
    // DML state (root level).
    dml_table: Option<u32>,
    insert_values: Vec<Value>,
    insert_next_col: usize,
    update_sets: Vec<(u32, Value)>,
    tokens: Vec<usize>,
    finished: Option<Statement>,
}

impl<'v> GenState<'v> {
    pub fn new(vocab: &'v Vocabulary, config: FsmConfig) -> Self {
        GenState {
            vocab,
            config,
            kind: None,
            frames: vec![Frame::new(None)],
            dml_table: None,
            insert_values: Vec::new(),
            insert_next_col: 0,
            update_sets: Vec::new(),
            tokens: Vec::new(),
            finished: None,
        }
    }

    pub fn vocab(&self) -> &Vocabulary {
        self.vocab
    }

    pub fn config(&self) -> &FsmConfig {
        &self.config
    }

    /// Tokens emitted so far.
    pub fn tokens(&self) -> &[usize] {
        &self.tokens
    }

    pub fn is_complete(&self) -> bool {
        self.finished.is_some()
    }

    /// The finished statement once `Eof` has been applied.
    pub fn statement(&self) -> Option<&Statement> {
        self.finished.as_ref()
    }

    fn frame(&self) -> &Frame {
        self.frames.last().expect("frame stack never empty")
    }

    fn frame_mut(&mut self) -> &mut Frame {
        self.frames.last_mut().expect("frame stack never empty")
    }

    fn nesting_ok(&self) -> bool {
        self.frames.len() - 1 < self.config.max_subquery_depth
    }

    /// Tables whose every column has at least one sampled value
    /// (INSERT targets).
    fn insertable_tables(&self) -> Vec<u32> {
        (0..self.vocab.tables.len() as u32)
            .filter(|&t| {
                let cols = &self.vocab.table_columns[t as usize];
                !cols.is_empty()
                    && cols
                        .iter()
                        .all(|&c| !self.vocab.value_tokens_of(c).is_empty())
            })
            .collect()
    }

    /// Tables with at least one column that has sampled values
    /// (UPDATE targets / predicate-capable tables).
    fn updatable_tables(&self) -> Vec<u32> {
        (0..self.vocab.tables.len() as u32)
            .filter(|&t| {
                self.vocab.table_columns[t as usize]
                    .iter()
                    .any(|&c| !self.vocab.value_tokens_of(c).is_empty())
            })
            .collect()
    }

    /// Columns in the current frame's scope.
    fn scope_columns(&self) -> Vec<u32> {
        self.frame()
            .scope
            .iter()
            .flat_map(|&t| self.vocab.table_columns[t as usize].iter().copied())
            .collect()
    }

    fn col_type(&self, col: u32) -> DataType {
        self.vocab.columns[col as usize].dtype
    }

    fn types_compatible(a: DataType, b: DataType) -> bool {
        a == b || (a.is_numeric() && b.is_numeric())
    }

    /// Operators valid for a column type. The paper supports `{=, >, <}` for
    /// strings and the full set for numerics.
    fn ops_for(&self, col: u32) -> Vec<CmpOp> {
        if self.col_type(col).is_numeric() {
            CmpOp::ALL.to_vec()
        } else {
            vec![CmpOp::Eq, CmpOp::Gt, CmpOp::Lt]
        }
    }

    /// Whether some table (for an IN subquery's inner select) has a column
    /// type-compatible with `col`.
    fn in_subquery_possible(&self, col: u32) -> bool {
        let t = self.col_type(col);
        self.vocab
            .columns
            .iter()
            .any(|c| Self::types_compatible(c.dtype, t))
    }

    /// The allowed next tokens (the unmasked action set).
    /// Admissible token ids. Allocating wrapper over
    /// [`GenState::allowed_into`].
    pub fn allowed(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.allowed_into(&mut out);
        out
    }

    /// Writes the admissible token ids into `out` (cleared first). The
    /// batched mask path calls this once per lane per step with a reused
    /// buffer, keeping the hot loop allocation-free.
    pub fn allowed_into(&self, out: &mut Vec<usize>) {
        out.clear();
        let v = self.vocab;
        let frame = self.frame();
        fn add(out: &mut Vec<usize>, v: &Vocabulary, t: Token) {
            out.push(v.id(&t));
        }

        match frame.phase {
            Phase::Done => {}
            Phase::Start => {
                if self.frames.len() > 1 {
                    // Subqueries always start with FROM.
                    add(out, v, Token::From);
                } else {
                    if self.config.allows(StatementKind::Select) {
                        add(out, v, Token::From);
                    }
                    if self.config.allows(StatementKind::Insert)
                        && !self.insertable_tables().is_empty()
                    {
                        add(out, v, Token::InsertInto);
                    }
                    if self.config.allows(StatementKind::Update)
                        && !self.updatable_tables().is_empty()
                    {
                        add(out, v, Token::Update);
                    }
                    if self.config.allows(StatementKind::Delete) && !v.tables.is_empty() {
                        add(out, v, Token::DeleteFrom);
                    }
                }
            }
            Phase::FromTable => {
                for t in 0..v.tables.len() as u32 {
                    let ok = match frame.sub {
                        Some(SubKind::In { outer_col }) => {
                            let ot = self.col_type(outer_col);
                            v.table_columns[t as usize]
                                .iter()
                                .any(|&c| Self::types_compatible(self.col_type(c), ot))
                        }
                        Some(SubKind::Scalar) => v.table_columns[t as usize]
                            .iter()
                            .any(|&c| self.col_type(c).is_numeric()),
                        _ => true,
                    };
                    if ok {
                        add(out, v, Token::Table(t));
                    }
                }
            }
            Phase::AfterTable => {
                if frame.joins.len() < self.config.max_joins && !self.joinable_tables().is_empty() {
                    add(out, v, Token::Join);
                }
                add(out, v, Token::Select);
            }
            Phase::JoinTable => {
                for t in self.joinable_tables() {
                    add(out, v, Token::Table(t));
                }
            }
            Phase::SelectItem => self.select_item_tokens(out),
            Phase::AggCol(f) => {
                for c in self.scope_columns() {
                    if !f.requires_numeric() || self.col_type(c).is_numeric() {
                        out.push(v.id(&Token::Column(c)));
                    }
                }
            }
            Phase::AfterItem => {
                match frame.sub {
                    Some(SubKind::In { .. }) | Some(SubKind::Scalar) => {
                        // Exactly one select item in these subqueries.
                        add(out, v, Token::Where);
                        add(out, v, Token::CloseSub);
                    }
                    _ => {
                        if frame.select.len() < self.config.max_select_items {
                            self.select_item_tokens(out);
                        }
                        add(out, v, Token::Where);
                        if self.group_by_available() {
                            add(out, v, Token::GroupBy);
                        }
                        self.push_order_by(out);
                        self.push_terminator(out);
                    }
                }
            }
            Phase::PredCol => {
                if !frame.pred.negate {
                    add(out, v, Token::Not);
                }
                if self.nesting_ok() && frame.sub.is_none() {
                    // EXISTS only at the outermost predicate level to bound
                    // depth bookkeeping (nested EXISTS inside subqueries adds
                    // little coverage).
                    add(out, v, Token::Exists);
                }
                for c in self.scope_columns() {
                    let has_values = !v.value_tokens_of(c).is_empty();
                    let can_nest = self.nesting_ok()
                        && (self.col_type(c).is_numeric() || self.in_subquery_possible(c));
                    if has_values || can_nest {
                        out.push(v.id(&Token::Column(c)));
                    }
                }
            }
            Phase::PredOp => {
                let col = frame.pred.col.expect("PredOp requires column");
                let has_values = !v.value_tokens_of(col).is_empty();
                let scalar_possible = self.nesting_ok() && self.col_type(col).is_numeric();
                if has_values || scalar_possible {
                    for op in self.ops_for(col) {
                        add(out, v, Token::Op(op));
                    }
                }
                if self.nesting_ok() && self.in_subquery_possible(col) {
                    add(out, v, Token::In);
                }
                if self.config.allow_like && !v.pattern_tokens_of(col).is_empty() {
                    add(out, v, Token::Like);
                }
            }
            Phase::PredRhs => {
                let col = frame.pred.col.expect("PredRhs requires column");
                for &t in v.value_tokens_of(col) {
                    out.push(t as usize);
                }
                if self.nesting_ok() && self.col_type(col).is_numeric() {
                    add(out, v, Token::OpenSub);
                }
            }
            Phase::PredLikeRhs => {
                let col = frame.pred.col.expect("PredLikeRhs requires column");
                for &t in v.pattern_tokens_of(col) {
                    out.push(t as usize);
                }
            }
            Phase::SubOpen => add(out, v, Token::OpenSub),
            Phase::AfterPred => {
                if frame.pred.atoms < self.config.max_predicates {
                    add(out, v, Token::And);
                    add(out, v, Token::Or);
                }
                if self.kind == Some(StatementKind::Select) || self.frames.len() > 1 {
                    if self.group_by_available() {
                        add(out, v, Token::GroupBy);
                    }
                    self.push_order_by(out);
                }
                self.push_terminator(out);
            }
            Phase::GroupByCol | Phase::AfterGroupBy => {
                let needed = frame.ungrouped_plain_cols();
                if !needed.is_empty() {
                    for c in needed {
                        out.push(v.id(&Token::Column(c)));
                    }
                } else {
                    if frame.phase == Phase::AfterGroupBy {
                        if frame.group_by.len() < self.config.max_group_by {
                            for c in self.scope_columns() {
                                if !frame.group_by.contains(&c) {
                                    out.push(v.id(&Token::Column(c)));
                                }
                            }
                        }
                        if self.having_available() {
                            add(out, v, Token::Having);
                        }
                        self.push_terminator(out);
                    } else {
                        // GroupByCol with nothing mandatory: any scope column.
                        for c in self.scope_columns() {
                            if !frame.group_by.contains(&c) {
                                out.push(v.id(&Token::Column(c)));
                            }
                        }
                    }
                }
            }
            Phase::HavingAgg => {
                for f in [AggFunc::Max, AggFunc::Min, AggFunc::Sum, AggFunc::Avg] {
                    if self.having_cols().next().is_some() {
                        add(out, v, Token::Agg(f));
                    }
                }
            }
            Phase::HavingCol(_) => {
                for c in self.having_cols() {
                    out.push(v.id(&Token::Column(c)));
                }
            }
            Phase::HavingOp => {
                for op in CmpOp::ALL {
                    add(out, v, Token::Op(op));
                }
            }
            Phase::HavingRhs => {
                let col = frame.having_col.expect("HavingRhs requires column");
                for &t in v.value_tokens_of(col) {
                    out.push(t as usize);
                }
            }
            Phase::AfterHaving => {
                self.push_order_by(out);
                self.push_terminator(out);
            }
            Phase::OrderCol => {
                for c in self.order_by_candidates() {
                    out.push(v.id(&Token::Column(c)));
                }
            }
            Phase::AfterOrder => {
                if let Some((_, desc)) = frame.order_by.last() {
                    if !desc {
                        add(out, v, Token::Desc);
                    }
                }
                self.push_terminator(out);
            }
            Phase::InsertTable => {
                for t in self.insertable_tables() {
                    add(out, v, Token::Table(t));
                }
            }
            Phase::InsertValuesKw => add(out, v, Token::Values),
            Phase::InsertValues => {
                let t = self.dml_table.expect("insert has table");
                let col = self.vocab.table_columns[t as usize][self.insert_next_col];
                for &tok in v.value_tokens_of(col) {
                    out.push(tok as usize);
                }
            }
            Phase::AfterInsert => add(out, v, Token::Eof),
            Phase::UpdateTable => {
                for t in self.updatable_tables() {
                    add(out, v, Token::Table(t));
                }
            }
            Phase::SetKw => add(out, v, Token::Set),
            Phase::SetCol | Phase::AfterSet => {
                let t = self.dml_table.expect("update has table");
                for &c in &self.vocab.table_columns[t as usize] {
                    let already = self.update_sets.iter().any(|(sc, _)| *sc == c);
                    if !already && !v.value_tokens_of(c).is_empty() {
                        out.push(v.id(&Token::Column(c)));
                    }
                }
                if frame.phase == Phase::AfterSet {
                    add(out, v, Token::Where);
                    add(out, v, Token::Eof);
                }
            }
            Phase::SetVal(col) => {
                for &tok in v.value_tokens_of(col) {
                    out.push(tok as usize);
                }
            }
            Phase::DeleteTable => {
                for t in 0..v.tables.len() as u32 {
                    add(out, v, Token::Table(t));
                }
            }
            Phase::AfterDelete => {
                add(out, v, Token::Where);
                add(out, v, Token::Eof);
            }
        }
    }

    /// Writes the action mask for the whole vocabulary.
    pub fn mask_into(&self, mask: &mut [bool]) {
        let _t = sqlgen_obs::obs_time!("fsm.mask.latency_us");
        debug_assert_eq!(mask.len(), self.vocab.size());
        mask.iter_mut().for_each(|m| *m = false);
        ALLOWED_SCRATCH.with(|s| {
            let mut ids = s.borrow_mut();
            self.allowed_into(&mut ids);
            for &id in ids.iter() {
                mask[id] = true;
            }
        });
    }

    /// Writes the action mask into lane `lane` of a row-major
    /// `[batch × vocab]` mask block (the batched-inference layout). The
    /// lane's row is produced exactly as [`GenState::mask_into`] would.
    pub fn mask_into_row(&self, block: &mut [bool], lane: usize) {
        let width = self.vocab.size();
        debug_assert!((lane + 1) * width <= block.len());
        self.mask_into(&mut block[lane * width..(lane + 1) * width]);
    }

    fn select_item_tokens(&self, out: &mut Vec<usize>) {
        let v = self.vocab;
        let frame = self.frame();
        match frame.sub {
            Some(SubKind::In { outer_col }) => {
                let ot = self.col_type(outer_col);
                for c in self.scope_columns() {
                    if Self::types_compatible(self.col_type(c), ot) {
                        out.push(v.id(&Token::Column(c)));
                    }
                }
            }
            Some(SubKind::Scalar) => {
                for f in [AggFunc::Max, AggFunc::Min, AggFunc::Sum, AggFunc::Avg] {
                    if self
                        .scope_columns()
                        .iter()
                        .any(|&c| self.col_type(c).is_numeric())
                    {
                        out.push(v.id(&Token::Agg(f)));
                    }
                }
                // COUNT is always scalar-capable.
                out.push(v.id(&Token::Agg(AggFunc::Count)));
            }
            _ => {
                // EXISTS subqueries cannot GROUP BY (kept SPJ/plain-agg),
                // so mixing aggregate and plain items there would dead-end;
                // once one kind is picked, stick to it.
                let in_exists = frame.sub == Some(SubKind::Exists);
                let allow_plain = !(in_exists && frame.has_agg_item());
                let allow_agg =
                    self.config.allow_aggregation && !(in_exists && frame.has_plain_item());
                if allow_plain {
                    for c in self.scope_columns() {
                        out.push(v.id(&Token::Column(c)));
                    }
                }
                if allow_agg {
                    for f in AggFunc::ALL {
                        let has_col = self
                            .scope_columns()
                            .iter()
                            .any(|&c| !f.requires_numeric() || self.col_type(c).is_numeric());
                        if has_col {
                            out.push(v.id(&Token::Agg(f)));
                        }
                    }
                }
            }
        }
    }

    /// Tables joinable from the current scope: FK-connected and not yet used.
    fn joinable_tables(&self) -> Vec<u32> {
        let frame = self.frame();
        let mut out = Vec::new();
        for &t in &frame.scope {
            for e in self.vocab.edges_from(t) {
                if !frame.scope.contains(&e.right_table) && !out.contains(&e.right_table) {
                    out.push(e.right_table);
                }
            }
        }
        out.sort_unstable();
        out
    }

    fn group_by_available(&self) -> bool {
        if !self.config.allow_aggregation {
            return false;
        }
        let frame = self.frame();
        // Subqueries stay SPJ (one select item; grouping adds nothing).
        if frame.sub.is_some() {
            return false;
        }
        if frame.group_by.len() >= self.config.max_group_by
            && frame.ungrouped_plain_cols().is_empty()
        {
            return false;
        }
        // There must be a groupable column.
        if frame.has_plain_item() {
            true
        } else {
            !self.scope_columns().is_empty()
        }
    }

    fn having_available(&self) -> bool {
        self.having_cols().next().is_some()
    }

    /// Numeric scope columns with sampled values (HAVING operands).
    fn having_cols(&self) -> impl Iterator<Item = u32> + '_ {
        self.scope_columns().into_iter().filter(move |&c| {
            self.col_type(c).is_numeric() && !self.vocab.value_tokens_of(c).is_empty()
        })
    }

    /// Columns eligible as ORDER BY keys: projected plain select columns
    /// not yet used as keys.
    fn order_by_candidates(&self) -> Vec<u32> {
        let frame = self.frame();
        frame
            .select
            .iter()
            .filter(|(agg, _)| agg.is_none())
            .map(|&(_, c)| c)
            .filter(|c| !frame.order_by.iter().any(|(oc, _)| oc == c))
            .collect()
    }

    fn push_order_by(&self, out: &mut Vec<usize>) {
        let frame = self.frame();
        if self.config.allow_order_by
            && self.kind == Some(StatementKind::Select)
            && self.frames.len() == 1 // root query only
            && frame.order_by.is_empty()
            && !frame.needs_group_by()
            && !self.order_by_candidates().is_empty()
        {
            out.push(self.vocab.id(&Token::OrderBy));
        }
    }

    fn push_terminator(&self, out: &mut Vec<usize>) {
        let frame = self.frame();
        if frame.needs_group_by() {
            return; // must group before terminating
        }
        if self.frames.len() > 1 {
            out.push(self.vocab.id(&Token::CloseSub));
        } else {
            out.push(self.vocab.id(&Token::Eof));
        }
    }

    /// Applies a token. Returns an error if the token is not allowed.
    pub fn apply(&mut self, token_id: usize) -> Result<(), FsmError> {
        if !self.allowed().contains(&token_id) {
            sqlgen_obs::obs_count!("fsm.rejected.count");
            return Err(FsmError {
                message: format!(
                    "token {} not allowed in phase {:?}",
                    self.vocab.describe(token_id),
                    self.frame().phase
                ),
            });
        }
        sqlgen_obs::obs_count!("fsm.tokens.count");
        let token = self.vocab.token(token_id).clone();
        self.tokens.push(token_id);
        self.apply_inner(token);
        Ok(())
    }

    fn apply_inner(&mut self, token: Token) {
        let phase = self.frame().phase;
        match (phase, token) {
            (Phase::Start, Token::From) => {
                if self.frames.len() == 1 {
                    self.kind = Some(StatementKind::Select);
                }
                self.frame_mut().phase = Phase::FromTable;
            }
            (Phase::Start, Token::InsertInto) => {
                self.kind = Some(StatementKind::Insert);
                self.frame_mut().phase = Phase::InsertTable;
            }
            (Phase::Start, Token::Update) => {
                self.kind = Some(StatementKind::Update);
                self.frame_mut().phase = Phase::UpdateTable;
            }
            (Phase::Start, Token::DeleteFrom) => {
                self.kind = Some(StatementKind::Delete);
                self.frame_mut().phase = Phase::DeleteTable;
            }
            (Phase::FromTable, Token::Table(t)) => {
                let f = self.frame_mut();
                f.base = Some(t);
                f.scope.push(t);
                f.phase = Phase::AfterTable;
            }
            (Phase::AfterTable, Token::Join) => self.frame_mut().phase = Phase::JoinTable,
            (Phase::AfterTable, Token::Select) => self.frame_mut().phase = Phase::SelectItem,
            (Phase::JoinTable, Token::Table(t)) => {
                let edge = {
                    let frame = self.frame();
                    frame
                        .scope
                        .iter()
                        .find_map(|&s| {
                            self.vocab
                                .edges_from(s)
                                .find(|e| e.right_table == t)
                                .cloned()
                        })
                        .expect("joinable table has an edge")
                };
                let f = self.frame_mut();
                f.joins.push(edge);
                f.scope.push(t);
                f.phase = Phase::AfterTable;
            }
            (Phase::SelectItem | Phase::AfterItem, Token::Column(c)) => {
                let f = self.frame_mut();
                f.select.push((None, c));
                f.phase = Phase::AfterItem;
            }
            (Phase::SelectItem | Phase::AfterItem, Token::Agg(a)) => {
                self.frame_mut().phase = Phase::AggCol(a);
            }
            (Phase::AggCol(a), Token::Column(c)) => {
                let f = self.frame_mut();
                f.select.push((Some(a), c));
                f.phase = Phase::AfterItem;
            }
            (Phase::AfterItem | Phase::AfterDelete | Phase::AfterSet, Token::Where) => {
                self.frame_mut().phase = Phase::PredCol;
            }
            (Phase::PredCol, Token::Not) => self.frame_mut().pred.negate = true,
            (Phase::PredCol, Token::Exists) => {
                let f = self.frame_mut();
                f.pending_sub = Some(SubKind::Exists);
                f.phase = Phase::SubOpen;
            }
            (Phase::PredCol, Token::Column(c)) => {
                let f = self.frame_mut();
                f.pred.col = Some(c);
                f.phase = Phase::PredOp;
            }
            (Phase::PredOp, Token::Op(op)) => {
                let f = self.frame_mut();
                f.pred.op = Some(op);
                f.phase = Phase::PredRhs;
            }
            (Phase::PredOp, Token::Like) => {
                self.frame_mut().phase = Phase::PredLikeRhs;
            }
            (Phase::PredLikeRhs, Token::Pattern(p)) => {
                let pattern = self.vocab.like_patterns[p as usize].1.clone();
                let col = self.frame().pred.col.expect("like requires column");
                let atom = Predicate::Like {
                    col: self.vocab.col_ref(col),
                    pattern,
                };
                let f = self.frame_mut();
                f.pred.push_atom(atom);
                f.phase = Phase::AfterPred;
            }
            (Phase::PredOp, Token::In) => {
                let f = self.frame_mut();
                let col = f.pred.col.expect("In requires column");
                f.pending_sub = Some(SubKind::In { outer_col: col });
                f.phase = Phase::SubOpen;
            }
            (Phase::PredRhs, Token::Value(v)) => {
                let value = self.vocab.values[v as usize].1.clone();
                let col = self.frame().pred.col.expect("rhs requires column");
                let op = self.frame().pred.op.expect("rhs requires op");
                let atom = Predicate::Cmp {
                    col: self.vocab.col_ref(col),
                    op,
                    rhs: Rhs::Value(value),
                };
                let f = self.frame_mut();
                f.pred.push_atom(atom);
                f.phase = Phase::AfterPred;
            }
            (Phase::PredRhs, Token::OpenSub) => {
                self.frame_mut().pending_sub = Some(SubKind::Scalar);
                let sub = Some(SubKind::Scalar);
                self.frames.push(Frame::new(sub));
            }
            (Phase::SubOpen, Token::OpenSub) => {
                let sub = self.frame().pending_sub;
                self.frames.push(Frame::new(sub));
            }
            (Phase::AfterPred, Token::And) => {
                let f = self.frame_mut();
                f.pred.conj = Some(Conj::And);
                f.phase = Phase::PredCol;
            }
            (Phase::AfterPred, Token::Or) => {
                let f = self.frame_mut();
                f.pred.conj = Some(Conj::Or);
                f.phase = Phase::PredCol;
            }
            (Phase::AfterItem | Phase::AfterPred, Token::GroupBy) => {
                self.frame_mut().phase = Phase::GroupByCol;
            }
            (Phase::GroupByCol | Phase::AfterGroupBy, Token::Column(c)) => {
                let f = self.frame_mut();
                f.group_by.push(c);
                f.phase = Phase::AfterGroupBy;
            }
            (Phase::AfterGroupBy, Token::Having) => self.frame_mut().phase = Phase::HavingAgg,
            (Phase::HavingAgg, Token::Agg(a)) => {
                let f = self.frame_mut();
                f.having_agg = Some(a);
                f.phase = Phase::HavingCol(a);
            }
            (Phase::HavingCol(_), Token::Column(c)) => {
                let f = self.frame_mut();
                f.having_col = Some(c);
                f.phase = Phase::HavingOp;
            }
            (Phase::HavingOp, Token::Op(op)) => {
                let f = self.frame_mut();
                f.having_op = Some(op);
                f.phase = Phase::HavingRhs;
            }
            (Phase::HavingRhs, Token::Value(v)) => {
                let value = self.vocab.values[v as usize].1.clone();
                let col_ref = {
                    let f = self.frame();
                    self.vocab.col_ref(f.having_col.expect("having column"))
                };
                let f = self.frame_mut();
                f.having = Some(HavingClause {
                    agg: f.having_agg.expect("having agg"),
                    col: col_ref,
                    op: f.having_op.expect("having op"),
                    rhs: Rhs::Value(value),
                });
                f.phase = Phase::AfterHaving;
            }
            (
                Phase::AfterItem | Phase::AfterPred | Phase::AfterGroupBy | Phase::AfterHaving,
                Token::CloseSub,
            ) => self.close_subquery(),
            (Phase::AfterItem | Phase::AfterPred | Phase::AfterHaving, Token::OrderBy) => {
                self.frame_mut().phase = Phase::OrderCol;
            }
            (Phase::OrderCol, Token::Column(c)) => {
                let f = self.frame_mut();
                f.order_by.push((c, false));
                f.phase = Phase::AfterOrder;
            }
            (Phase::AfterOrder, Token::Desc) => {
                let f = self.frame_mut();
                f.order_by.last_mut().expect("key just pushed").1 = true;
                // DESC terminates the key; only EOF remains.
                f.phase = Phase::AfterOrder;
            }
            (_, Token::Eof) => {
                let stmt = self.build_statement();
                self.frame_mut().phase = Phase::Done;
                self.finished = Some(stmt);
            }
            // DML.
            (Phase::InsertTable, Token::Table(t)) => {
                self.dml_table = Some(t);
                self.frame_mut().phase = Phase::InsertValuesKw;
            }
            (Phase::InsertValuesKw, Token::Values) => {
                self.frame_mut().phase = Phase::InsertValues;
            }
            (Phase::InsertValues, Token::Value(v)) => {
                let value = self.vocab.values[v as usize].1.clone();
                self.insert_values.push(value);
                self.insert_next_col += 1;
                let t = self.dml_table.expect("insert table");
                if self.insert_next_col == self.vocab.table_columns[t as usize].len() {
                    self.frame_mut().phase = Phase::AfterInsert;
                }
            }
            (Phase::UpdateTable, Token::Table(t)) => {
                self.dml_table = Some(t);
                let f = self.frame_mut();
                f.scope.push(t);
                f.phase = Phase::SetKw;
            }
            (Phase::SetKw, Token::Set) => self.frame_mut().phase = Phase::SetCol,
            (Phase::SetCol | Phase::AfterSet, Token::Column(c)) => {
                self.frame_mut().phase = Phase::SetVal(c);
            }
            (Phase::SetVal(c), Token::Value(v)) => {
                let value = self.vocab.values[v as usize].1.clone();
                self.update_sets.push((c, value));
                self.frame_mut().phase = Phase::AfterSet;
            }
            (Phase::DeleteTable, Token::Table(t)) => {
                self.dml_table = Some(t);
                let f = self.frame_mut();
                f.scope.push(t);
                f.phase = Phase::AfterDelete;
            }
            (phase, token) => unreachable!("allowed() offered {token:?} in phase {phase:?}"),
        }
    }

    /// Pops a completed subquery frame and attaches it to the parent's
    /// pending predicate atom.
    fn close_subquery(&mut self) {
        let frame = self.frames.pop().expect("subquery frame");
        let sub = frame.sub.expect("popped frame is a subquery");
        let query = self.build_select_from(&frame);
        let atom = match sub {
            SubKind::In { outer_col } => Predicate::In {
                col: self.vocab.col_ref(outer_col),
                sub: Box::new(query),
            },
            SubKind::Scalar => {
                let col = self.frame().pred.col.expect("scalar sub has lhs col");
                let op = self.frame().pred.op.expect("scalar sub has op");
                Predicate::Cmp {
                    col: self.vocab.col_ref(col),
                    op,
                    rhs: Rhs::Subquery(Box::new(query)),
                }
            }
            SubKind::Exists => Predicate::Exists {
                sub: Box::new(query),
            },
        };
        let parent = self.frame_mut();
        parent.pending_sub = None;
        parent.pred.push_atom(atom);
        parent.phase = Phase::AfterPred;
    }

    /// Builds the complete statement at `Eof`.
    fn build_statement(&self) -> Statement {
        match self.kind.expect("Eof implies a statement kind") {
            StatementKind::Select => Statement::Select(self.build_select_from(self.frame())),
            StatementKind::Insert => Statement::Insert(InsertStmt {
                table: self
                    .vocab
                    .table_name(self.dml_table.expect("insert table"))
                    .to_string(),
                source: InsertSource::Values(self.insert_values.clone()),
            }),
            StatementKind::Update => Statement::Update(UpdateStmt {
                table: self
                    .vocab
                    .table_name(self.dml_table.expect("update table"))
                    .to_string(),
                sets: self
                    .update_sets
                    .iter()
                    .map(|(c, v)| (self.vocab.column_name(*c).to_string(), v.clone()))
                    .collect(),
                predicate: self.frame().pred.done.clone(),
            }),
            StatementKind::Delete => Statement::Delete(DeleteStmt {
                table: self
                    .vocab
                    .table_name(self.dml_table.expect("delete table"))
                    .to_string(),
                predicate: self.frame().pred.done.clone(),
            }),
        }
    }

    fn build_select_from(&self, frame: &Frame) -> SelectQuery {
        let base = self
            .vocab
            .table_name(frame.base.expect("select has base table"))
            .to_string();
        let joins = frame
            .joins
            .iter()
            .map(|e| Join {
                table: self.vocab.table_name(e.right_table).to_string(),
                left: self.vocab.col_ref(e.left_column),
                right: self.vocab.col_ref(e.right_column),
            })
            .collect();
        let select = frame
            .select
            .iter()
            .map(|(agg, c)| match agg {
                Some(f) => SelectItem::Agg(*f, self.vocab.col_ref(*c)),
                None => SelectItem::Column(self.vocab.col_ref(*c)),
            })
            .collect();
        SelectQuery {
            from: FromClause { base, joins },
            select,
            predicate: frame.pred.done.clone(),
            group_by: frame
                .group_by
                .iter()
                .map(|&c| self.vocab.col_ref(c))
                .collect(),
            having: frame.having.clone(),
            order_by: frame
                .order_by
                .iter()
                .map(|&(c, desc)| sqlgen_engine::OrderBy {
                    col: self.vocab.col_ref(c),
                    desc,
                })
                .collect(),
        }
    }

    /// The statement as-executable-so-far (paper: partial queries at clause
    /// boundaries are executed for intermediate rewards), or `None` when the
    /// current prefix is not a well-formed statement.
    pub fn partial_statement(&self) -> Option<Statement> {
        if let Some(s) = &self.finished {
            return Some(s.clone());
        }
        if self.frames.len() != 1 {
            return None; // an open subquery means an incomplete predicate
        }
        let frame = self.frame();
        match frame.phase {
            Phase::AfterItem | Phase::AfterPred | Phase::AfterOrder => {
                if self.kind == Some(StatementKind::Select) {
                    if frame.needs_group_by() {
                        return None;
                    }
                    Some(Statement::Select(self.build_select_from(frame)))
                } else {
                    // DML WHERE boundary.
                    Some(self.build_dml_partial())
                }
            }
            Phase::AfterGroupBy => {
                if frame.ungrouped_plain_cols().is_empty() {
                    Some(Statement::Select(self.build_select_from(frame)))
                } else {
                    None
                }
            }
            Phase::AfterHaving => Some(Statement::Select(self.build_select_from(frame))),
            Phase::AfterInsert => Some(self.build_statement()),
            Phase::AfterSet | Phase::AfterDelete => Some(self.build_dml_partial()),
            _ => None,
        }
    }

    fn build_dml_partial(&self) -> Statement {
        match self.kind.expect("DML kind set") {
            StatementKind::Update => Statement::Update(UpdateStmt {
                table: self
                    .vocab
                    .table_name(self.dml_table.expect("table"))
                    .to_string(),
                sets: self
                    .update_sets
                    .iter()
                    .map(|(c, v)| (self.vocab.column_name(*c).to_string(), v.clone()))
                    .collect(),
                predicate: self.frame().pred.done.clone(),
            }),
            StatementKind::Delete => Statement::Delete(DeleteStmt {
                table: self
                    .vocab
                    .table_name(self.dml_table.expect("table"))
                    .to_string(),
                predicate: self.frame().pred.done.clone(),
            }),
            other => {
                debug_assert!(false, "unexpected DML partial for {other:?}");
                self.build_statement()
            }
        }
    }
}
