//! FSM configuration: which statement types and structural limits the
//! generated queries may use.
//!
//! The paper's FSM "can be extended flexibly by the users, so as to generate
//! various types of queries" — this config is that extension point. The
//! defaults generate SPJ + aggregation + nested SELECT queries; the
//! complicated-query experiments (Figure 11) enable INSERT/DELETE too.

use sqlgen_engine::StatementKind;

/// Structural limits and feature switches for the FSM.
#[derive(Debug, Clone)]
pub struct FsmConfig {
    /// Statement kinds the FSM may start (paper cases 1-6).
    pub statements: Vec<StatementKind>,
    /// Maximum number of JOINs per SELECT (tables in scope = joins + 1).
    pub max_joins: usize,
    /// Maximum SELECT-list items.
    pub max_select_items: usize,
    /// Maximum predicate atoms per WHERE clause.
    pub max_predicates: usize,
    /// Maximum GROUP BY columns beyond the mandatory ones.
    pub max_group_by: usize,
    /// Maximum subquery nesting depth (0 disables nesting).
    pub max_subquery_depth: usize,
    /// Whether GROUP BY / HAVING may be generated.
    pub allow_aggregation: bool,
    /// Whether LIKE predicates may be generated (needs sampled patterns).
    pub allow_like: bool,
    /// Whether ORDER BY may be generated. Off by default: the paper's
    /// Table 1 grammar omits it (the keyword is only listed in §4.1), and
    /// ordering never changes cardinality.
    pub allow_order_by: bool,
}

impl Default for FsmConfig {
    fn default() -> Self {
        FsmConfig {
            statements: vec![StatementKind::Select],
            max_joins: 2,
            max_select_items: 3,
            max_predicates: 4,
            max_group_by: 2,
            max_subquery_depth: 1,
            allow_aggregation: true,
            allow_like: true,
            allow_order_by: false,
        }
    }
}

impl FsmConfig {
    /// SPJ-only configuration (paper FSM case 1).
    pub fn spj() -> Self {
        FsmConfig {
            max_subquery_depth: 0,
            allow_aggregation: false,
            ..Default::default()
        }
    }

    /// Everything enabled, including DML (paper cases 1-6).
    pub fn full() -> Self {
        FsmConfig {
            statements: StatementKind::ALL.to_vec(),
            ..Default::default()
        }
    }

    /// Only the given statement kinds.
    pub fn with_statements(mut self, kinds: &[StatementKind]) -> Self {
        self.statements = kinds.to_vec();
        self
    }

    pub fn allows(&self, kind: StatementKind) -> bool {
        self.statements.contains(&kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_select_only() {
        let c = FsmConfig::default();
        assert!(c.allows(StatementKind::Select));
        assert!(!c.allows(StatementKind::Insert));
    }

    #[test]
    fn full_allows_dml() {
        let c = FsmConfig::full();
        for k in StatementKind::ALL {
            assert!(c.allows(k));
        }
    }

    #[test]
    fn spj_disables_nesting_and_aggregation() {
        let c = FsmConfig::spj();
        assert_eq!(c.max_subquery_depth, 0);
        assert!(!c.allow_aggregation);
    }
}
