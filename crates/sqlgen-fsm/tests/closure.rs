//! FSM closure pinned as a plain `cargo test` (invariant (d) of the fuzz
//! harness): every masked rollout, on every benchmark schema, renders SQL
//! that parses back to the same text, passes independent semantic
//! validation, and executes without error.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sqlgen_engine::{parse, render, validate, ExecOptions, Executor};
use sqlgen_fsm::{random_statement, FsmConfig, Vocabulary};
use sqlgen_storage::gen::Benchmark;
use sqlgen_storage::sample::SampleConfig;

const ROLLOUTS_PER_SCHEMA: usize = 200;

#[test]
fn every_schema_rollout_parses_validates_and_executes() {
    for bench in Benchmark::ALL {
        let db = bench.build(0.05, 1234);
        let vocab = Vocabulary::build(
            &db,
            &SampleConfig {
                k: 15,
                ..Default::default()
            },
        );
        let cfg = FsmConfig::full();
        let ex = Executor::with_options(
            &db,
            ExecOptions {
                max_rows: 2_000_000,
                deadline: None,
            },
        );
        let mut rng = StdRng::seed_from_u64(0xC105 ^ bench as u64);
        for i in 0..ROLLOUTS_PER_SCHEMA {
            let (stmt, _) = random_statement(&vocab, &cfg, &mut rng);
            let sql = render(&stmt);
            let ctx = |what: &str| format!("{} rollout {i} {what}:\n{sql}", bench.name());

            let reparsed = parse(&sql).unwrap_or_else(|e| panic!("{}: {e}", ctx("parse")));
            assert_eq!(render(&reparsed), sql, "{}", ctx("re-render fixpoint"));
            validate(&db, &stmt).unwrap_or_else(|e| panic!("{}: {e}", ctx("validate")));
            ex.cardinality(&stmt)
                .unwrap_or_else(|e| panic!("{}: {e:?}", ctx("execute")));
        }
    }
}
