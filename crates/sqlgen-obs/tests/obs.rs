//! Integration tests for the observability layer.
//!
//! The sink and the metrics-enabled switch are process-global, so every test
//! that installs a sink serializes on `SINK_TEST_LOCK`; metric names are
//! unique per test because the registry is never reset.

use sqlgen_obs::{metrics, obs_count, obs_info, obs_span, obs_time, Event, JsonlSink, MemorySink};
use std::sync::{Arc, Mutex, MutexGuard};

static SINK_TEST_LOCK: Mutex<()> = Mutex::new(());

fn sink_guard() -> MutexGuard<'static, ()> {
    SINK_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

#[test]
fn empty_histogram_percentiles_are_zero() {
    let h = metrics::global().histogram("test.hist.empty");
    assert_eq!(h.count(), 0);
    assert_eq!(h.p50(), 0.0);
    assert_eq!(h.p95(), 0.0);
    assert_eq!(h.p99(), 0.0);
    assert_eq!(h.max(), 0.0);
    assert_eq!(h.mean(), 0.0);
}

#[test]
fn single_sample_percentiles_are_exact() {
    let h = metrics::global().histogram("test.hist.single");
    h.record_silent(42.7);
    assert_eq!(h.count(), 1);
    // Bucket representatives are clamped to the observed [min, max], so a
    // degenerate distribution reports exactly.
    assert_eq!(h.p50(), 42.7);
    assert_eq!(h.p95(), 42.7);
    assert_eq!(h.p99(), 42.7);
    assert_eq!(h.max(), 42.7);
    assert_eq!(h.min(), 42.7);
}

#[test]
fn histogram_bucketing_tracks_known_quantiles() {
    let h = metrics::global().histogram("test.hist.uniform");
    for i in 1..=10_000 {
        h.record_silent(i as f64 / 10.0); // 0.1 .. 1000.0 uniform
    }
    let tol = 0.15;
    for (q, expect) in [(0.5, 500.0), (0.95, 950.0), (0.99, 990.0)] {
        let got = h.percentile(q);
        assert!(
            (got - expect).abs() / expect < tol,
            "q={q}: got {got}, expected ~{expect}"
        );
    }
    assert_eq!(h.max(), 1000.0);
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

#[test]
fn counter_concurrent_increments_sum_exactly() {
    let threads = 8;
    let per_thread = 10_000u64;
    let counter = metrics::global().counter("test.counter.concurrent");
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let c = Arc::clone(&counter);
            std::thread::spawn(move || {
                for _ in 0..per_thread {
                    c.inc(1);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("counter thread");
    }
    assert_eq!(counter.get(), threads * per_thread);
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

#[test]
fn span_nesting_emits_inner_first_with_full_paths() {
    let _guard = sink_guard();
    let sink = Arc::new(MemorySink::new());
    sqlgen_obs::install_sink(sink.clone());

    {
        let _outer = obs_span!("outer");
        {
            let _inner = obs_span!("inner");
        }
        {
            let _second = obs_span!("second");
        }
    }
    sqlgen_obs::clear_sink();

    let spans: Vec<Event> = sink
        .events()
        .into_iter()
        .filter(|e| e.kind == "span")
        .collect();
    assert_eq!(spans.len(), 3, "{spans:?}");
    // Exit order: innermost first.
    assert_eq!(spans[0].name, "inner");
    assert_eq!(spans[1].name, "second");
    assert_eq!(spans[2].name, "outer");
    let path = |e: &Event| e.fields.get("path").unwrap().as_str().unwrap().to_string();
    assert_eq!(path(&spans[0]), "outer/inner");
    assert_eq!(path(&spans[1]), "outer/second");
    assert_eq!(path(&spans[2]), "outer");
    assert_eq!(spans[0].fields.get("depth").unwrap().as_i64(), Some(2));
    assert_eq!(spans[2].fields.get("depth").unwrap().as_i64(), Some(1));
    for s in &spans {
        assert!(s.fields.get("dur_us").unwrap().as_f64().unwrap() >= 0.0);
    }
}

// ---------------------------------------------------------------------------
// JSONL sink
// ---------------------------------------------------------------------------

#[test]
fn jsonl_sink_round_trips_every_event_kind() {
    let _guard = sink_guard();
    let path = std::env::temp_dir().join(format!("obs-test-{}.jsonl", std::process::id()));
    let sink = Arc::new(JsonlSink::create(&path).expect("create jsonl"));
    sqlgen_obs::install_sink(sink);

    obs_count!("test.jsonl.count", 2);
    metrics::global().gauge("test.jsonl.gauge").set(0.5);
    metrics::global().histogram("test.jsonl.hist").record(12.5);
    {
        let _t = obs_time!("test.jsonl.latency_us");
    }
    {
        let _s = obs_span!("test.jsonl.span");
    }
    obs_info!("hello from the {} test", "jsonl");
    sqlgen_obs::clear_sink();

    let text = std::fs::read_to_string(&path).expect("read trace");
    std::fs::remove_file(&path).ok();
    let events: Vec<Event> = text
        .lines()
        .map(|l| Event::from_json_line(l).unwrap_or_else(|e| panic!("bad line {l:?}: {e}")))
        .collect();
    assert!(events.len() >= 6, "{events:?}");

    let kind_of = |name: &str| {
        events
            .iter()
            .find(|e| e.name == name)
            .unwrap_or_else(|| panic!("no event named {name}"))
            .kind
            .clone()
    };
    assert_eq!(kind_of("test.jsonl.count"), "count");
    assert_eq!(kind_of("test.jsonl.gauge"), "gauge");
    assert_eq!(kind_of("test.jsonl.hist"), "hist");
    assert_eq!(kind_of("test.jsonl.latency_us"), "hist");
    assert_eq!(kind_of("test.jsonl.span"), "span");
    let log = events.iter().find(|e| e.kind == "log").expect("log event");
    assert_eq!(
        log.fields.get("msg").unwrap().as_str(),
        Some("hello from the jsonl test")
    );
    // Timestamps are sane and non-decreasing within a single thread.
    for w in events.windows(2) {
        assert!(w[0].ts_us <= w[1].ts_us);
    }
}

// ---------------------------------------------------------------------------
// Summary table
// ---------------------------------------------------------------------------

#[test]
fn summary_table_reports_percentile_columns() {
    let h = metrics::global().histogram("test.summary.latency_us");
    for i in 1..=100 {
        h.record_silent(i as f64);
    }
    let md = metrics::summary_table().to_markdown();
    assert!(md.contains("test.summary.latency_us"), "{md}");
    assert!(md.contains("p50"), "{md}");
    assert!(md.contains("p95"), "{md}");
    assert!(md.contains("p99"), "{md}");
    assert!(md.contains("100"), "{md}");
}
