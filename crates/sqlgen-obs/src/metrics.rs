//! Named metric instruments and the global registry.
//!
//! All instruments are lock-free on the update path:
//!
//! - [`Counter`] — monotonically increasing `u64`.
//! - [`Gauge`] — last-write-wins `f64`.
//! - [`Histogram`] — sign-aware log-bucketed `f64` distribution with exact
//!   count/sum/min/max and approximate percentiles (≤ ~12% relative bucket
//!   error, clamped to the exact observed range, so single-sample
//!   percentiles are exact).
//!
//! The registry itself is a name → instrument map behind a mutex; call
//! sites cache the returned `Arc` (see the `obs_*` macros), so the map is
//! only touched on first use per site.

use crate::sink::{num, Event, Fields};
use crate::table::Table;
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

// ---------------------------------------------------------------------------
// Labels
// ---------------------------------------------------------------------------

/// Hard cap on distinct label sets per metric family. The first
/// `MAX_SERIES_PER_FAMILY - 1` label sets get their own series; everything
/// beyond collapses into a single `{overflow="true"}` series so a
/// misbehaving label (e.g. one series per request id) cannot grow the
/// registry without bound.
pub const MAX_SERIES_PER_FAMILY: usize = 32;

/// An ordered, deduplicated `key → value` label set.
///
/// Keys are sorted so two semantically equal sets compare and render
/// identically regardless of insertion order.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct Labels(Vec<(String, String)>);

impl Labels {
    pub fn new() -> Labels {
        Labels(Vec::new())
    }

    /// Builder-style insert; replaces an existing value for the same key.
    pub fn with(mut self, key: &str, value: &str) -> Labels {
        match self.0.binary_search_by(|(k, _)| k.as_str().cmp(key)) {
            Ok(i) => self.0[i].1 = value.to_string(),
            Err(i) => self.0.insert(i, (key.to_string(), value.to_string())),
        }
        self
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.0.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Renders `{k="v",...}` with exposition-format escaping, or `""` when
    /// empty.
    pub fn render(&self) -> String {
        self.render_with(None)
    }

    /// Renders with one extra trailing pair (the summary `quantile` label).
    pub fn render_with(&self, extra: Option<(&str, &str)>) -> String {
        if self.0.is_empty() && extra.is_none() {
            return String::new();
        }
        let mut out = String::from("{");
        let mut first = true;
        for (k, v) in self.iter().chain(extra) {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&label_key(k));
            out.push_str("=\"");
            out.push_str(&escape_label_value(v));
            out.push('"');
        }
        out.push('}');
        out
    }
}

/// Escapes a label value per the Prometheus text exposition format:
/// `\` → `\\`, `"` → `\"`, newline → `\n`. Other control bytes pass
/// through (the format permits any UTF-8 in escaped values).
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Maps a label key to the exposition charset `[a-zA-Z_][a-zA-Z0-9_]*`.
fn label_key(k: &str) -> String {
    let mut out: String = k
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if out.is_empty() || out.as_bytes()[0].is_ascii_digit() {
        out.insert(0, '_');
    }
    out
}

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

/// Monotonic counter.
#[derive(Debug)]
pub struct Counter {
    name: String,
    value: AtomicU64,
}

impl Counter {
    fn new(name: String) -> Self {
        Counter {
            name,
            value: AtomicU64::new(0),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn inc(&self, delta: u64) {
        let total = self.value.fetch_add(delta, Ordering::Relaxed) + delta;
        if crate::sink_active() {
            let mut fields = Fields::new();
            fields.insert("delta".to_string(), num(delta as f64));
            fields.insert("total".to_string(), num(total as f64));
            crate::emit(&Event::now("count", &self.name, fields));
        }
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

/// Last-write-wins instantaneous value.
#[derive(Debug)]
pub struct Gauge {
    name: String,
    bits: AtomicU64,
}

impl Gauge {
    fn new(name: String) -> Self {
        Gauge {
            name,
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
        if crate::sink_active() {
            let mut fields = Fields::new();
            fields.insert("v".to_string(), num(v));
            crate::emit(&Event::now("gauge", &self.name, fields));
        }
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// Sub-buckets per power of two. 4 → worst-case relative error ~12%.
const SUB: usize = 4;
/// Exponent range covered per sign: 2^-32 .. 2^32.
const OCTAVES: usize = 64;
const MIN_EXP: i32 = -32;
const SIDE: usize = OCTAVES * SUB;
/// negatives (descending |v|) | zero | positives (ascending).
const NBUCKETS: usize = SIDE + 1 + SIDE;
const ZERO_SLOT: usize = SIDE;

/// Maps a strictly positive finite value to its side-local bucket index.
fn side_index(v: f64) -> usize {
    let e = (v.log2().floor() as i32).clamp(MIN_EXP, MIN_EXP + OCTAVES as i32 - 1);
    let base = (e as f64).exp2();
    let frac = ((v / base - 1.0) * SUB as f64) as usize;
    (e - MIN_EXP) as usize * SUB + frac.min(SUB - 1)
}

/// Geometric representative of a side-local bucket.
fn side_value(idx: usize) -> f64 {
    let e = MIN_EXP + (idx / SUB) as i32;
    let frac = (idx % SUB) as f64 + 0.5;
    (e as f64).exp2() * (1.0 + frac / SUB as f64)
}

fn slot_of(v: f64) -> usize {
    if v > 0.0 {
        ZERO_SLOT + 1 + side_index(v)
    } else if v < 0.0 {
        SIDE - 1 - side_index(-v)
    } else {
        ZERO_SLOT
    }
}

fn slot_value(slot: usize) -> f64 {
    match slot.cmp(&ZERO_SLOT) {
        std::cmp::Ordering::Greater => side_value(slot - ZERO_SLOT - 1),
        std::cmp::Ordering::Less => -side_value(SIDE - 1 - slot),
        std::cmp::Ordering::Equal => 0.0,
    }
}

/// Order-preserving u64 encoding of f64 (for atomic min/max).
fn ordered_bits(v: f64) -> u64 {
    let b = v.to_bits();
    if b >> 63 == 0 {
        b | (1 << 63)
    } else {
        !b
    }
}

fn from_ordered_bits(b: u64) -> f64 {
    if b >> 63 == 1 {
        f64::from_bits(b & !(1 << 63))
    } else {
        f64::from_bits(!b)
    }
}

/// Log-bucketed distribution over finite `f64` samples.
pub struct Histogram {
    name: String,
    buckets: Box<[AtomicU64; NBUCKETS]>,
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_ord: AtomicU64,
    max_ord: AtomicU64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("name", &self.name)
            .field("count", &self.count())
            .finish()
    }
}

impl Histogram {
    /// A free-standing histogram not owned by any registry (e.g. the trace
    /// store's duration distribution for the slow-decile threshold).
    pub fn standalone(name: &str) -> Self {
        Histogram::new(name.to_string())
    }

    fn new(name: String) -> Self {
        Histogram {
            name,
            buckets: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_ord: AtomicU64::new(ordered_bits(f64::INFINITY)),
            max_ord: AtomicU64::new(ordered_bits(f64::NEG_INFINITY)),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Records a sample and emits a `hist` event when a sink is installed.
    pub fn record(&self, v: f64) {
        self.record_silent(v);
        if crate::sink_active() {
            let mut fields = Fields::new();
            fields.insert("v".to_string(), num(v));
            crate::emit(&Event::now("hist", &self.name, fields));
        }
    }

    /// Records without emitting an event (for sites that emit their own).
    pub fn record_silent(&self, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.buckets[slot_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.min_ord.fetch_min(ordered_bits(v), Ordering::Relaxed);
        self.max_ord.fetch_max(ordered_bits(v), Ordering::Relaxed);
        // CAS-loop float add; histograms are low-contention.
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    pub fn min(&self) -> f64 {
        if self.count() == 0 {
            0.0
        } else {
            from_ordered_bits(self.min_ord.load(Ordering::Relaxed))
        }
    }

    pub fn max(&self) -> f64 {
        if self.count() == 0 {
            0.0
        } else {
            from_ordered_bits(self.max_ord.load(Ordering::Relaxed))
        }
    }

    /// Approximate quantile in `[0, 1]`; `0.0` for an empty histogram.
    ///
    /// The bucket representative is clamped to the exact observed
    /// `[min, max]`, so degenerate distributions (single sample, constant
    /// samples) report exact percentiles.
    pub fn percentile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // 1-based rank of the q-th sample.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (slot, bucket) in self.buckets.iter().enumerate() {
            cum += bucket.load(Ordering::Relaxed);
            if cum >= rank {
                return slot_value(slot).clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    /// Clears all recorded samples. Benchmarks use this to scope
    /// percentiles to a phase; not atomic w.r.t. concurrent recorders,
    /// which is fine for the quiesced points where it's called.
    pub fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
        self.min_ord
            .store(ordered_bits(f64::INFINITY), Ordering::Relaxed);
        self.max_ord
            .store(ordered_bits(f64::NEG_INFINITY), Ordering::Relaxed);
    }

    pub fn p50(&self) -> f64 {
        self.percentile(0.50)
    }

    pub fn p95(&self) -> f64 {
        self.percentile(0.95)
    }

    pub fn p99(&self) -> f64 {
        self.percentile(0.99)
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// A labeled metric family: label set → instrument, capped at
/// [`MAX_SERIES_PER_FAMILY`] distinct series.
type FamilyMap<T> = BTreeMap<String, BTreeMap<Labels, Arc<T>>>;

/// Name → instrument maps. Get-or-create; instruments live forever.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    labeled_counters: Mutex<FamilyMap<Counter>>,
    labeled_gauges: Mutex<FamilyMap<Gauge>>,
    labeled_histograms: Mutex<FamilyMap<Histogram>>,
}

/// The label set a family overflows into once it hits the cardinality cap.
fn overflow_labels() -> Labels {
    Labels::new().with("overflow", "true")
}

/// Get-or-create one series in a labeled family, enforcing the cap.
fn family_series<T>(
    map: &Mutex<FamilyMap<T>>,
    name: &str,
    labels: &Labels,
    make: impl Fn(String) -> T,
) -> Arc<T> {
    let mut families = map.lock().expect("family map");
    let family = families.entry(name.to_string()).or_default();
    if let Some(existing) = family.get(labels) {
        return existing.clone();
    }
    // Overflow: the cap counts real series; the overflow series rides on
    // top so a capped family still accounts for excess traffic somewhere.
    let labels = if family.len() >= MAX_SERIES_PER_FAMILY {
        let ov = overflow_labels();
        if let Some(existing) = family.get(&ov) {
            return existing.clone();
        }
        ov
    } else {
        labels.clone()
    };
    let full = format!("{name}{}", labels.render());
    let arc = Arc::new(make(full));
    family.insert(labels, arc.clone());
    arc
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::default)
}

impl Registry {
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("counter map");
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Counter::new(name.to_string())))
            .clone()
    }

    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("gauge map");
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Gauge::new(name.to_string())))
            .clone()
    }

    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_owned(name.to_string())
    }

    pub fn histogram_owned(&self, name: String) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("histogram map");
        map.entry(name.clone())
            .or_insert_with(|| Arc::new(Histogram::new(name)))
            .clone()
    }

    /// Labeled counter series (`name{labels...}`), cardinality-capped.
    pub fn counter_with(&self, name: &str, labels: &Labels) -> Arc<Counter> {
        family_series(&self.labeled_counters, name, labels, Counter::new)
    }

    /// Labeled gauge series, cardinality-capped.
    pub fn gauge_with(&self, name: &str, labels: &Labels) -> Arc<Gauge> {
        family_series(&self.labeled_gauges, name, labels, Gauge::new)
    }

    /// Labeled histogram series, cardinality-capped.
    pub fn histogram_with(&self, name: &str, labels: &Labels) -> Arc<Histogram> {
        family_series(&self.labeled_histograms, name, labels, Histogram::new)
    }

    /// Number of live series in a labeled family (tests / introspection).
    pub fn family_cardinality(&self, name: &str) -> usize {
        let c = self
            .labeled_counters
            .lock()
            .expect("family map")
            .get(name)
            .map_or(0, BTreeMap::len);
        let g = self
            .labeled_gauges
            .lock()
            .expect("family map")
            .get(name)
            .map_or(0, BTreeMap::len);
        let h = self
            .labeled_histograms
            .lock()
            .expect("family map")
            .get(name)
            .map_or(0, BTreeMap::len);
        c + g + h
    }

    /// Renders every registered instrument as a summary table, sorted by
    /// name within each kind.
    pub fn summary_table(&self) -> Table {
        let mut t = Table::new(
            "metrics summary",
            &[
                "metric", "kind", "count", "value", "p50", "p95", "p99", "max",
            ],
        );
        for c in self.counters.lock().expect("counter map").values() {
            t.row(vec![
                c.name().to_string(),
                "counter".to_string(),
                c.get().to_string(),
                c.get().to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
            ]);
        }
        for g in self.gauges.lock().expect("gauge map").values() {
            t.row(vec![
                g.name().to_string(),
                "gauge".to_string(),
                "-".to_string(),
                fmt_value(g.get()),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
            ]);
        }
        for h in self.histograms.lock().expect("histogram map").values() {
            t.row(vec![
                h.name().to_string(),
                "hist".to_string(),
                h.count().to_string(),
                fmt_value(h.mean()),
                fmt_value(h.p50()),
                fmt_value(h.p95()),
                fmt_value(h.p99()),
                fmt_value(h.max()),
            ]);
        }
        for family in self.labeled_histograms.lock().expect("family map").values() {
            for h in family.values() {
                t.row(vec![
                    h.name().to_string(),
                    "hist".to_string(),
                    h.count().to_string(),
                    fmt_value(h.mean()),
                    fmt_value(h.p50()),
                    fmt_value(h.p95()),
                    fmt_value(h.p99()),
                    fmt_value(h.max()),
                ]);
            }
        }
        t
    }
}

impl Registry {
    /// Emits one `summary` event per registered instrument — the end-of-run
    /// rollup a trace consumer can read without replaying every sample.
    pub fn emit_summary_events(&self) {
        if !crate::sink_active() {
            return;
        }
        for c in self.counters.lock().expect("counter map").values() {
            let mut fields = Fields::new();
            fields.insert("total".to_string(), num(c.get() as f64));
            crate::emit(&Event::now("summary", c.name(), fields));
        }
        for g in self.gauges.lock().expect("gauge map").values() {
            let mut fields = Fields::new();
            fields.insert("v".to_string(), num(g.get()));
            crate::emit(&Event::now("summary", g.name(), fields));
        }
        for h in self.histograms.lock().expect("histogram map").values() {
            let mut fields = Fields::new();
            fields.insert("count".to_string(), num(h.count() as f64));
            fields.insert("mean".to_string(), num(h.mean()));
            fields.insert("p50".to_string(), num(h.p50()));
            fields.insert("p95".to_string(), num(h.p95()));
            fields.insert("p99".to_string(), num(h.p99()));
            fields.insert("max".to_string(), num(h.max()));
            crate::emit(&Event::now("summary", h.name(), fields));
        }
    }
}

impl Registry {
    /// Renders every registered instrument in a Prometheus-style plain-text
    /// exposition (one `name{...} value` line per sample; metric names have
    /// `.` mapped to `_`). This is the `/metrics` endpoint payload of
    /// `sqlgen-serve`: scrapable text, no dependencies, stable ordering
    /// (BTreeMap name order within each kind).
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();

        // Counters: unlabeled then labeled families, one TYPE line per
        // exposition name even when both forms exist.
        let plain = self.counters.lock().expect("counter map");
        let labeled = self.labeled_counters.lock().expect("family map");
        let names: BTreeSet<&str> = plain
            .keys()
            .map(String::as_str)
            .chain(labeled.keys().map(String::as_str))
            .collect();
        for raw in names {
            let name = text_name(raw);
            let _ = writeln!(out, "# TYPE {name} counter");
            if let Some(c) = plain.get(raw) {
                let _ = writeln!(out, "{name} {}", c.get());
            }
            if let Some(family) = labeled.get(raw) {
                for (labels, c) in family {
                    let _ = writeln!(out, "{name}{} {}", labels.render(), c.get());
                }
            }
        }
        drop(plain);
        drop(labeled);

        let plain = self.gauges.lock().expect("gauge map");
        let labeled = self.labeled_gauges.lock().expect("family map");
        let names: BTreeSet<&str> = plain
            .keys()
            .map(String::as_str)
            .chain(labeled.keys().map(String::as_str))
            .collect();
        for raw in names {
            let name = text_name(raw);
            let _ = writeln!(out, "# TYPE {name} gauge");
            if let Some(g) = plain.get(raw) {
                let _ = writeln!(out, "{name} {}", num_text(g.get()));
            }
            if let Some(family) = labeled.get(raw) {
                for (labels, g) in family {
                    let _ = writeln!(out, "{name}{} {}", labels.render(), num_text(g.get()));
                }
            }
        }
        drop(plain);
        drop(labeled);

        let plain = self.histograms.lock().expect("histogram map");
        let labeled = self.labeled_histograms.lock().expect("family map");
        let names: BTreeSet<&str> = plain
            .keys()
            .map(String::as_str)
            .chain(labeled.keys().map(String::as_str))
            .collect();
        let render_hist = |out: &mut String, name: &str, labels: &Labels, h: &Histogram| {
            let lab = labels.render();
            let _ = writeln!(out, "{name}_count{lab} {}", h.count());
            let _ = writeln!(out, "{name}_sum{lab} {}", num_text(h.sum()));
            for (q, v) in [("0.5", h.p50()), ("0.95", h.p95()), ("0.99", h.p99())] {
                let _ = writeln!(
                    out,
                    "{name}{} {}",
                    labels.render_with(Some(("quantile", q))),
                    num_text(v)
                );
            }
            let _ = writeln!(out, "{name}_max{lab} {}", num_text(h.max()));
        };
        for raw in names {
            let name = text_name(raw);
            let _ = writeln!(out, "# TYPE {name} summary");
            if let Some(h) = plain.get(raw) {
                render_hist(&mut out, &name, &Labels::new(), h);
            }
            if let Some(family) = labeled.get(raw) {
                for (labels, h) in family {
                    render_hist(&mut out, &name, labels, h);
                }
            }
        }
        out
    }
}

/// Maps a registry metric name to the text-exposition charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
fn text_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if out.is_empty() || out.as_bytes()[0].is_ascii_digit() {
        out.insert(0, '_');
    }
    out
}

// ---------------------------------------------------------------------------
// Exposition-format validation
// ---------------------------------------------------------------------------

fn valid_name(s: &str) -> bool {
    let b = s.as_bytes();
    !b.is_empty()
        && (b[0].is_ascii_alphabetic() || b[0] == b'_' || b[0] == b':')
        && b.iter()
            .all(|c| c.is_ascii_alphanumeric() || *c == b'_' || *c == b':')
}

/// Parses `{k="v",...}` starting at `line[start]` (which must be `{`);
/// returns the byte offset just past the closing `}`.
fn parse_label_block(line: &str, start: usize) -> Result<usize, String> {
    let b = line.as_bytes();
    let mut i = start + 1;
    loop {
        if i >= b.len() {
            return Err(format!("unterminated label block: {line:?}"));
        }
        if b[i] == b'}' {
            return Ok(i + 1);
        }
        // label name
        let name_start = i;
        while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
            i += 1;
        }
        if i == name_start || !valid_name(&line[name_start..i]) || line[name_start..i].contains(':')
        {
            return Err(format!("bad label name in {line:?}"));
        }
        if i >= b.len() || b[i] != b'=' {
            return Err(format!("expected '=' in label block: {line:?}"));
        }
        i += 1;
        if i >= b.len() || b[i] != b'"' {
            return Err(format!("expected '\"' in label block: {line:?}"));
        }
        i += 1;
        // escaped value
        loop {
            if i >= b.len() {
                return Err(format!("unterminated label value: {line:?}"));
            }
            match b[i] {
                b'"' => break,
                b'\\' => {
                    if i + 1 >= b.len() || !matches!(b[i + 1], b'\\' | b'"' | b'n') {
                        return Err(format!("bad escape in label value: {line:?}"));
                    }
                    i += 2;
                }
                b'\n' => return Err(format!("raw newline in label value: {line:?}")),
                _ => i += 1,
            }
        }
        i += 1; // closing quote
        match b.get(i) {
            Some(b',') => i += 1,
            Some(b'}') => {}
            _ => return Err(format!("expected ',' or '}}' in label block: {line:?}")),
        }
    }
}

/// Validates that `text` conforms to the Prometheus text exposition
/// grammar: every line is a comment, a well-formed `# TYPE` declaration
/// (at most one per metric name), or a `name[{labels}] value` sample with
/// a valid metric name, correctly escaped label values, and a parseable
/// float value. Returns the first violation.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    let mut typed: BTreeSet<&str> = BTreeSet::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let (Some(name), Some(kind), None) = (parts.next(), parts.next(), parts.next()) else {
                return Err(format!("malformed TYPE line: {line:?}"));
            };
            if !valid_name(name) {
                return Err(format!("bad metric name in TYPE line: {line:?}"));
            }
            if !matches!(
                kind,
                "counter" | "gauge" | "summary" | "histogram" | "untyped"
            ) {
                return Err(format!("bad metric kind in TYPE line: {line:?}"));
            }
            if !typed.insert(name) {
                return Err(format!("duplicate TYPE declaration for {name}"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment
        }
        // Sample line: name[{labels}] value [timestamp]
        let b = line.as_bytes();
        let mut i = 0;
        while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b':') {
            i += 1;
        }
        if !valid_name(&line[..i]) {
            return Err(format!("bad metric name in sample: {line:?}"));
        }
        if i < b.len() && b[i] == b'{' {
            i = parse_label_block(line, i)?;
        }
        let rest = &line[i..];
        let Some(value_part) = rest.strip_prefix(' ') else {
            return Err(format!("expected ' ' before value: {line:?}"));
        };
        let mut fields = value_part.split(' ');
        let Some(value) = fields.next() else {
            return Err(format!("missing value: {line:?}"));
        };
        let value_ok =
            value.parse::<f64>().is_ok() || matches!(value, "+Inf" | "-Inf" | "Nan" | "NaN");
        if !value_ok {
            return Err(format!("unparseable value {value:?} in {line:?}"));
        }
        if let Some(ts) = fields.next() {
            if ts.parse::<i64>().is_err() {
                return Err(format!("bad timestamp {ts:?} in {line:?}"));
            }
        }
        if fields.next().is_some() {
            return Err(format!("trailing fields in sample: {line:?}"));
        }
    }
    Ok(())
}

/// Finite numbers as shortest-roundtrip decimal; NaN (empty histograms)
/// rendered as 0 so scrapers never choke.
fn num_text(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// End-of-run summary for the global registry.
pub fn summary_table() -> Table {
    global().summary_table()
}

/// Text exposition of the global registry (the `/metrics` payload).
pub fn render_text() -> String {
    global().render_text()
}

/// Emits `summary` events for the global registry.
pub fn emit_summary_events() {
    global().emit_summary_events()
}

fn fmt_value(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1_000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_round_trip_within_tolerance() {
        for &v in &[1e-6, 0.013, 0.5, 1.0, 7.3, 640.0, 1.5e7, -0.4, -123.0] {
            let slot = slot_of(v);
            let rep = slot_value(slot);
            assert!(
                (rep - v).abs() <= v.abs() * 0.13,
                "v={v} rep={rep} slot={slot}"
            );
            assert_eq!(rep.signum(), v.signum(), "sign preserved for {v}");
        }
        assert_eq!(slot_of(0.0), ZERO_SLOT);
        assert_eq!(slot_value(ZERO_SLOT), 0.0);
    }

    #[test]
    fn slots_are_monotonic_in_value() {
        let vals = [-1e4, -3.0, -0.2, 0.0, 1e-4, 0.7, 2.0, 5.5, 1e6];
        for w in vals.windows(2) {
            assert!(slot_of(w[0]) <= slot_of(w[1]), "{} vs {}", w[0], w[1]);
        }
    }

    #[test]
    fn ordered_bits_total_order() {
        let vals = [f64::NEG_INFINITY, -1e9, -1.0, -0.0, 0.0, 1e-9, 2.5, 1e300];
        for w in vals.windows(2) {
            assert!(
                ordered_bits(w[0]) <= ordered_bits(w[1]),
                "{} vs {}",
                w[0],
                w[1]
            );
            assert_eq!(from_ordered_bits(ordered_bits(w[0])), w[0]);
        }
    }

    #[test]
    fn percentiles_track_uniform_data() {
        let h = Histogram::new("t".into());
        for i in 1..=1000 {
            h.record_silent(i as f64);
        }
        assert_eq!(h.count(), 1000);
        assert!((h.mean() - 500.5).abs() < 1e-9);
        assert!((h.p50() - 500.0).abs() / 500.0 < 0.15, "p50={}", h.p50());
        assert!((h.p95() - 950.0).abs() / 950.0 < 0.15, "p95={}", h.p95());
        assert!((h.p99() - 990.0).abs() / 990.0 < 0.15, "p99={}", h.p99());
        assert_eq!(h.max(), 1000.0);
        assert_eq!(h.min(), 1.0);
    }

    #[test]
    fn negative_samples_sort_before_positive() {
        let h = Histogram::new("t".into());
        for v in [-10.0, -5.0, 1.0, 2.0, 3.0] {
            h.record_silent(v);
        }
        assert!(h.percentile(0.0) < 0.0);
        assert!(h.percentile(1.0) > 0.0);
        assert_eq!(h.min(), -10.0);
        assert_eq!(h.max(), 3.0);
    }

    #[test]
    fn reset_clears_histogram() {
        let h = Histogram::new("t".into());
        for v in [1.0, 2.0, 1000.0] {
            h.record_silent(v);
        }
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0.0);
        h.record_silent(8.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 8.0);
        assert_eq!(h.max(), 8.0);
    }

    #[test]
    fn summary_table_lists_instruments() {
        let r = Registry::default();
        r.counter("c.one").inc(3);
        r.gauge("g.one").set(1.25);
        r.histogram("h.one").record_silent(10.0);
        let md = r.summary_table().to_markdown();
        assert!(md.contains("c.one"), "{md}");
        assert!(md.contains("g.one"), "{md}");
        assert!(md.contains("h.one"), "{md}");
        assert!(md.contains("counter"), "{md}");
    }

    #[test]
    fn labels_render_sorted_and_escaped() {
        let l = Labels::new()
            .with("schema", "tp\"ch")
            .with("batch_width", "8");
        // Sorted by key regardless of insertion order; values escaped.
        assert_eq!(l.render(), "{batch_width=\"8\",schema=\"tp\\\"ch\"}");
        let q = l.render_with(Some(("quantile", "0.5")));
        assert!(q.ends_with(",quantile=\"0.5\"}"), "{q}");
        assert_eq!(escape_label_value("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
    }

    #[test]
    fn labeled_families_render_one_type_line_and_escape_values() {
        let r = Registry::default();
        r.counter_with(
            "serve.http.requests",
            &Labels::new()
                .with("endpoint", "generate")
                .with("status", "200"),
        )
        .inc(5);
        r.counter_with(
            "serve.http.requests",
            &Labels::new()
                .with("endpoint", "metrics")
                .with("status", "200"),
        )
        .inc(1);
        // Hostile label value: backslash, quote, newline.
        r.gauge_with("g.f", &Labels::new().with("schema", "a\"b\\c\nd"))
            .set(1.0);
        r.histogram_with("h.f", &Labels::new().with("batch_width", "8"))
            .record_silent(10.0);
        let text = r.render_text();
        assert_eq!(
            text.matches("# TYPE serve_http_requests counter").count(),
            1,
            "{text}"
        );
        assert!(
            text.contains("serve_http_requests{endpoint=\"generate\",status=\"200\"} 5"),
            "{text}"
        );
        assert!(text.contains("g_f{schema=\"a\\\"b\\\\c\\nd\"} 1"), "{text}");
        assert!(text.contains("h_f_count{batch_width=\"8\"} 1"), "{text}");
        assert!(
            text.contains("h_f{batch_width=\"8\",quantile=\"0.5\"}"),
            "{text}"
        );
        validate_exposition(&text).expect("labeled rendering must validate");
    }

    #[test]
    fn label_cardinality_cap_overflows_into_one_series() {
        let r = Registry::default();
        for i in 0..(MAX_SERIES_PER_FAMILY + 40) {
            r.counter_with("f.capped", &Labels::new().with("id", &format!("{i}")))
                .inc(1);
        }
        // Cap series + the single overflow series.
        assert_eq!(r.family_cardinality("f.capped"), MAX_SERIES_PER_FAMILY + 1);
        let ov = r.counter_with("f.capped", &Labels::new().with("id", "overflowing"));
        assert_eq!(ov.name(), "f.capped{overflow=\"true\"}");
        // Every excess increment landed on the overflow series.
        assert_eq!(ov.get(), 40);
        validate_exposition(&r.render_text()).expect("capped family must validate");
    }

    #[test]
    fn histogram_edge_cases() {
        // Empty: all quantiles are 0, not NaN.
        let h = Histogram::standalone("edge");
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0.0);
        assert_eq!(h.percentile(1.0), 0.0);
        // Single sample: exact at every quantile (clamped to [min, max]).
        h.record_silent(42.0);
        for q in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(h.percentile(q), 42.0, "q={q}");
        }
        // Saturated: values beyond the bucketed exponent range (2^±32)
        // clamp into the extreme buckets — min/max stay exact, quantiles
        // stay finite, sign-correct, and within the observed range.
        let h = Histogram::standalone("sat");
        h.record_silent(1e300);
        h.record_silent(-1e300);
        h.record_silent(1e-300);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), 1e300);
        assert_eq!(h.min(), -1e300);
        let hi = h.percentile(1.0);
        let lo = h.percentile(0.0);
        assert!(hi.is_finite() && hi > 0.0 && hi <= h.max(), "hi={hi}");
        assert!(lo.is_finite() && lo < 0.0 && lo >= h.min(), "lo={lo}");
    }

    #[test]
    fn validate_exposition_rejects_malformed_lines() {
        validate_exposition("# TYPE ok counter\nok 1\nok{a=\"b\"} 2\n").unwrap();
        for bad in [
            "1leading_digit 1",
            "name{a=\"unterminated} 1",
            "name{a=\"bad\\q\"} 1",
            "name{=\"v\"} 1",
            "name{a=\"v\"}1",
            "name notanumber",
            "# TYPE dup counter\n# TYPE dup counter",
            "# TYPE x nonsense",
        ] {
            assert!(validate_exposition(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn render_text_exposes_all_instruments() {
        let r = Registry::default();
        r.counter("serve.requests.count").inc(2);
        r.gauge("serve.queue.depth").set(3.0);
        r.histogram("serve.latency.us").record_silent(50.0);
        let text = r.render_text();
        assert!(
            text.contains("# TYPE serve_requests_count counter"),
            "{text}"
        );
        assert!(text.contains("serve_requests_count 2"), "{text}");
        assert!(text.contains("serve_queue_depth 3"), "{text}");
        assert!(text.contains("serve_latency_us_count 1"), "{text}");
        assert!(text.contains("quantile=\"0.5\""), "{text}");
        // Empty histograms render finite values, not NaN.
        r.histogram("h.empty");
        assert!(!r.render_text().contains("NaN"));
    }
}
