//! Named metric instruments and the global registry.
//!
//! All instruments are lock-free on the update path:
//!
//! - [`Counter`] — monotonically increasing `u64`.
//! - [`Gauge`] — last-write-wins `f64`.
//! - [`Histogram`] — sign-aware log-bucketed `f64` distribution with exact
//!   count/sum/min/max and approximate percentiles (≤ ~12% relative bucket
//!   error, clamped to the exact observed range, so single-sample
//!   percentiles are exact).
//!
//! The registry itself is a name → instrument map behind a mutex; call
//! sites cache the returned `Arc` (see the `obs_*` macros), so the map is
//! only touched on first use per site.

use crate::sink::{num, Event, Fields};
use crate::table::Table;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

/// Monotonic counter.
#[derive(Debug)]
pub struct Counter {
    name: String,
    value: AtomicU64,
}

impl Counter {
    fn new(name: String) -> Self {
        Counter {
            name,
            value: AtomicU64::new(0),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn inc(&self, delta: u64) {
        let total = self.value.fetch_add(delta, Ordering::Relaxed) + delta;
        if crate::sink_active() {
            let mut fields = Fields::new();
            fields.insert("delta".to_string(), num(delta as f64));
            fields.insert("total".to_string(), num(total as f64));
            crate::emit(&Event::now("count", &self.name, fields));
        }
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

/// Last-write-wins instantaneous value.
#[derive(Debug)]
pub struct Gauge {
    name: String,
    bits: AtomicU64,
}

impl Gauge {
    fn new(name: String) -> Self {
        Gauge {
            name,
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
        if crate::sink_active() {
            let mut fields = Fields::new();
            fields.insert("v".to_string(), num(v));
            crate::emit(&Event::now("gauge", &self.name, fields));
        }
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// Sub-buckets per power of two. 4 → worst-case relative error ~12%.
const SUB: usize = 4;
/// Exponent range covered per sign: 2^-32 .. 2^32.
const OCTAVES: usize = 64;
const MIN_EXP: i32 = -32;
const SIDE: usize = OCTAVES * SUB;
/// negatives (descending |v|) | zero | positives (ascending).
const NBUCKETS: usize = SIDE + 1 + SIDE;
const ZERO_SLOT: usize = SIDE;

/// Maps a strictly positive finite value to its side-local bucket index.
fn side_index(v: f64) -> usize {
    let e = (v.log2().floor() as i32).clamp(MIN_EXP, MIN_EXP + OCTAVES as i32 - 1);
    let base = (e as f64).exp2();
    let frac = ((v / base - 1.0) * SUB as f64) as usize;
    (e - MIN_EXP) as usize * SUB + frac.min(SUB - 1)
}

/// Geometric representative of a side-local bucket.
fn side_value(idx: usize) -> f64 {
    let e = MIN_EXP + (idx / SUB) as i32;
    let frac = (idx % SUB) as f64 + 0.5;
    (e as f64).exp2() * (1.0 + frac / SUB as f64)
}

fn slot_of(v: f64) -> usize {
    if v > 0.0 {
        ZERO_SLOT + 1 + side_index(v)
    } else if v < 0.0 {
        SIDE - 1 - side_index(-v)
    } else {
        ZERO_SLOT
    }
}

fn slot_value(slot: usize) -> f64 {
    match slot.cmp(&ZERO_SLOT) {
        std::cmp::Ordering::Greater => side_value(slot - ZERO_SLOT - 1),
        std::cmp::Ordering::Less => -side_value(SIDE - 1 - slot),
        std::cmp::Ordering::Equal => 0.0,
    }
}

/// Order-preserving u64 encoding of f64 (for atomic min/max).
fn ordered_bits(v: f64) -> u64 {
    let b = v.to_bits();
    if b >> 63 == 0 {
        b | (1 << 63)
    } else {
        !b
    }
}

fn from_ordered_bits(b: u64) -> f64 {
    if b >> 63 == 1 {
        f64::from_bits(b & !(1 << 63))
    } else {
        f64::from_bits(!b)
    }
}

/// Log-bucketed distribution over finite `f64` samples.
pub struct Histogram {
    name: String,
    buckets: Box<[AtomicU64; NBUCKETS]>,
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_ord: AtomicU64,
    max_ord: AtomicU64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("name", &self.name)
            .field("count", &self.count())
            .finish()
    }
}

impl Histogram {
    fn new(name: String) -> Self {
        Histogram {
            name,
            buckets: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_ord: AtomicU64::new(ordered_bits(f64::INFINITY)),
            max_ord: AtomicU64::new(ordered_bits(f64::NEG_INFINITY)),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Records a sample and emits a `hist` event when a sink is installed.
    pub fn record(&self, v: f64) {
        self.record_silent(v);
        if crate::sink_active() {
            let mut fields = Fields::new();
            fields.insert("v".to_string(), num(v));
            crate::emit(&Event::now("hist", &self.name, fields));
        }
    }

    /// Records without emitting an event (for sites that emit their own).
    pub fn record_silent(&self, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.buckets[slot_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.min_ord.fetch_min(ordered_bits(v), Ordering::Relaxed);
        self.max_ord.fetch_max(ordered_bits(v), Ordering::Relaxed);
        // CAS-loop float add; histograms are low-contention.
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    pub fn min(&self) -> f64 {
        if self.count() == 0 {
            0.0
        } else {
            from_ordered_bits(self.min_ord.load(Ordering::Relaxed))
        }
    }

    pub fn max(&self) -> f64 {
        if self.count() == 0 {
            0.0
        } else {
            from_ordered_bits(self.max_ord.load(Ordering::Relaxed))
        }
    }

    /// Approximate quantile in `[0, 1]`; `0.0` for an empty histogram.
    ///
    /// The bucket representative is clamped to the exact observed
    /// `[min, max]`, so degenerate distributions (single sample, constant
    /// samples) report exact percentiles.
    pub fn percentile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // 1-based rank of the q-th sample.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (slot, bucket) in self.buckets.iter().enumerate() {
            cum += bucket.load(Ordering::Relaxed);
            if cum >= rank {
                return slot_value(slot).clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    /// Clears all recorded samples. Benchmarks use this to scope
    /// percentiles to a phase; not atomic w.r.t. concurrent recorders,
    /// which is fine for the quiesced points where it's called.
    pub fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
        self.min_ord
            .store(ordered_bits(f64::INFINITY), Ordering::Relaxed);
        self.max_ord
            .store(ordered_bits(f64::NEG_INFINITY), Ordering::Relaxed);
    }

    pub fn p50(&self) -> f64 {
        self.percentile(0.50)
    }

    pub fn p95(&self) -> f64 {
        self.percentile(0.95)
    }

    pub fn p99(&self) -> f64 {
        self.percentile(0.99)
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Name → instrument maps. Get-or-create; instruments live forever.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::default)
}

impl Registry {
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("counter map");
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Counter::new(name.to_string())))
            .clone()
    }

    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("gauge map");
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Gauge::new(name.to_string())))
            .clone()
    }

    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_owned(name.to_string())
    }

    pub fn histogram_owned(&self, name: String) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("histogram map");
        map.entry(name.clone())
            .or_insert_with(|| Arc::new(Histogram::new(name)))
            .clone()
    }

    /// Renders every registered instrument as a summary table, sorted by
    /// name within each kind.
    pub fn summary_table(&self) -> Table {
        let mut t = Table::new(
            "metrics summary",
            &[
                "metric", "kind", "count", "value", "p50", "p95", "p99", "max",
            ],
        );
        for c in self.counters.lock().expect("counter map").values() {
            t.row(vec![
                c.name().to_string(),
                "counter".to_string(),
                c.get().to_string(),
                c.get().to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
            ]);
        }
        for g in self.gauges.lock().expect("gauge map").values() {
            t.row(vec![
                g.name().to_string(),
                "gauge".to_string(),
                "-".to_string(),
                fmt_value(g.get()),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
            ]);
        }
        for h in self.histograms.lock().expect("histogram map").values() {
            t.row(vec![
                h.name().to_string(),
                "hist".to_string(),
                h.count().to_string(),
                fmt_value(h.mean()),
                fmt_value(h.p50()),
                fmt_value(h.p95()),
                fmt_value(h.p99()),
                fmt_value(h.max()),
            ]);
        }
        t
    }
}

impl Registry {
    /// Emits one `summary` event per registered instrument — the end-of-run
    /// rollup a trace consumer can read without replaying every sample.
    pub fn emit_summary_events(&self) {
        if !crate::sink_active() {
            return;
        }
        for c in self.counters.lock().expect("counter map").values() {
            let mut fields = Fields::new();
            fields.insert("total".to_string(), num(c.get() as f64));
            crate::emit(&Event::now("summary", c.name(), fields));
        }
        for g in self.gauges.lock().expect("gauge map").values() {
            let mut fields = Fields::new();
            fields.insert("v".to_string(), num(g.get()));
            crate::emit(&Event::now("summary", g.name(), fields));
        }
        for h in self.histograms.lock().expect("histogram map").values() {
            let mut fields = Fields::new();
            fields.insert("count".to_string(), num(h.count() as f64));
            fields.insert("mean".to_string(), num(h.mean()));
            fields.insert("p50".to_string(), num(h.p50()));
            fields.insert("p95".to_string(), num(h.p95()));
            fields.insert("p99".to_string(), num(h.p99()));
            fields.insert("max".to_string(), num(h.max()));
            crate::emit(&Event::now("summary", h.name(), fields));
        }
    }
}

impl Registry {
    /// Renders every registered instrument in a Prometheus-style plain-text
    /// exposition (one `name{...} value` line per sample; metric names have
    /// `.` mapped to `_`). This is the `/metrics` endpoint payload of
    /// `sqlgen-serve`: scrapable text, no dependencies, stable ordering
    /// (BTreeMap name order within each kind).
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for c in self.counters.lock().expect("counter map").values() {
            let name = text_name(c.name());
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {}", c.get());
        }
        for g in self.gauges.lock().expect("gauge map").values() {
            let name = text_name(g.name());
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {}", num_text(g.get()));
        }
        for h in self.histograms.lock().expect("histogram map").values() {
            let name = text_name(h.name());
            let _ = writeln!(out, "# TYPE {name} summary");
            let _ = writeln!(out, "{name}_count {}", h.count());
            let _ = writeln!(out, "{name}_sum {}", num_text(h.sum()));
            for (q, v) in [(0.5, h.p50()), (0.95, h.p95()), (0.99, h.p99())] {
                let _ = writeln!(out, "{name}{{quantile=\"{q}\"}} {}", num_text(v));
            }
            let _ = writeln!(out, "{name}_max {}", num_text(h.max()));
        }
        out
    }
}

/// Maps a registry metric name to the text-exposition charset.
fn text_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Finite numbers as shortest-roundtrip decimal; NaN (empty histograms)
/// rendered as 0 so scrapers never choke.
fn num_text(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// End-of-run summary for the global registry.
pub fn summary_table() -> Table {
    global().summary_table()
}

/// Text exposition of the global registry (the `/metrics` payload).
pub fn render_text() -> String {
    global().render_text()
}

/// Emits `summary` events for the global registry.
pub fn emit_summary_events() {
    global().emit_summary_events()
}

fn fmt_value(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1_000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_round_trip_within_tolerance() {
        for &v in &[1e-6, 0.013, 0.5, 1.0, 7.3, 640.0, 1.5e7, -0.4, -123.0] {
            let slot = slot_of(v);
            let rep = slot_value(slot);
            assert!(
                (rep - v).abs() <= v.abs() * 0.13,
                "v={v} rep={rep} slot={slot}"
            );
            assert_eq!(rep.signum(), v.signum(), "sign preserved for {v}");
        }
        assert_eq!(slot_of(0.0), ZERO_SLOT);
        assert_eq!(slot_value(ZERO_SLOT), 0.0);
    }

    #[test]
    fn slots_are_monotonic_in_value() {
        let vals = [-1e4, -3.0, -0.2, 0.0, 1e-4, 0.7, 2.0, 5.5, 1e6];
        for w in vals.windows(2) {
            assert!(slot_of(w[0]) <= slot_of(w[1]), "{} vs {}", w[0], w[1]);
        }
    }

    #[test]
    fn ordered_bits_total_order() {
        let vals = [f64::NEG_INFINITY, -1e9, -1.0, -0.0, 0.0, 1e-9, 2.5, 1e300];
        for w in vals.windows(2) {
            assert!(
                ordered_bits(w[0]) <= ordered_bits(w[1]),
                "{} vs {}",
                w[0],
                w[1]
            );
            assert_eq!(from_ordered_bits(ordered_bits(w[0])), w[0]);
        }
    }

    #[test]
    fn percentiles_track_uniform_data() {
        let h = Histogram::new("t".into());
        for i in 1..=1000 {
            h.record_silent(i as f64);
        }
        assert_eq!(h.count(), 1000);
        assert!((h.mean() - 500.5).abs() < 1e-9);
        assert!((h.p50() - 500.0).abs() / 500.0 < 0.15, "p50={}", h.p50());
        assert!((h.p95() - 950.0).abs() / 950.0 < 0.15, "p95={}", h.p95());
        assert!((h.p99() - 990.0).abs() / 990.0 < 0.15, "p99={}", h.p99());
        assert_eq!(h.max(), 1000.0);
        assert_eq!(h.min(), 1.0);
    }

    #[test]
    fn negative_samples_sort_before_positive() {
        let h = Histogram::new("t".into());
        for v in [-10.0, -5.0, 1.0, 2.0, 3.0] {
            h.record_silent(v);
        }
        assert!(h.percentile(0.0) < 0.0);
        assert!(h.percentile(1.0) > 0.0);
        assert_eq!(h.min(), -10.0);
        assert_eq!(h.max(), 3.0);
    }

    #[test]
    fn reset_clears_histogram() {
        let h = Histogram::new("t".into());
        for v in [1.0, 2.0, 1000.0] {
            h.record_silent(v);
        }
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0.0);
        h.record_silent(8.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 8.0);
        assert_eq!(h.max(), 8.0);
    }

    #[test]
    fn summary_table_lists_instruments() {
        let r = Registry::default();
        r.counter("c.one").inc(3);
        r.gauge("g.one").set(1.25);
        r.histogram("h.one").record_silent(10.0);
        let md = r.summary_table().to_markdown();
        assert!(md.contains("c.one"), "{md}");
        assert!(md.contains("g.one"), "{md}");
        assert!(md.contains("h.one"), "{md}");
        assert!(md.contains("counter"), "{md}");
    }

    #[test]
    fn render_text_exposes_all_instruments() {
        let r = Registry::default();
        r.counter("serve.requests.count").inc(2);
        r.gauge("serve.queue.depth").set(3.0);
        r.histogram("serve.latency.us").record_silent(50.0);
        let text = r.render_text();
        assert!(
            text.contains("# TYPE serve_requests_count counter"),
            "{text}"
        );
        assert!(text.contains("serve_requests_count 2"), "{text}");
        assert!(text.contains("serve_queue_depth 3"), "{text}");
        assert!(text.contains("serve_latency_us_count 1"), "{text}");
        assert!(text.contains("quantile=\"0.5\""), "{text}");
        // Empty histograms render finite values, not NaN.
        r.histogram("h.empty");
        assert!(!r.render_text().contains("NaN"));
    }
}
