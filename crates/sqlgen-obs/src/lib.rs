//! Observability for the sqlgen workspace: metrics, spans, sinks, logging.
//!
//! Everything is std-only (plus the workspace serde shim for JSON) and built
//! around one invariant: **an uninstrumented run pays almost nothing**.
//! Counters and value histograms are lock-free atomic updates; latency
//! timers and spans check a single relaxed atomic and skip `Instant::now()`
//! entirely unless a sink is installed or metrics collection was enabled.
//!
//! Layers:
//!
//! - [`metrics`] — named counters, gauges and log-bucketed histograms in a
//!   global registry; [`metrics::summary_table`] renders the end-of-run
//!   table (count / p50 / p95 / p99 / max).
//! - [`span`](crate::span()) — RAII timers with a thread-local span stack;
//!   each exit emits a structured event carrying the full `outer/inner`
//!   path.
//! - [`sink`] — pluggable event consumers: [`sink::MemorySink`] for tests,
//!   [`sink::JsonlSink`] writing one JSON object per line
//!   (`{ts_us, kind, name, fields}`).
//! - [`obs_info!`] / [`obs_debug!`] / [`obs_warn!`] / [`obs_error!`] —
//!   leveled stderr logging that doubles as `log` events when tracing.
//!
//! Instrumentation sites use the `obs_*` macros, which cache their registry
//! handle in a per-site `OnceLock` so the steady-state cost is one atomic
//! load plus the update itself.

pub mod metrics;
pub mod sink;
pub mod table;
pub mod trace;

pub use metrics::{escape_label_value, validate_exposition, Counter, Gauge, Histogram, Labels};
pub use sink::{Event, JsonlSink, MemorySink, Sink};
pub use table::{write_csv, Table};
pub use trace::{
    FinishedTrace, RequestTrace, TraceContext, TraceHandle, TraceStore, TraceStoreConfig,
};

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Global switches
// ---------------------------------------------------------------------------

static SINK: RwLock<Option<Arc<dyn Sink>>> = RwLock::new(None);
static SINK_ACTIVE: AtomicBool = AtomicBool::new(false);
static METRICS_ENABLED: AtomicBool = AtomicBool::new(false);

/// Installs the global event sink (replacing any previous one).
pub fn install_sink(sink: Arc<dyn Sink>) {
    let mut slot = SINK.write().expect("sink lock");
    if let Some(old) = slot.take() {
        old.flush();
    }
    *slot = Some(sink);
    SINK_ACTIVE.store(true, Ordering::Release);
}

/// Removes the global sink, flushing it first.
pub fn clear_sink() {
    SINK_ACTIVE.store(false, Ordering::Release);
    let mut slot = SINK.write().expect("sink lock");
    if let Some(old) = slot.take() {
        old.flush();
    }
}

/// Flushes the installed sink, if any.
pub fn flush_sink() {
    if let Some(s) = SINK.read().expect("sink lock").as_ref() {
        s.flush();
    }
}

/// True when a sink is installed (fast path: one atomic load).
pub fn sink_active() -> bool {
    SINK_ACTIVE.load(Ordering::Acquire)
}

/// Turns on latency collection even without a sink (the `--metrics` mode).
pub fn enable_metrics() {
    METRICS_ENABLED.store(true, Ordering::Release);
}

pub fn metrics_enabled() -> bool {
    METRICS_ENABLED.load(Ordering::Acquire)
}

/// Whether timed instrumentation (latency histograms, spans) should run.
pub fn timing_enabled() -> bool {
    sink_active() || metrics_enabled()
}

/// Sends an event to the sink, if one is installed.
pub fn emit(event: &Event) {
    if !sink_active() {
        return;
    }
    if let Some(s) = SINK.read().expect("sink lock").as_ref() {
        s.emit(event);
    }
}

// ---------------------------------------------------------------------------
// Leveled logging
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    Error = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
}

impl Level {
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);

/// Sets the maximum level that still prints (e.g. `Warn` for `--quiet`).
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Release);
}

pub fn level() -> Level {
    match LEVEL.load(Ordering::Acquire) {
        0 => Level::Error,
        1 => Level::Warn,
        2 => Level::Info,
        _ => Level::Debug,
    }
}

/// Backing implementation of the `obs_*!` logging macros.
pub fn log(lvl: Level, args: std::fmt::Arguments<'_>) {
    let printed = lvl <= level();
    let traced = sink_active();
    if !printed && !traced {
        return;
    }
    let msg = args.to_string();
    if printed {
        match lvl {
            Level::Info => eprintln!("{msg}"),
            other => eprintln!("{}: {msg}", other.name()),
        }
    }
    if traced {
        let mut fields = sink::Fields::new();
        fields.insert("msg".to_string(), serde_json::Value::String(msg));
        emit(&Event::now("log", lvl.name(), fields));
    }
}

#[macro_export]
macro_rules! obs_error {
    ($($arg:tt)*) => { $crate::log($crate::Level::Error, format_args!($($arg)*)) };
}

#[macro_export]
macro_rules! obs_warn {
    ($($arg:tt)*) => { $crate::log($crate::Level::Warn, format_args!($($arg)*)) };
}

#[macro_export]
macro_rules! obs_info {
    ($($arg:tt)*) => { $crate::log($crate::Level::Info, format_args!($($arg)*)) };
}

#[macro_export]
macro_rules! obs_debug {
    ($($arg:tt)*) => { $crate::log($crate::Level::Debug, format_args!($($arg)*)) };
}

// ---------------------------------------------------------------------------
// Per-site metric handles (used by the obs_* macros)
// ---------------------------------------------------------------------------

/// Guard recording elapsed microseconds into a histogram on drop.
pub struct TimeGuard {
    hist: Arc<Histogram>,
    start: Instant,
}

impl Drop for TimeGuard {
    fn drop(&mut self) {
        self.hist
            .record(self.start.elapsed().as_nanos() as f64 / 1_000.0);
    }
}

/// Starts a latency timer, or returns `None` when timing is off — the
/// disabled path costs one atomic load and no clock read.
pub fn timer(name: &'static str, cell: &'static OnceLock<Arc<Histogram>>) -> Option<TimeGuard> {
    if !timing_enabled() {
        return None;
    }
    let hist = cell
        .get_or_init(|| metrics::global().histogram(name))
        .clone();
    Some(TimeGuard {
        hist,
        start: Instant::now(),
    })
}

pub fn counter_handle(
    name: &'static str,
    cell: &'static OnceLock<Arc<Counter>>,
) -> &'static Arc<Counter> {
    cell.get_or_init(|| metrics::global().counter(name))
}

pub fn gauge_handle(
    name: &'static str,
    cell: &'static OnceLock<Arc<Gauge>>,
) -> &'static Arc<Gauge> {
    cell.get_or_init(|| metrics::global().gauge(name))
}

pub fn histogram_handle(
    name: &'static str,
    cell: &'static OnceLock<Arc<Histogram>>,
) -> &'static Arc<Histogram> {
    cell.get_or_init(|| metrics::global().histogram(name))
}

/// Times the enclosing scope into a latency histogram (microseconds):
/// `let _t = obs_time!("estimator.card.latency_us");`
#[macro_export]
macro_rules! obs_time {
    ($name:expr) => {{
        static CELL: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
            ::std::sync::OnceLock::new();
        $crate::timer($name, &CELL)
    }};
}

/// Increments a named counter: `obs_count!("gen.satisfied.count");` or
/// `obs_count!("fsm.tokens.count", n);`
#[macro_export]
macro_rules! obs_count {
    ($name:expr) => {
        $crate::obs_count!($name, 1)
    };
    ($name:expr, $delta:expr) => {{
        static CELL: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
            ::std::sync::OnceLock::new();
        $crate::counter_handle($name, &CELL).inc($delta);
    }};
}

/// Records a value sample into a histogram:
/// `obs_record!("rl.episode.reward", total_reward);`
#[macro_export]
macro_rules! obs_record {
    ($name:expr, $value:expr) => {{
        static CELL: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
            ::std::sync::OnceLock::new();
        $crate::histogram_handle($name, &CELL).record($value as f64);
    }};
}

/// Sets a named gauge: `obs_gauge!("rl.rewards_per_sec", rps);`
#[macro_export]
macro_rules! obs_gauge {
    ($name:expr, $value:expr) => {{
        static CELL: ::std::sync::OnceLock<::std::sync::Arc<$crate::Gauge>> =
            ::std::sync::OnceLock::new();
        $crate::gauge_handle($name, &CELL).set($value as f64);
    }};
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// RAII span: emits a `span` event with duration and full path on drop.
pub struct Span {
    name: &'static str,
    start: Instant,
}

/// Opens a span, or `None` when timing is off. Spans nest per thread; the
/// emitted event's `path` field joins the enclosing span names with `/`.
pub fn span(name: &'static str) -> Option<Span> {
    if !timing_enabled() {
        return None;
    }
    SPAN_STACK.with(|s| s.borrow_mut().push(name));
    Some(Span {
        name,
        start: Instant::now(),
    })
}

impl Drop for Span {
    fn drop(&mut self) {
        let dur_us = self.start.elapsed().as_nanos() as f64 / 1_000.0;
        let (path, depth) = SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let path = stack.join("/");
            let depth = stack.len();
            debug_assert_eq!(stack.last().copied(), Some(self.name), "span stack order");
            stack.pop();
            (path, depth)
        });
        metrics::global()
            .histogram_owned(format!("span.{}.latency_us", self.name))
            .record_silent(dur_us);
        if sink_active() {
            let mut fields = sink::Fields::new();
            fields.insert("dur_us".to_string(), sink::num(dur_us));
            fields.insert("path".to_string(), serde_json::Value::String(path));
            fields.insert("depth".to_string(), sink::num(depth as f64));
            emit(&Event::now("span", self.name, fields));
        }
    }
}

/// Opens a named scope span: `let _s = obs_span!("gen.train");`
#[macro_export]
macro_rules! obs_span {
    ($name:expr) => {
        $crate::span($name)
    };
}
