//! Markdown table printing and CSV output.
//!
//! Lives in `sqlgen-obs` (the dependency leaf) so both the metrics summary
//! and the experiment binaries in `sqlgen-bench` can render through the same
//! type; `sqlgen-bench` re-exports this module unchanged.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A simple column-aligned table.
#[derive(Debug, Clone)]
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Markdown rendering with aligned columns.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n### {}\n", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "{}", fmt_row(&sep, &widths));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.to_markdown());
    }

    /// CSV rendering (headers + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let escaped: Vec<String> = row
                .iter()
                .map(|c| {
                    if c.contains(',') || c.contains('"') {
                        format!("\"{}\"", c.replace('"', "\"\""))
                    } else {
                        c.clone()
                    }
                })
                .collect();
            let _ = writeln!(out, "{}", escaped.join(","));
        }
        out
    }
}

/// Writes a table's CSV under `results/<name>.csv` (creating the dir).
pub fn write_csv(table: &Table, name: &str) {
    let dir = Path::new("results");
    if let Err(e) = fs::create_dir_all(dir) {
        crate::obs_warn!("cannot create results/: {e}");
        return;
    }
    let path = dir.join(format!("{name}.csv"));
    if let Err(e) = fs::write(&path, table.to_csv()) {
        crate::obs_warn!("cannot write {}: {e}", path.display());
    } else {
        crate::obs_info!("wrote {}", path.display());
    }
}

/// Formats a fraction as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

/// Formats seconds compactly.
pub fn secs(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.2}s")
    } else {
        "n/a".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_is_aligned() {
        let mut t = Table::new("T", &["a", "long_header"]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        let md = t.to_markdown();
        assert!(md.contains("| a      | long_header |"));
        assert!(md.contains("| xxxxxx | 1           |"));
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("T", &["a"]);
        t.row(vec!["x,y".into()]);
        assert!(t.to_csv().contains("\"x,y\""));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.5433), "54.33%");
        assert_eq!(secs(1.234), "1.23s");
        assert_eq!(secs(f64::INFINITY), "n/a");
    }
}
