//! Request-scoped tracing: trace ids, span trees and a tail-sampled store.
//!
//! The serving pipeline (`sqlgen-serve`) hands a request across several
//! threads — HTTP worker → admission queue → batcher → lockstep lanes —
//! so the usual thread-local span stack ([`crate::span`]) cannot attribute
//! a single request's latency. This module provides the cross-thread
//! alternative:
//!
//! - [`TraceContext`] — a 128-bit trace id + 64-bit span id, parsed from a
//!   W3C `traceparent`-style header (`00-<32 hex>-<16 hex>-<2 hex>`) or an
//!   inbound `X-Request-Id`, minted fresh otherwise, and echoed back on
//!   every response.
//! - [`RequestTrace`] — a shared (Arc + mutex) span-tree builder every
//!   pipeline stage appends to: explicit `queue_wait` / `batch_gather` /
//!   `lane_exec` phases plus accumulated `estimator` / `refill` /
//!   per-episode timings from inside the lanes.
//! - [`TraceStore`] — a bounded in-memory ring of [`FinishedTrace`]s with
//!   **tail-based sampling**: error responses (status ≥ 400, including
//!   504 deadline expiries) and slowest-decile traces are always retained,
//!   the rest are kept with a small deterministic probability. Backs the
//!   `/debug/traces`, `/debug/traces/<id>` and `/debug/slowest` endpoints.
//!
//! Everything here is std-only and allocation-light: one `Arc` + mutex per
//! traced request, and stages that hold no trace pay a single `Option`
//! check.

use serde_json::{Map, Number, Value};
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Span id of the root (`request`) span in every [`RequestTrace`].
pub const ROOT_SPAN: u64 = 1;

// ---------------------------------------------------------------------------
// Ids and the traceparent header
// ---------------------------------------------------------------------------

/// splitmix64 — the id mixer (also used for sampling decisions).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A propagated trace identity: who this request is, across services.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// 128-bit trace id (the `X-Request-Id`); never zero.
    pub trace_id: u128,
    /// Span id of the caller's span (zero when this process is the root).
    pub parent_span: u64,
}

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

impl TraceContext {
    /// Mints a fresh context: wall-clock nanos mixed with a process-wide
    /// counter, so ids are unique within and across processes in practice.
    pub fn fresh() -> TraceContext {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let seq = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let hi = splitmix64(nanos ^ seq.rotate_left(32));
        let lo = splitmix64(seq.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ nanos);
        let trace_id = ((hi as u128) << 64 | lo as u128).max(1);
        TraceContext {
            trace_id,
            parent_span: 0,
        }
    }

    /// Parses a W3C-style `traceparent` header:
    /// `00-<32 hex trace id>-<16 hex span id>-<2 hex flags>`.
    ///
    /// Strict by design — anything malformed (wrong length, wrong
    /// separators, non-hex including `+`/`-` signs, embedded NUL, all-zero
    /// trace id) yields `None` and the caller mints a fresh context. Never
    /// panics on hostile input (the `trace-header` fuzz family).
    pub fn parse_traceparent(header: &str) -> Option<TraceContext> {
        let b = header.as_bytes();
        if b.len() != 55 {
            return None;
        }
        if b[2] != b'-' || b[35] != b'-' || b[52] != b'-' {
            return None;
        }
        let version = &header[0..2];
        let trace_hex = &header[3..35];
        let span_hex = &header[36..52];
        let flags_hex = &header[53..55];
        for part in [version, trace_hex, span_hex, flags_hex] {
            if !part.bytes().all(|c| c.is_ascii_hexdigit()) {
                return None;
            }
        }
        // Version ff is reserved-invalid per the spec.
        if version.eq_ignore_ascii_case("ff") {
            return None;
        }
        let trace_id = u128::from_str_radix(trace_hex, 16).ok()?;
        let parent_span = u64::from_str_radix(span_hex, 16).ok()?;
        u8::from_str_radix(flags_hex, 16).ok()?;
        if trace_id == 0 {
            return None;
        }
        Some(TraceContext {
            trace_id,
            parent_span,
        })
    }

    /// Parses an `X-Request-Id`-style bare id: exactly 32 lowercase-or-
    /// uppercase hex characters, non-zero.
    pub fn parse_request_id(header: &str) -> Option<u128> {
        let b = header.as_bytes();
        if b.len() != 32 || !b.iter().all(|c| c.is_ascii_hexdigit()) {
            return None;
        }
        match u128::from_str_radix(header, 16) {
            Ok(0) | Err(_) => None,
            Ok(id) => Some(id),
        }
    }

    /// Context from inbound headers: `traceparent` wins, then
    /// `X-Request-Id`, else a fresh id.
    pub fn from_headers(traceparent: Option<&str>, request_id: Option<&str>) -> TraceContext {
        if let Some(ctx) = traceparent.and_then(TraceContext::parse_traceparent) {
            return ctx;
        }
        if let Some(id) = request_id.and_then(TraceContext::parse_request_id) {
            return TraceContext {
                trace_id: id,
                parent_span: 0,
            };
        }
        TraceContext::fresh()
    }

    /// The canonical header echo: `00-<trace>-<span>-01`.
    pub fn render_traceparent(&self) -> String {
        format!("00-{:032x}-{:016x}-01", self.trace_id, self.parent_span)
    }

    /// The `X-Request-Id` echo: the 32-hex trace id.
    pub fn request_id(&self) -> String {
        format!("{:032x}", self.trace_id)
    }
}

/// Whether `s` is a canonical traceparent as this module renders it
/// (well-formed echo check for the fuzz family and tests).
pub fn is_canonical_traceparent(s: &str) -> bool {
    TraceContext::parse_traceparent(s).is_some_and(|ctx| ctx.render_traceparent() == s)
}

// ---------------------------------------------------------------------------
// RequestTrace: the cross-thread span-tree builder
// ---------------------------------------------------------------------------

/// One recorded span. `start_us`/`dur_us` are relative to the trace origin.
#[derive(Debug, Clone)]
pub struct SpanRec {
    pub id: u64,
    pub parent: u64,
    pub name: &'static str,
    pub start_us: f64,
    pub dur_us: f64,
    /// Accumulated phase (summed sub-span time, e.g. `estimator`) rather
    /// than a wall-clock interval.
    pub accum: bool,
}

struct TraceInner {
    endpoint: String,
    spans: Vec<SpanRec>,
    annotations: BTreeMap<String, Value>,
    next_id: u64,
}

/// A live request's span tree, shared across pipeline stages via `Arc`.
///
/// All offsets are measured from `origin` (the moment the request was
/// parsed), so spans recorded on different threads line up on one clock.
pub struct RequestTrace {
    ctx: TraceContext,
    origin: Instant,
    inner: Mutex<TraceInner>,
}

impl RequestTrace {
    /// Opens a trace with its root `request` span.
    pub fn begin(ctx: TraceContext, endpoint: &str) -> Arc<RequestTrace> {
        Arc::new(RequestTrace {
            ctx,
            origin: Instant::now(),
            inner: Mutex::new(TraceInner {
                endpoint: endpoint.to_string(),
                spans: vec![SpanRec {
                    id: ROOT_SPAN,
                    parent: 0,
                    name: "request",
                    start_us: 0.0,
                    dur_us: 0.0,
                    accum: false,
                }],
                annotations: BTreeMap::new(),
                next_id: ROOT_SPAN + 1,
            }),
        })
    }

    pub fn ctx(&self) -> &TraceContext {
        &self.ctx
    }

    /// Offset of `at` from the trace origin, in microseconds (0 for
    /// instants before the origin).
    pub fn offset_us(&self, at: Instant) -> f64 {
        at.saturating_duration_since(self.origin).as_nanos() as f64 / 1_000.0
    }

    /// Records a closed interval span; returns its id.
    pub fn span_between(
        &self,
        name: &'static str,
        parent: u64,
        start: Instant,
        end: Instant,
    ) -> u64 {
        let start_us = self.offset_us(start);
        let dur_us = (self.offset_us(end) - start_us).max(0.0);
        let mut inner = self.inner.lock().expect("trace lock");
        let id = inner.next_id;
        inner.next_id += 1;
        inner.spans.push(SpanRec {
            id,
            parent,
            name,
            start_us,
            dur_us,
            accum: false,
        });
        id
    }

    /// Opens a span whose end is not yet known; close it with
    /// [`RequestTrace::close_span`]. Lets children reference the parent id
    /// while the parent is still running (e.g. `lane_exec`).
    pub fn open_span(&self, name: &'static str, parent: u64, start: Instant) -> u64 {
        let start_us = self.offset_us(start);
        let mut inner = self.inner.lock().expect("trace lock");
        let id = inner.next_id;
        inner.next_id += 1;
        inner.spans.push(SpanRec {
            id,
            parent,
            name,
            start_us,
            dur_us: 0.0,
            accum: false,
        });
        id
    }

    pub fn close_span(&self, id: u64, end: Instant) {
        let end_us = self.offset_us(end);
        let mut inner = self.inner.lock().expect("trace lock");
        if let Some(span) = inner.spans.iter_mut().find(|s| s.id == id) {
            span.dur_us = (end_us - span.start_us).max(0.0);
        }
    }

    /// Adds `dur_us` to the accumulated phase `(name, parent)`, creating it
    /// (anchored at the parent's start) on first use. Accumulated phases
    /// sum scattered sub-intervals — per-token estimator time, per-refill
    /// lane resets — that are too fine-grained to record individually.
    pub fn accum(&self, name: &'static str, parent: u64, dur_us: f64) {
        if !dur_us.is_finite() || dur_us < 0.0 {
            return;
        }
        let mut inner = self.inner.lock().expect("trace lock");
        if let Some(span) = inner
            .spans
            .iter_mut()
            .find(|s| s.accum && s.name == name && s.parent == parent)
        {
            span.dur_us += dur_us;
            return;
        }
        let start_us = inner
            .spans
            .iter()
            .find(|s| s.id == parent)
            .map(|s| s.start_us)
            .unwrap_or(0.0);
        let id = inner.next_id;
        inner.next_id += 1;
        inner.spans.push(SpanRec {
            id,
            parent,
            name,
            start_us,
            dur_us,
            accum: true,
        });
    }

    /// Attaches a string annotation (schema, model label, ...).
    pub fn annotate_str(&self, key: &str, value: &str) {
        let mut inner = self.inner.lock().expect("trace lock");
        inner
            .annotations
            .insert(key.to_string(), Value::String(value.to_string()));
    }

    /// Attaches (or overwrites) a numeric annotation.
    pub fn annotate_num(&self, key: &str, value: f64) {
        let mut inner = self.inner.lock().expect("trace lock");
        inner.annotations.insert(key.to_string(), num_value(value));
    }

    /// Adds `delta` to a numeric annotation (token counts across lanes).
    pub fn annotate_add(&self, key: &str, delta: f64) {
        let mut inner = self.inner.lock().expect("trace lock");
        let cur = inner
            .annotations
            .get(key)
            .and_then(Value::as_f64)
            .unwrap_or(0.0);
        inner
            .annotations
            .insert(key.to_string(), num_value(cur + delta));
    }

    /// Seals the trace: closes the root span at `now` and snapshots the
    /// tree. The `RequestTrace` may keep receiving spans afterwards (late
    /// lanes), but they won't be in this snapshot.
    pub fn finish(&self, status: u16) -> FinishedTrace {
        let dur_us = self.offset_us(Instant::now());
        let inner = self.inner.lock().expect("trace lock");
        let mut spans = inner.spans.clone();
        if let Some(root) = spans.iter_mut().find(|s| s.id == ROOT_SPAN) {
            root.dur_us = dur_us;
        }
        FinishedTrace {
            trace_id: self.ctx.trace_id,
            endpoint: inner.endpoint.clone(),
            status,
            dur_us,
            spans,
            annotations: inner.annotations.clone(),
        }
    }
}

/// A lane-side handle: the trace plus the span id lane work should parent
/// under (the request's `lane_exec` span).
#[derive(Clone)]
pub struct TraceHandle {
    pub trace: Arc<RequestTrace>,
    pub parent: u64,
}

impl std::fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceHandle")
            .field(
                "trace_id",
                &format_args!("{:032x}", self.trace.ctx.trace_id),
            )
            .field("parent", &self.parent)
            .finish()
    }
}

impl TraceHandle {
    pub fn accum(&self, name: &'static str, dur_us: f64) {
        self.trace.accum(name, self.parent, dur_us);
    }

    pub fn span_between(&self, name: &'static str, start: Instant, end: Instant) -> u64 {
        self.trace.span_between(name, self.parent, start, end)
    }
}

// ---------------------------------------------------------------------------
// FinishedTrace
// ---------------------------------------------------------------------------

/// An immutable, completed trace — what the store retains and `/debug`
/// serves.
#[derive(Debug, Clone)]
pub struct FinishedTrace {
    pub trace_id: u128,
    pub endpoint: String,
    pub status: u16,
    pub dur_us: f64,
    pub spans: Vec<SpanRec>,
    pub annotations: BTreeMap<String, Value>,
}

fn num_value(v: f64) -> Value {
    if v.is_finite() {
        Value::Number(Number::Float(v))
    } else {
        Value::Null
    }
}

impl FinishedTrace {
    /// Total duration of the direct children of the root with `name`
    /// (phase rollup for summaries).
    pub fn phase_us(&self, name: &str) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.parent == ROOT_SPAN && s.name == name)
            .map(|s| s.dur_us)
            .sum()
    }

    /// One-line summary object for `/debug/traces` listings.
    pub fn summary_json(&self) -> Value {
        let mut m = Map::new();
        m.insert(
            "id".to_string(),
            Value::String(format!("{:032x}", self.trace_id)),
        );
        m.insert("endpoint".to_string(), Value::String(self.endpoint.clone()));
        m.insert(
            "status".to_string(),
            Value::Number(Number::UInt(self.status as u64)),
        );
        m.insert("dur_us".to_string(), num_value(self.dur_us));
        let mut phases = Map::new();
        for s in &self.spans {
            if s.parent == ROOT_SPAN {
                let e = phases
                    .entry(s.name.to_string())
                    .or_insert(Value::Number(Number::Float(0.0)));
                let cur = e.as_f64().unwrap_or(0.0);
                *e = num_value(cur + s.dur_us);
            }
        }
        m.insert("phases_us".to_string(), Value::Object(phases));
        Value::Object(m)
    }

    /// The full span tree as a JSON value (the `/debug/traces/<id>` body).
    pub fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert(
            "id".to_string(),
            Value::String(format!("{:032x}", self.trace_id)),
        );
        m.insert(
            "traceparent".to_string(),
            Value::String(format!("00-{:032x}-{:016x}-01", self.trace_id, ROOT_SPAN)),
        );
        m.insert("endpoint".to_string(), Value::String(self.endpoint.clone()));
        m.insert(
            "status".to_string(),
            Value::Number(Number::UInt(self.status as u64)),
        );
        m.insert("dur_us".to_string(), num_value(self.dur_us));
        m.insert(
            "annotations".to_string(),
            Value::Object(self.annotations.clone().into_iter().collect()),
        );
        let spans: Vec<Value> = self
            .spans
            .iter()
            .map(|s| {
                let mut sm = Map::new();
                sm.insert("id".to_string(), Value::Number(Number::UInt(s.id)));
                sm.insert("parent".to_string(), Value::Number(Number::UInt(s.parent)));
                sm.insert("name".to_string(), Value::String(s.name.to_string()));
                sm.insert("start_us".to_string(), num_value(s.start_us));
                sm.insert("dur_us".to_string(), num_value(s.dur_us));
                if s.accum {
                    sm.insert("accum".to_string(), Value::Bool(true));
                }
                Value::Object(sm)
            })
            .collect();
        m.insert("spans".to_string(), Value::Array(spans));
        Value::Object(m)
    }
}

// ---------------------------------------------------------------------------
// TraceStore: bounded ring with tail-based sampling
// ---------------------------------------------------------------------------

/// Tail-sampling knobs.
#[derive(Debug, Clone)]
pub struct TraceStoreConfig {
    /// Ring capacity (completed traces kept).
    pub capacity: usize,
    /// Probability (percent) of retaining an ordinary trace.
    pub sample_pct: u64,
    /// Traces at or above this duration quantile are always retained
    /// ("slowest decile" → 0.90).
    pub slow_quantile: f64,
}

impl Default for TraceStoreConfig {
    fn default() -> Self {
        TraceStoreConfig {
            capacity: 512,
            sample_pct: 10,
            slow_quantile: 0.90,
        }
    }
}

struct StoreInner {
    ring: VecDeque<Arc<FinishedTrace>>,
    /// Distribution of *offered* durations — the slow-decile threshold is
    /// computed over everything seen, not just what was retained.
    durations: crate::metrics::Histogram,
    offered: u64,
    retained: u64,
}

/// Bounded in-memory trace ring with tail-based sampling.
///
/// Retention policy, checked at completion time (tail, not head — every
/// request records a trace; the decision is what to *keep*):
///
/// 1. errors (status ≥ 400, so 429/503/504 always resolve at `/debug`),
/// 2. the slowest decile (duration ≥ the p90 of all offered durations),
/// 3. a deterministic `sample_pct`% of everything else (hash of the trace
///    id — reproducible, no RNG state),
/// 4. everything, while fewer than 16 traces have been offered (warm-up,
///    so a fresh server's first requests always resolve).
pub struct TraceStore {
    config: TraceStoreConfig,
    inner: Mutex<StoreInner>,
}

impl TraceStore {
    pub fn new(config: TraceStoreConfig) -> TraceStore {
        TraceStore {
            config,
            inner: Mutex::new(StoreInner {
                ring: VecDeque::new(),
                durations: crate::metrics::Histogram::standalone("trace.dur_us"),
                offered: 0,
                retained: 0,
            }),
        }
    }

    /// Offers a completed trace; returns whether it was retained.
    pub fn offer(&self, trace: FinishedTrace) -> bool {
        let mut inner = self.inner.lock().expect("trace store lock");
        inner.offered += 1;
        inner.durations.record_silent(trace.dur_us);
        let slow = trace.dur_us >= inner.durations.percentile(self.config.slow_quantile);
        let error = trace.status >= 400;
        let id = trace.trace_id;
        let lucky =
            splitmix64((id as u64) ^ ((id >> 64) as u64)) % 100 < self.config.sample_pct.min(100);
        let warmup = inner.offered <= 16;
        let keep = error || slow || lucky || warmup;
        if keep {
            inner.retained += 1;
            inner.ring.push_back(Arc::new(trace));
            while inner.ring.len() > self.config.capacity.max(1) {
                inner.ring.pop_front();
            }
        }
        keep
    }

    pub fn get(&self, trace_id: u128) -> Option<Arc<FinishedTrace>> {
        let inner = self.inner.lock().expect("trace store lock");
        inner
            .ring
            .iter()
            .rev()
            .find(|t| t.trace_id == trace_id)
            .cloned()
    }

    /// Most recent `n` retained traces, newest first.
    pub fn recent(&self, n: usize) -> Vec<Arc<FinishedTrace>> {
        let inner = self.inner.lock().expect("trace store lock");
        inner.ring.iter().rev().take(n).cloned().collect()
    }

    /// Slowest `n` retained traces, slowest first.
    pub fn slowest(&self, n: usize) -> Vec<Arc<FinishedTrace>> {
        let inner = self.inner.lock().expect("trace store lock");
        let mut all: Vec<Arc<FinishedTrace>> = inner.ring.iter().cloned().collect();
        all.sort_by(|a, b| b.dur_us.total_cmp(&a.dur_us));
        all.truncate(n);
        all
    }

    /// `(offered, retained, currently held)`.
    pub fn stats(&self) -> (u64, u64, usize) {
        let inner = self.inner.lock().expect("trace store lock");
        (inner.offered, inner.retained, inner.ring.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_ids_are_unique_and_nonzero() {
        let a = TraceContext::fresh();
        let b = TraceContext::fresh();
        assert_ne!(a.trace_id, 0);
        assert_ne!(a.trace_id, b.trace_id);
    }

    #[test]
    fn traceparent_round_trips() {
        let ctx = TraceContext {
            trace_id: 0x0123_4567_89ab_cdef_0123_4567_89ab_cdef,
            parent_span: 0xfeed_beef_dead_f00d,
        };
        let rendered = ctx.render_traceparent();
        assert!(is_canonical_traceparent(&rendered), "{rendered}");
        let parsed = TraceContext::parse_traceparent(&rendered).unwrap();
        assert_eq!(parsed.trace_id, ctx.trace_id);
        assert_eq!(parsed.parent_span, ctx.parent_span);
    }

    #[test]
    fn hostile_traceparents_are_rejected() {
        for bad in [
            "",
            "00",
            "00-abc",
            // '+' is accepted by from_str_radix but not hex grammar
            "00-+123456789abcdef0123456789abcde-0123456789abcdef-01",
            "00-00000000000000000000000000000000-0123456789abcdef-01", // zero id
            "ff-0123456789abcdef0123456789abcdef-0123456789abcdef-01", // bad version
            "00-0123456789abcdef0123456789abcdeg-0123456789abcdef-01", // non-hex
            "00-0123456789abcdef0123456789abcdef_0123456789abcdef-01", // bad sep
            "00-0123456789abcdef0123456789abcdef-0123456789abcdef-01-extra",
            "00-0123456789abcdef0123456789abcdef-0123456789abcdef-0\u{0}",
        ] {
            assert!(
                TraceContext::parse_traceparent(bad).is_none(),
                "accepted {bad:?}"
            );
        }
    }

    #[test]
    fn request_id_parse_is_strict() {
        let ctx = TraceContext::fresh();
        assert_eq!(
            TraceContext::parse_request_id(&ctx.request_id()),
            Some(ctx.trace_id)
        );
        for bad in ["", "zz", "00000000000000000000000000000000", "12345"] {
            assert!(TraceContext::parse_request_id(bad).is_none(), "{bad:?}");
        }
    }

    #[test]
    fn span_tree_records_phases_and_accums() {
        let t = RequestTrace::begin(TraceContext::fresh(), "generate");
        let t0 = Instant::now();
        let id = t.span_between("queue_wait", ROOT_SPAN, t0, t0);
        assert!(id > ROOT_SPAN);
        let lane = t.open_span("lane_exec", ROOT_SPAN, t0);
        t.accum("estimator", lane, 5.0);
        t.accum("estimator", lane, 7.0);
        t.close_span(lane, Instant::now());
        t.annotate_add("tokens", 3.0);
        t.annotate_add("tokens", 4.0);
        t.annotate_str("schema", "tpch");
        let fin = t.finish(200);
        assert_eq!(fin.status, 200);
        let est: Vec<&SpanRec> = fin.spans.iter().filter(|s| s.name == "estimator").collect();
        assert_eq!(est.len(), 1, "accum spans merge");
        assert!((est[0].dur_us - 12.0).abs() < 1e-9);
        assert_eq!(est[0].parent, lane);
        assert_eq!(
            fin.annotations.get("tokens").and_then(Value::as_f64),
            Some(7.0)
        );
        let json = fin.to_json().to_string();
        assert!(json.contains("queue_wait"), "{json}");
        assert!(json.contains("lane_exec"), "{json}");
    }

    #[test]
    fn store_always_keeps_errors_and_bounds_the_ring() {
        let store = TraceStore::new(TraceStoreConfig {
            capacity: 8,
            sample_pct: 0,
            slow_quantile: 0.90,
        });
        // Saturate warm-up with fast OK traces.
        for i in 0..64u64 {
            let t = RequestTrace::begin(TraceContext::fresh(), "generate").finish(200);
            let _ = store.offer(FinishedTrace {
                dur_us: 1.0 + (i % 3) as f64 * 0.001,
                ..t
            });
        }
        // An error trace is always retained, even when fast.
        let err = RequestTrace::begin(TraceContext::fresh(), "generate").finish(504);
        let err_id = err.trace_id;
        assert!(store.offer(FinishedTrace { dur_us: 0.5, ..err }));
        assert!(store.get(err_id).is_some());
        // A slowest-decile trace is always retained.
        let slow = RequestTrace::begin(TraceContext::fresh(), "generate").finish(200);
        let slow_id = slow.trace_id;
        assert!(store.offer(FinishedTrace {
            dur_us: 1e6,
            ..slow
        }));
        assert!(store.get(slow_id).is_some());
        let (offered, retained, held) = store.stats();
        assert_eq!(offered, 66);
        assert!(retained >= 2);
        assert!(held <= 8, "ring bounded, held {held}");
        assert_eq!(store.slowest(1)[0].trace_id, slow_id);
    }
}
