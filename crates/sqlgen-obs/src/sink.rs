//! Structured events and pluggable sinks.
//!
//! Every instrumentation source — metric updates, span exits, log lines —
//! funnels into [`Event`]s with a fixed envelope: `ts_us` (unix microseconds),
//! `kind` (`count` | `gauge` | `hist` | `span` | `log`), `name` and a flat
//! `fields` object. [`JsonlSink`] writes one JSON object per line in exactly
//! that shape; [`MemorySink`] buffers events for tests.

use serde_json::{Number, Value};
use std::io::{BufWriter, Write};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// Event payload: flat field name → JSON value map.
pub type Fields = serde_json::Map;

/// Converts a float into the tightest JSON number representation.
pub fn num(v: f64) -> Value {
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        Value::Number(Number::Int(v as i64))
    } else {
        Value::Number(Number::Float(v))
    }
}

/// One observability event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    pub ts_us: u64,
    pub kind: String,
    pub name: String,
    pub fields: Fields,
}

impl Event {
    /// Builds an event stamped with the current wall-clock time.
    pub fn now(kind: &str, name: &str, fields: Fields) -> Self {
        let ts_us = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        Event {
            ts_us,
            kind: kind.to_string(),
            name: name.to_string(),
            fields,
        }
    }

    /// Renders the canonical single-line JSON form.
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"ts_us\":");
        out.push_str(&self.ts_us.to_string());
        out.push_str(",\"kind\":");
        serde::json::write_escaped_str(&mut out, &self.kind);
        out.push_str(",\"name\":");
        serde::json::write_escaped_str(&mut out, &self.name);
        out.push_str(",\"fields\":");
        out.push_str(&Value::Object(self.fields.clone()).to_string());
        out.push('}');
        out
    }

    /// Parses a line produced by [`Event::to_json_line`].
    pub fn from_json_line(line: &str) -> Result<Event, serde::Error> {
        let v: Value = serde_json::parse_value(line)?;
        let get = |key: &str| {
            v.get(key)
                .cloned()
                .ok_or_else(|| serde::Error::custom(format!("event missing key {key:?}")))
        };
        let ts_us = get("ts_us")?
            .as_u64()
            .ok_or_else(|| serde::Error::custom("ts_us is not a u64"))?;
        let kind = get("kind")?
            .as_str()
            .ok_or_else(|| serde::Error::custom("kind is not a string"))?
            .to_string();
        let name = get("name")?
            .as_str()
            .ok_or_else(|| serde::Error::custom("name is not a string"))?
            .to_string();
        let fields = match get("fields")? {
            Value::Object(map) => map,
            other => {
                return Err(serde::Error::custom(format!(
                    "fields is not an object: {other}"
                )))
            }
        };
        Ok(Event {
            ts_us,
            kind,
            name,
            fields,
        })
    }
}

/// An event consumer. Implementations must be thread-safe; `emit` is called
/// from whatever thread produced the event.
pub trait Sink: Send + Sync {
    fn emit(&self, event: &Event);
    fn flush(&self) {}
}

/// Buffers events in memory — the test sink.
#[derive(Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// Snapshot of everything captured so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("memory sink").clone()
    }

    pub fn clear(&self) {
        self.events.lock().expect("memory sink").clear();
    }
}

impl Sink for MemorySink {
    fn emit(&self, event: &Event) {
        self.events.lock().expect("memory sink").push(event.clone());
    }
}

/// Appends one JSON object per event to a file.
pub struct JsonlSink {
    writer: Mutex<BufWriter<std::fs::File>>,
}

impl JsonlSink {
    /// Creates (truncates) `path` and returns the sink.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlSink {
            writer: Mutex::new(BufWriter::new(file)),
        })
    }
}

impl Sink for JsonlSink {
    fn emit(&self, event: &Event) {
        let line = event.to_json_line();
        let mut w = self.writer.lock().expect("jsonl sink");
        let _ = writeln!(w, "{line}");
    }

    fn flush(&self) {
        let _ = self.writer.lock().expect("jsonl sink").flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_line_round_trips() {
        let mut fields = Fields::new();
        fields.insert("v".to_string(), num(12.5));
        fields.insert("n".to_string(), num(3.0));
        fields.insert(
            "msg".to_string(),
            Value::String("quote \" backslash \\ λ".to_string()),
        );
        let e = Event {
            ts_us: 1_722_000_000_000_000,
            kind: "hist".to_string(),
            name: "estimator.card.latency_us".to_string(),
            fields,
        };
        let line = e.to_json_line();
        assert!(!line.contains('\n'));
        assert_eq!(Event::from_json_line(&line).unwrap(), e);
    }

    #[test]
    fn num_prefers_integers() {
        assert_eq!(num(3.0).to_string(), "3");
        assert_eq!(num(-41.0).to_string(), "-41");
        assert_eq!(num(2.5).to_string(), "2.5");
    }

    #[test]
    fn malformed_lines_error() {
        assert!(Event::from_json_line("not json").is_err());
        assert!(Event::from_json_line("{\"ts_us\":1}").is_err());
    }
}
