//! Minimal hand-rolled HTTP/1.1: request parsing and response writing.
//!
//! Std-only by design (the build environment has no registry access, so
//! tokio/hyper are out); the server needs exactly the subset implemented
//! here: request line + headers + `Content-Length` bodies, keep-alive, and
//! hard limits that map hostile inputs to typed errors (400/413) instead of
//! panics or unbounded allocation. Chunked transfer encoding is rejected —
//! every client this server cares about sends sized bodies.
//!
//! The parser reads from any [`BufRead`], so the fuzz harness can drive it
//! with raw byte soup without opening sockets.

use std::io::{BufRead, Write};

/// Parser limits. Defaults: 8 KiB of request line + headers, 1 MiB body.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    pub max_head: usize,
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head: 8 * 1024,
            max_body: 1024 * 1024,
        }
    }
}

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    /// Path including any query string, as sent.
    pub path: String,
    /// Whether the connection should stay open after the response
    /// (HTTP/1.1 default unless `Connection: close`; inverted for 1.0).
    pub keep_alive: bool,
    /// Inbound `traceparent` header, verbatim (validated later by the
    /// trace layer, which falls back to a fresh id on garbage).
    pub traceparent: Option<String>,
    /// Inbound `X-Request-Id` header, verbatim.
    pub request_id: Option<String>,
    pub body: Vec<u8>,
}

/// Why a request could not be parsed. `status()` maps the recoverable
/// variants to the response the connection should send before closing.
#[derive(Debug)]
pub enum ParseError {
    /// Clean EOF before any request byte — the keep-alive peer went away.
    Eof,
    /// Connection died mid-request; nothing useful to send.
    Incomplete,
    /// Malformed request → 400.
    BadRequest(&'static str),
    /// Over a parser limit → 413.
    TooLarge(&'static str),
    /// Transport error (including read timeouts) → close.
    Io(std::io::ErrorKind),
}

impl ParseError {
    /// The HTTP status this error maps to, when one should be sent at all.
    pub fn status(&self) -> Option<u16> {
        match self {
            ParseError::BadRequest(_) => Some(400),
            ParseError::TooLarge(_) => Some(413),
            ParseError::Eof | ParseError::Incomplete | ParseError::Io(_) => None,
        }
    }

    pub fn detail(&self) -> &'static str {
        match self {
            ParseError::BadRequest(d) | ParseError::TooLarge(d) => d,
            ParseError::Eof => "eof",
            ParseError::Incomplete => "incomplete",
            ParseError::Io(_) => "io",
        }
    }
}

/// Reads one request from `r`. Bounded: at most `limits.max_head` header
/// bytes and `limits.max_body` body bytes are ever buffered.
pub fn read_request(r: &mut impl BufRead, limits: &Limits) -> Result<Request, ParseError> {
    let mut head_budget = limits.max_head;
    let request_line = match read_line(r, &mut head_budget)? {
        Some(line) => line,
        None => return Err(ParseError::Eof),
    };
    let line = String::from_utf8(request_line)
        .map_err(|_| ParseError::BadRequest("request line is not utf-8"))?;
    let mut parts = line.split(' ').filter(|p| !p.is_empty());
    let method = parts
        .next()
        .ok_or(ParseError::BadRequest("empty request line"))?;
    let path = parts
        .next()
        .ok_or(ParseError::BadRequest("missing request path"))?;
    let version = parts
        .next()
        .ok_or(ParseError::BadRequest("missing http version"))?;
    if parts.next().is_some() {
        return Err(ParseError::BadRequest("trailing tokens in request line"));
    }
    if !method.chars().all(|c| c.is_ascii_uppercase()) {
        return Err(ParseError::BadRequest("bad method"));
    }
    let keep_alive_default = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(ParseError::BadRequest("unsupported http version")),
    };

    let mut keep_alive = keep_alive_default;
    let mut content_length: Option<usize> = None;
    let mut traceparent: Option<String> = None;
    let mut request_id: Option<String> = None;
    loop {
        let line = match read_line(r, &mut head_budget)? {
            Some(line) => line,
            None => return Err(ParseError::Incomplete),
        };
        if line.is_empty() {
            break; // end of headers
        }
        let line =
            String::from_utf8(line).map_err(|_| ParseError::BadRequest("header is not utf-8"))?;
        let (name, value) = line
            .split_once(':')
            .ok_or(ParseError::BadRequest("header without colon"))?;
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                let n: usize = value
                    .parse()
                    .map_err(|_| ParseError::BadRequest("bad content-length"))?;
                if content_length.is_some_and(|prev| prev != n) {
                    return Err(ParseError::BadRequest("conflicting content-length"));
                }
                content_length = Some(n);
            }
            "transfer-encoding" => {
                return Err(ParseError::BadRequest(
                    "transfer-encoding is not supported; send content-length",
                ));
            }
            "connection" => {
                if value.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if value.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            }
            // Propagation headers are carried verbatim; the trace layer
            // validates them (and never trusts their contents).
            "traceparent" => traceparent = Some(value.to_string()),
            "x-request-id" => request_id = Some(value.to_string()),
            _ => {}
        }
    }

    let len = content_length.unwrap_or(0);
    if len > limits.max_body {
        return Err(ParseError::TooLarge("body exceeds limit"));
    }
    let mut body = vec![0u8; len];
    if len > 0 {
        read_exact(r, &mut body)?;
    }
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        keep_alive,
        traceparent,
        request_id,
        body,
    })
}

/// Reads one CRLF- (or bare-LF-) terminated line, without the terminator.
/// `Ok(None)` = EOF before any byte. Decrements `budget`; exceeding it is
/// [`ParseError::TooLarge`].
fn read_line(r: &mut impl BufRead, budget: &mut usize) -> Result<Option<Vec<u8>>, ParseError> {
    let mut line = Vec::new();
    loop {
        let buf = r.fill_buf().map_err(io_err)?;
        if buf.is_empty() {
            if line.is_empty() {
                return Ok(None);
            }
            return Err(ParseError::Incomplete);
        }
        let (chunk, found) = match buf.iter().position(|&b| b == b'\n') {
            Some(i) => (i + 1, true),
            None => (buf.len(), false),
        };
        if chunk > *budget {
            return Err(ParseError::TooLarge("headers exceed limit"));
        }
        *budget -= chunk;
        line.extend_from_slice(&buf[..chunk]);
        r.consume(chunk);
        if found {
            // Strip "\n" and an optional preceding "\r".
            line.pop();
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return Ok(Some(line));
        }
    }
}

fn read_exact(r: &mut impl BufRead, mut out: &mut [u8]) -> Result<(), ParseError> {
    while !out.is_empty() {
        let buf = r.fill_buf().map_err(io_err)?;
        if buf.is_empty() {
            return Err(ParseError::Incomplete);
        }
        let n = buf.len().min(out.len());
        out[..n].copy_from_slice(&buf[..n]);
        r.consume(n);
        out = &mut out[n..];
    }
    Ok(())
}

fn io_err(e: std::io::Error) -> ParseError {
    ParseError::Io(e.kind())
}

/// Outcome of an incremental parse attempt over an accumulation buffer.
#[derive(Debug)]
pub enum BufParse {
    /// One full request parsed; the first `usize` bytes of the buffer were
    /// consumed (drain them before the next attempt).
    Complete(Request, usize),
    /// The buffer holds a prefix of a valid request; read more bytes.
    Partial,
    /// The buffer can never become a valid request (400/413 via
    /// [`ParseError::status`]).
    Error(ParseError),
}

/// Non-blocking front-end to [`read_request`] for the event loop: parses
/// from whatever has been buffered so far. Limits apply exactly as in the
/// blocking path, so a head over `max_head` or a declared body over
/// `max_body` turns into [`BufParse::Error`] even before the peer finishes
/// sending — bounded memory against slowloris-style trickle.
pub fn parse_buf(buf: &[u8], limits: &Limits) -> BufParse {
    let mut cur = std::io::Cursor::new(buf);
    match read_request(&mut cur, limits) {
        Ok(req) => BufParse::Complete(req, cur.position() as usize),
        // EOF in a Cursor just means the rest hasn't arrived yet.
        Err(ParseError::Eof | ParseError::Incomplete) => BufParse::Partial,
        Err(e) => BufParse::Error(e),
    }
}

/// An outgoing response.
#[derive(Debug)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: String,
    /// Extra headers (name, value) — e.g. `Retry-After` on 429.
    pub headers: Vec<(String, String)>,
}

impl Response {
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            body,
            headers: Vec::new(),
        }
    }

    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
            headers: Vec::new(),
        }
    }

    /// JSON `{"error": detail}` with the given status.
    pub fn error(status: u16, detail: &str) -> Self {
        let obj = serde_json::Value::String(detail.to_string());
        Response::json(status, format!("{{\"error\": {obj}}}"))
    }

    pub fn with_header(mut self, name: &str, value: String) -> Self {
        self.headers.push((name.to_string(), value));
        self
    }
}

pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Writes `resp`; `keep_alive: false` adds `Connection: close`.
pub fn write_response(
    w: &mut impl Write,
    resp: &Response,
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n",
        resp.status,
        status_reason(resp.status),
        resp.content_type,
        resp.body.len()
    );
    for (name, value) in &resp.headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    if !keep_alive {
        head.push_str("connection: close\r\n");
    }
    head.push_str("\r\n");
    // One write for head + body: two writes would put them in separate TCP
    // segments, and Nagle + delayed ACK turns that into ~40ms per response.
    head.push_str(&resp.body);
    w.write_all(head.as_bytes())?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(bytes: &[u8]) -> Result<Request, ParseError> {
        read_request(&mut Cursor::new(bytes), &Limits::default())
    }

    #[test]
    fn parses_post_with_body_and_keep_alive() {
        let req =
            parse(b"POST /generate HTTP/1.1\r\ncontent-length: 4\r\nHost: x\r\n\r\nabcd").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/generate");
        assert!(req.keep_alive);
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn captures_propagation_headers_verbatim() {
        let tp = "00-0123456789abcdef0123456789abcdef-0123456789abcdef-01";
        let raw = format!("GET / HTTP/1.1\r\nTraceParent: {tp}\r\nX-Request-ID: deadbeef\r\n\r\n");
        let req = parse(raw.as_bytes()).unwrap();
        assert_eq!(req.traceparent.as_deref(), Some(tp));
        assert_eq!(req.request_id.as_deref(), Some("deadbeef"));
        let req = parse(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.traceparent, None);
        assert_eq!(req.request_id, None);
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let req = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!req.keep_alive);
        let req = parse(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!req.keep_alive);
        let req = parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(req.keep_alive);
    }

    #[test]
    fn malformed_inputs_map_to_400() {
        for bad in [
            &b"GARBAGE\r\n\r\n"[..],
            b"GET /\r\n\r\n",
            b"GET / HTTP/2\r\n\r\n",
            b"get / HTTP/1.1\r\n\r\n",
            b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n",
            b"GET / HTTP/1.1\r\ncontent-length: nan\r\n\r\n",
            b"POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
            b"\xff\xfe / HTTP/1.1\r\n\r\n",
        ] {
            let err = parse(bad).unwrap_err();
            assert_eq!(err.status(), Some(400), "{err:?} for {bad:?}");
        }
    }

    #[test]
    fn oversized_inputs_map_to_413() {
        let mut big_head = b"GET / HTTP/1.1\r\n".to_vec();
        big_head.extend(std::iter::repeat_n(b'x', 10_000));
        assert_eq!(parse(&big_head).unwrap_err().status(), Some(413));

        let huge_body = b"POST / HTTP/1.1\r\ncontent-length: 9999999\r\n\r\n".to_vec();
        assert_eq!(parse(&huge_body).unwrap_err().status(), Some(413));
    }

    #[test]
    fn truncated_inputs_close_without_response() {
        assert!(matches!(parse(b""), Err(ParseError::Eof)));
        for trunc in [
            &b"POST /generate HT"[..],
            b"GET / HTTP/1.1\r\ncontent-le",
            b"POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc",
        ] {
            let err = parse(trunc).unwrap_err();
            assert!(err.status().is_none(), "{err:?}");
        }
    }

    #[test]
    fn response_writer_emits_valid_http() {
        let mut out = Vec::new();
        let resp = Response::json(429, "{}".to_string()).with_header("retry-after", "1".into());
        write_response(&mut out, &resp, false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
