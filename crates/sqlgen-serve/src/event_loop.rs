//! The epoll readiness backend: nonblocking connections on a few event
//! loops instead of a thread per in-flight exchange.
//!
//! Thread layout:
//!
//! ```text
//! acceptor ──inbox+wake──► N event loops ──shard router──► M shard workers
//!     │                        │                                │
//! nonblocking         per-connection state              run_window per
//! listener            machine: read-accumulate          schema group
//!                     → parse → dispatch →              (`shard.rs`)
//!                     buffered write; cache
//!                     hits answered in place
//! ```
//!
//! Each loop owns its connections outright (a slab indexed by the epoll
//! token), so there is no per-connection locking anywhere: other threads
//! talk to a loop only through two mailboxes — new sockets from the
//! acceptor and [`EventReply`] completions from shard workers — both
//! paired with an eventfd wakeup.
//!
//! The per-connection state machine:
//!
//! * **read-accumulate** — level-triggered `EPOLLIN`; bytes append to a
//!   bounded buffer (`max_head + max_body` + slack). At the cap, read
//!   interest is dropped until the parser consumes — backpressure, not
//!   unbounded buffering.
//! * **parse** — [`crate::http::parse_buf`] re-parses the accumulated
//!   prefix; `Partial` waits for more bytes, limit violations answer
//!   400/413 and close. A request that sits incomplete past the read
//!   timeout is a slowloris: the sweep closes it regardless of how
//!   diligently it trickles bytes.
//! * **dispatch** — scrape endpoints answer inline; `/generate` first
//!   consults the schema's result cache (a hit never touches a queue),
//!   then routes to a shard by `(schema, model-version)`. One in-flight
//!   generation per connection, so pipelined requests answer in order.
//! * **buffered write** — responses append to an out buffer flushed as
//!   `EPOLLOUT` allows; a peer that stops reading hits the write-progress
//!   deadline.

#![cfg(target_os = "linux")]

use crate::batcher::{BatcherConfig, GenRequest, GenTask, RequestOutcome, Responder, Schema};
use crate::cache::CacheKey;
use crate::http::{parse_buf, write_response, BufParse, Response};
use crate::queue::PushError;
use crate::server::{endpoint_label, finalize_response, outcome_json, route, ServerState};
use crate::shard::ShardPool;
use crate::sys::{Epoll, EpollEvent, WakeFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use sqlgen_obs::{RequestTrace, TraceContext};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Epoll token reserved for the loop's wakeup eventfd.
const WAKE_TOKEN: u64 = u64::MAX;
/// Epoll wait timeout; also the deadline-sweep granularity.
const TICK_MS: i32 = 25;
/// How long a drain waits for in-flight writes before force-closing.
const DRAIN_GRACE: Duration = Duration::from_secs(2);

/// One loop's cross-thread mailboxes.
pub(crate) struct LoopShared {
    inbox: Mutex<Vec<TcpStream>>,
    completions: Mutex<Vec<Completion>>,
    wake: WakeFd,
    stop: AtomicBool,
}

struct Completion {
    token: usize,
    req_gen: u64,
    outcome: RequestOutcome,
}

/// The event-backend half of [`Responder`]: shard workers deliver a
/// finished outcome to the owning loop's mailbox and wake it. `req_gen`
/// guards against slot reuse — a completion for a connection that timed
/// out or closed is dropped, never written to a stranger.
pub struct EventReply {
    shared: Arc<LoopShared>,
    token: usize,
    req_gen: u64,
}

impl EventReply {
    pub(crate) fn deliver(&self, outcome: RequestOutcome) {
        self.shared
            .completions
            .lock()
            .expect("completion mailbox")
            .push(Completion {
                token: self.token,
                req_gen: self.req_gen,
                outcome,
            });
        self.shared.wake.wake();
    }
}

/// Thread bundle returned by [`start`]; joined by
/// [`crate::server::ServerHandle::shutdown`].
pub(crate) struct EventBackend {
    accept: JoinHandle<()>,
    loops: Vec<Arc<LoopShared>>,
    loop_handles: Vec<JoinHandle<()>>,
    pub(crate) pool: Arc<ShardPool>,
    shard_workers: Vec<JoinHandle<()>>,
}

impl EventBackend {
    /// Drain order matters: acceptor first (no new sockets), then shard
    /// queues close and workers finish (every admitted task delivers its
    /// completion), then the loops stop — they flush those completions
    /// and any buffered writes before exiting.
    pub(crate) fn shutdown(self) {
        let _ = self.accept.join();
        self.pool.close();
        for w in self.shard_workers {
            let _ = w.join();
        }
        for shared in &self.loops {
            shared.stop.store(true, Ordering::SeqCst);
            shared.wake.wake();
        }
        for h in self.loop_handles {
            let _ = h.join();
        }
    }
}

/// Spawns the acceptor, event loops and shard workers. The caller's
/// `accept_stop` flag stops the acceptor (shared with the legacy path).
pub(crate) fn start(
    listener: TcpListener,
    state: Arc<ServerState>,
    accept_stop: Arc<AtomicBool>,
) -> std::io::Result<EventBackend> {
    let cfg = &state.config;
    let pool = Arc::new(ShardPool::new(cfg.shards.max(1), cfg.max_queue));
    let batcher_cfg = BatcherConfig {
        lanes: cfg.batch.max(1),
        max_wait: Duration::from_millis(cfg.max_wait_ms),
        max_batch_jobs: cfg.max_batch_jobs.max(1),
    };
    let shard_workers = pool.spawn_workers(&batcher_cfg, cfg.pin_cpus);

    let nloops = cfg.event_threads.max(1);
    let mut loops = Vec::with_capacity(nloops);
    let mut loop_handles = Vec::with_capacity(nloops);
    for i in 0..nloops {
        let shared = Arc::new(LoopShared {
            inbox: Mutex::new(Vec::new()),
            completions: Mutex::new(Vec::new()),
            wake: WakeFd::new()?,
            stop: AtomicBool::new(false),
        });
        loops.push(shared.clone());
        let state = state.clone();
        let pool = pool.clone();
        loop_handles.push(
            std::thread::Builder::new()
                .name(format!("sqlgen-evloop-{i}"))
                .spawn(move || match EventLoop::new(state, pool, shared) {
                    Ok(el) => el.run(),
                    Err(e) => sqlgen_obs::obs_warn!("[serve] event loop failed to start: {e}"),
                })
                .expect("spawn event loop"),
        );
    }

    let accept_loops = loops.clone();
    let sndbuf = cfg.sndbuf;
    let accept = std::thread::Builder::new()
        .name("sqlgen-accept".to_string())
        .spawn(move || {
            let mut next = 0usize;
            while !accept_stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let _ = stream.set_nodelay(true);
                        let _ = stream.set_nonblocking(true);
                        if let Some(bytes) = sndbuf {
                            let _ = crate::sys::set_send_buffer(stream.as_raw_fd(), bytes);
                        }
                        let target = &accept_loops[next % accept_loops.len()];
                        next = next.wrapping_add(1);
                        target.inbox.lock().expect("accept inbox").push(stream);
                        target.wake.wake();
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(e) => {
                        sqlgen_obs::obs_warn!("[serve] accept error: {e}");
                        std::thread::sleep(Duration::from_millis(20));
                    }
                }
            }
        })
        .expect("spawn acceptor");

    Ok(EventBackend {
        accept,
        loops,
        loop_handles,
        pool,
        shard_workers,
    })
}

/// An in-flight `/generate` awaiting its shard completion.
struct Pending {
    req: GenRequest,
    schema: Arc<Schema>,
    started: Instant,
    reply_deadline: Instant,
    keep_alive: bool,
    trace: Option<Arc<RequestTrace>>,
    ctx: TraceContext,
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    /// Read-accumulate buffer; bounded by the loop's `read_cap`.
    buf: Vec<u8>,
    /// Buffered response bytes not yet accepted by the kernel.
    out: Vec<u8>,
    out_pos: usize,
    pending: Option<Pending>,
    last_activity: Instant,
    last_write_progress: Instant,
    /// When `buf` last went empty → non-empty; a request still incomplete
    /// past the read timeout is treated as a slowloris and closed.
    request_started: Option<Instant>,
    read_closed: bool,
    close_after_write: bool,
    interest: u32,
}

struct EventLoop {
    state: Arc<ServerState>,
    pool: Arc<ShardPool>,
    shared: Arc<LoopShared>,
    epoll: Epoll,
    conns: Vec<Option<Conn>>,
    /// Bumped on dispatch, timeout and close; pairs with
    /// [`EventReply::req_gen`] so stale completions are dropped.
    slot_gen: Vec<u64>,
    free: Vec<usize>,
    read_cap: usize,
    idle_timeout: Duration,
    write_timeout: Duration,
    stopping_since: Option<Instant>,
}

impl EventLoop {
    fn new(
        state: Arc<ServerState>,
        pool: Arc<ShardPool>,
        shared: Arc<LoopShared>,
    ) -> std::io::Result<EventLoop> {
        let epoll = Epoll::new()?;
        epoll.add(shared.wake.fd(), EPOLLIN, WAKE_TOKEN)?;
        let cfg = &state.config;
        let read_cap = cfg.limits.max_head + cfg.limits.max_body + 1024;
        let idle_timeout = Duration::from_millis(cfg.read_timeout_ms.max(1));
        let write_timeout = Duration::from_millis(cfg.write_timeout_ms.max(1));
        Ok(EventLoop {
            state,
            pool,
            shared,
            epoll,
            conns: Vec::new(),
            slot_gen: Vec::new(),
            free: Vec::new(),
            read_cap,
            idle_timeout,
            write_timeout,
            stopping_since: None,
        })
    }

    fn run(mut self) {
        let mut events = vec![EpollEvent { events: 0, data: 0 }; 256];
        let mut scratch = [0u8; 16384];
        loop {
            let n = match self.epoll.wait(&mut events, TICK_MS) {
                Ok(n) => n,
                Err(e) => {
                    sqlgen_obs::obs_warn!("[serve] epoll_wait: {e}");
                    continue;
                }
            };
            let mut woken = false;
            for ev in &events[..n] {
                let token = { ev.data };
                if token == WAKE_TOKEN {
                    woken = true;
                    continue;
                }
                self.handle_io(token as usize, ev.events, &mut scratch);
            }
            if woken {
                self.shared.wake.drain();
            }
            self.drain_inbox();
            self.drain_completions();
            self.sweep_deadlines();
            if self.shared.stop.load(Ordering::SeqCst) && self.drain_for_shutdown() {
                return;
            }
        }
    }

    fn drain_inbox(&mut self) {
        let streams: Vec<TcpStream> =
            std::mem::take(&mut *self.shared.inbox.lock().expect("accept inbox"));
        for stream in streams {
            if self.shared.stop.load(Ordering::SeqCst) {
                continue; // dropped → closed
            }
            self.add_conn(stream);
        }
    }

    fn add_conn(&mut self, stream: TcpStream) {
        let i = match self.free.pop() {
            Some(i) => i,
            None => {
                self.conns.push(None);
                self.slot_gen.push(0);
                self.conns.len() - 1
            }
        };
        let now = Instant::now();
        let interest = EPOLLIN | EPOLLRDHUP;
        if self
            .epoll
            .add(stream.as_raw_fd(), interest, i as u64)
            .is_err()
        {
            self.free.push(i);
            return;
        }
        self.conns[i] = Some(Conn {
            stream,
            buf: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
            pending: None,
            last_activity: now,
            last_write_progress: now,
            request_started: None,
            read_closed: false,
            close_after_write: false,
            interest,
        });
    }

    fn close_conn(&mut self, i: usize) {
        if let Some(conn) = self.conns[i].take() {
            let _ = self.epoll.delete(conn.stream.as_raw_fd());
            self.slot_gen[i] = self.slot_gen[i].wrapping_add(1);
            self.free.push(i);
            // Dropping the stream closes the fd.
        }
    }

    fn handle_io(&mut self, i: usize, flags: u32, scratch: &mut [u8]) {
        if !matches!(self.conns.get(i), Some(Some(_))) {
            return; // stale event for a slot already closed this batch
        }
        if flags & (EPOLLERR | EPOLLHUP) != 0 {
            self.close_conn(i);
            return;
        }
        if flags & EPOLLOUT != 0 {
            self.flush(i);
        }
        if self.conns[i].is_some() && flags & (EPOLLIN | EPOLLRDHUP) != 0 {
            self.read_ready(i, scratch);
        }
        self.update_interest(i);
    }

    fn read_ready(&mut self, i: usize, scratch: &mut [u8]) {
        loop {
            let Some(conn) = self.conns[i].as_mut() else {
                return;
            };
            if conn.buf.len() >= self.read_cap {
                break; // backpressure: parser must consume first
            }
            match conn.stream.read(scratch) {
                Ok(0) => {
                    conn.read_closed = true;
                    break;
                }
                Ok(n) => {
                    if conn.buf.is_empty() && conn.request_started.is_none() {
                        conn.request_started = Some(Instant::now());
                    }
                    conn.buf.extend_from_slice(&scratch[..n]);
                    conn.last_activity = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(i);
                    return;
                }
            }
        }
        self.process_buf(i);
        self.maybe_close_half_open(i);
    }

    /// Parses and dispatches as many complete requests as the buffer holds
    /// — at most one `/generate` in flight per connection, which is what
    /// keeps pipelined responses in request order.
    fn process_buf(&mut self, i: usize) {
        loop {
            let Some(conn) = self.conns[i].as_mut() else {
                return;
            };
            if conn.pending.is_some() || conn.close_after_write {
                return;
            }
            if conn.buf.is_empty() {
                conn.request_started = None;
                return;
            }
            match parse_buf(&conn.buf, &self.state.config.limits) {
                BufParse::Partial => return,
                BufParse::Error(e) => {
                    match e.status() {
                        // Mirror the blocking path: limit/parse errors get
                        // a terse response and the connection closes.
                        Some(status) => {
                            self.queue_response(i, &Response::error(status, e.detail()), false)
                        }
                        None => self.close_conn(i),
                    }
                    return;
                }
                BufParse::Complete(req, consumed) => {
                    conn.buf.drain(..consumed);
                    conn.request_started = if conn.buf.is_empty() {
                        None
                    } else {
                        Some(Instant::now())
                    };
                    self.dispatch(i, req);
                }
            }
        }
    }

    fn dispatch(&mut self, i: usize, req: crate::http::Request) {
        let started = Instant::now();
        let endpoint = endpoint_label(&req.path);
        let ctx = TraceContext::from_headers(req.traceparent.as_deref(), req.request_id.as_deref());
        let trace = (endpoint == "generate").then(|| RequestTrace::begin(ctx, endpoint));
        let keep_alive = req.keep_alive && !self.state.draining.load(Ordering::SeqCst);
        let path = req.path.split('?').next().unwrap_or("");
        if req.method == "POST" && path == "/generate" {
            self.dispatch_generate(i, &req.body, started, ctx, trace, keep_alive);
            return;
        }
        let resp = route(
            &self.state,
            req.method.as_str(),
            &req.path,
            &req.body,
            trace.as_ref(),
        );
        let resp = finalize_response(&self.state, endpoint, started, ctx, trace, resp);
        self.queue_response(i, &resp, keep_alive);
    }

    fn dispatch_generate(
        &mut self,
        i: usize,
        body: &[u8],
        started: Instant,
        ctx: TraceContext,
        trace: Option<Arc<RequestTrace>>,
        keep_alive: bool,
    ) {
        let finish = |el: &mut Self, resp: Response, trace: Option<Arc<RequestTrace>>| {
            let resp = finalize_response(&el.state, "generate", started, ctx, trace, resp);
            el.queue_response(i, &resp, keep_alive);
        };
        let Ok(text) = std::str::from_utf8(body) else {
            return finish(self, Response::error(400, "body is not utf-8"), trace);
        };
        let gr = match GenRequest::from_json(text) {
            Ok(gr) => gr,
            Err(e) => return finish(self, Response::error(400, &e), trace),
        };
        if let Some(tr) = &trace {
            tr.annotate_num("n", gr.n as f64);
            tr.annotate_num("seed", gr.seed as f64);
        }
        let Some(schema) = (if gr.schema.is_empty() {
            self.state.schemas.first().cloned()
        } else {
            self.state
                .schemas
                .iter()
                .find(|s| s.name == gr.schema)
                .cloned()
        }) else {
            let msg = format!("unknown schema {:?}", gr.schema);
            return finish(self, Response::error(404, &msg), trace);
        };

        // Cache hits are answered right here on the event loop — no queue,
        // no shard, no window.
        let key = CacheKey::for_request(&gr, schema.registry.current().version);
        if let Some(cached) = schema.cache.get(&key) {
            if let Some(tr) = &trace {
                tr.annotate_str("cache", "hit");
            }
            return finish(self, Response::json(200, cached.as_ref().clone()), trace);
        }
        if let Some(tr) = &trace {
            tr.annotate_str("cache", "miss");
        }

        let now = Instant::now();
        let cfg = &self.state.config;
        let timeout = Duration::from_millis(gr.timeout_ms.unwrap_or(cfg.default_timeout_ms));
        let deadline = now + timeout;
        // Same grace as the blocking path: gather time + final lockstep
        // iteration after the lanes abort at `deadline`.
        let grace = Duration::from_millis(cfg.max_wait_ms + 2_000);
        self.slot_gen[i] = self.slot_gen[i].wrapping_add(1);
        let task = GenTask {
            req: gr.clone(),
            deadline: Some(deadline),
            enqueued: now,
            reply: Responder::Event(EventReply {
                shared: self.shared.clone(),
                token: i,
                req_gen: self.slot_gen[i],
            }),
            trace: trace.clone(),
        };
        match self.pool.try_push(&schema, task) {
            Err((PushError::Full, _)) => {
                let resp = Response::error(429, "queue full; retry later")
                    .with_header("retry-after", cfg.retry_after_s.to_string());
                finish(self, resp, trace);
            }
            Err((PushError::Closed, _)) => {
                finish(self, Response::error(503, "server is shutting down"), trace);
            }
            Ok(()) => {
                let Some(conn) = self.conns[i].as_mut() else {
                    return;
                };
                conn.pending = Some(Pending {
                    req: gr,
                    schema,
                    started,
                    reply_deadline: deadline + grace,
                    keep_alive,
                    trace,
                    ctx,
                });
            }
        }
    }

    fn drain_completions(&mut self) {
        let comps: Vec<Completion> =
            std::mem::take(&mut *self.shared.completions.lock().expect("completion mailbox"));
        for c in comps {
            let i = c.token;
            if self.slot_gen.get(i).copied() != Some(c.req_gen) {
                continue; // connection closed or request timed out
            }
            let Some(p) = self.conns[i].as_mut().and_then(|conn| conn.pending.take()) else {
                continue;
            };
            let out = c.outcome;
            let resp = if out.queries.is_empty() && out.expired > 0 {
                sqlgen_obs::obs_count!("serve.timeout.count");
                Response::error(504, "deadline expired before any query finished")
            } else {
                let body = outcome_json(&p.schema.name, &p.req, &out);
                // Key on the version that actually ran (a hot swap can
                // land between admission and execution); partially expired
                // responses depend on the wall clock and are never cached.
                if out.expired == 0 {
                    p.schema.cache.put(
                        CacheKey::for_request(&p.req, out.model_version),
                        Arc::new(body.clone()),
                    );
                }
                Response::json(200, body)
            };
            let resp = finalize_response(&self.state, "generate", p.started, p.ctx, p.trace, resp);
            self.queue_response(i, &resp, p.keep_alive);
            // A pipelined follow-up may already be buffered.
            self.process_buf(i);
            self.update_interest(i);
        }
    }

    fn sweep_deadlines(&mut self) {
        let now = Instant::now();
        for i in 0..self.conns.len() {
            let Some(conn) = self.conns[i].as_mut() else {
                continue;
            };
            if let Some(p) = &conn.pending {
                if now >= p.reply_deadline {
                    let p = conn.pending.take().expect("pending just observed");
                    // Invalidate the outstanding EventReply.
                    self.slot_gen[i] = self.slot_gen[i].wrapping_add(1);
                    sqlgen_obs::obs_count!("serve.timeout.count");
                    let resp =
                        Response::error(504, "generation did not finish before the deadline");
                    let resp =
                        finalize_response(&self.state, "generate", p.started, p.ctx, p.trace, resp);
                    self.queue_response(i, &resp, p.keep_alive);
                    self.process_buf(i);
                    self.update_interest(i);
                    continue;
                }
            }
            let Some(conn) = self.conns[i].as_mut() else {
                continue;
            };
            let slow_request = conn.request_started.is_some_and(|t0| {
                conn.pending.is_none() && now.duration_since(t0) > self.idle_timeout
            });
            let idle = conn.pending.is_none()
                && conn.buf.is_empty()
                && conn.out_pos >= conn.out.len()
                && now.duration_since(conn.last_activity) > self.idle_timeout;
            let stuck_write = conn.out_pos < conn.out.len()
                && now.duration_since(conn.last_write_progress) > self.write_timeout;
            if slow_request || idle || stuck_write {
                self.close_conn(i);
            }
        }
    }

    /// Serializes `resp` into the out buffer and flushes what the socket
    /// will take now; the rest waits for `EPOLLOUT`.
    fn queue_response(&mut self, i: usize, resp: &Response, keep_alive: bool) {
        let Some(conn) = self.conns[i].as_mut() else {
            return;
        };
        if write_response(&mut conn.out, resp, keep_alive).is_err() {
            self.close_conn(i);
            return;
        }
        if !keep_alive {
            conn.close_after_write = true;
        }
        conn.last_write_progress = Instant::now();
        self.flush(i);
        self.update_interest(i);
    }

    fn flush(&mut self, i: usize) {
        let mut close = false;
        if let Some(conn) = self.conns[i].as_mut() {
            while conn.out_pos < conn.out.len() {
                match conn.stream.write(&conn.out[conn.out_pos..]) {
                    Ok(0) => {
                        close = true;
                        break;
                    }
                    Ok(n) => {
                        conn.out_pos += n;
                        conn.last_write_progress = Instant::now();
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        close = true;
                        break;
                    }
                }
            }
            if !close && conn.out_pos >= conn.out.len() {
                conn.out.clear();
                conn.out_pos = 0;
                close = conn.close_after_write;
            }
        }
        if close {
            self.close_conn(i);
            return;
        }
        self.maybe_close_half_open(i);
    }

    /// Closes a connection whose peer half-closed and which has nothing
    /// left to do (no pending generation, nothing buffered either way).
    fn maybe_close_half_open(&mut self, i: usize) {
        let close = match self.conns[i].as_ref() {
            Some(c) => {
                c.read_closed && c.pending.is_none() && c.buf.is_empty() && c.out_pos >= c.out.len()
            }
            None => false,
        };
        if close {
            self.close_conn(i);
        }
    }

    fn update_interest(&mut self, i: usize) {
        let Some(conn) = self.conns[i].as_mut() else {
            return;
        };
        let mut want = 0u32;
        if !conn.read_closed && conn.buf.len() < self.read_cap {
            want |= EPOLLIN | EPOLLRDHUP;
        }
        if conn.out_pos < conn.out.len() {
            want |= EPOLLOUT;
        }
        if want != conn.interest {
            conn.interest = want;
            let fd = conn.stream.as_raw_fd();
            let _ = self.epoll.modify(fd, want, i as u64);
        }
    }

    /// Returns true once every connection is gone. Completions were all
    /// delivered before `stop` was set (shard workers join first), so
    /// connections only linger to flush buffered writes — force-closed
    /// after [`DRAIN_GRACE`].
    fn drain_for_shutdown(&mut self) -> bool {
        let since = *self.stopping_since.get_or_insert_with(Instant::now);
        let force = since.elapsed() > DRAIN_GRACE;
        for i in 0..self.conns.len() {
            let close = match self.conns[i].as_ref() {
                Some(c) => force || (c.pending.is_none() && c.out_pos >= c.out.len()),
                None => false,
            };
            if close {
                self.close_conn(i);
            }
        }
        self.conns.iter().all(|c| c.is_none())
    }
}
