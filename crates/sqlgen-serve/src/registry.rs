//! Versioned model registry with hot-swap.
//!
//! The registry serves one schema's policy. It holds the current
//! [`ServedModel`] behind `RwLock<Arc<..>>`: readers (`current()`) clone
//! the `Arc` under a read lock and keep generating on that snapshot while a
//! swap replaces the pointer — in-flight windows finish on the weights they
//! started with.
//!
//! When built with a checkpoint directory, [`ModelRegistry::refresh`] scans
//! it for `*.ckpt` files, orders them by the version number embedded in the
//! file name (trailing integer of the stem: `policy-v12.ckpt` → 12,
//! versionless names → 0) and loads the newest one whose vocabulary matches
//! the schema — so a trainer can publish `policy-v13.ckpt` via the atomic
//! tmp-file + rename writer in `sqlgen-core::checkpoint` and the server
//! picks it up without restarting. Files that fail to parse or validate
//! are skipped (the error is logged; the server keeps serving the old
//! policy).

use sqlgen_core::checkpoint::{read_file, CheckpointError};
use sqlgen_rl::{ActorNet, QuantizedActor};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::SystemTime;

/// An immutable, ready-to-run policy snapshot.
pub struct ServedModel {
    /// File stem the model came from, or `"builtin"` for the bootstrap
    /// policy.
    pub label: String,
    /// Version parsed from the file name (0 when versionless/builtin).
    pub version: u64,
    pub actor: ActorNet,
    /// Int8 snapshot of `actor`, present iff the registry quantizes.
    /// Built at load/publish time (checkpoints always store f32 weights);
    /// generation windows run on it when present.
    pub quant: Option<QuantizedActor>,
}

/// What the last successful load came from, to make `refresh` a no-op when
/// nothing changed on disk.
#[derive(PartialEq, Clone)]
struct LoadedFrom {
    path: PathBuf,
    mtime: Option<SystemTime>,
}

pub struct ModelRegistry {
    dir: Option<PathBuf>,
    vocab_size: usize,
    /// Quantize-at-load: every model installed in this registry carries an
    /// int8 snapshot alongside its f32 weights.
    quantize: bool,
    current: RwLock<Arc<ServedModel>>,
    loaded_from: Mutex<Option<LoadedFrom>>,
    /// Lock-free mirror of `current().version`, so per-request routing
    /// (`ShardPool::try_push`) never touches the `RwLock`.
    version_hint: AtomicU64,
    /// Bumped on every publish. Shard workers cache the `Arc<ServedModel>`
    /// they last read and only re-read `current()` when this moves, so the
    /// steady-state per-window cost is one atomic load instead of a read
    /// lock + `Arc` clone.
    generation: AtomicU64,
}

/// Trailing integer of the file stem: `policy-v12` → 12, `7` → 7, else 0.
fn file_version(stem: &str) -> u64 {
    let digits: String = stem
        .chars()
        .rev()
        .take_while(|c| c.is_ascii_digit())
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    digits.parse().unwrap_or(0)
}

impl ModelRegistry {
    /// A registry pinned to `initial`, optionally watching `dir` for
    /// checkpoint files. With `quantize`, every installed model (including
    /// `initial`) gets an int8 snapshot built from its f32 weights.
    pub fn new(
        mut initial: ServedModel,
        dir: Option<PathBuf>,
        vocab_size: usize,
        quantize: bool,
    ) -> Self {
        initial.quant = quantize.then(|| QuantizedActor::from_actor(&initial.actor));
        sqlgen_obs::obs_gauge!("serve.model.version", initial.version as f64);
        sqlgen_obs::obs_gauge!("serve.model.quantized", if quantize { 1.0 } else { 0.0 });
        let version = initial.version;
        ModelRegistry {
            dir,
            vocab_size,
            quantize,
            version_hint: AtomicU64::new(version),
            generation: AtomicU64::new(0),
            current: RwLock::new(Arc::new(initial)),
            loaded_from: Mutex::new(None),
        }
    }

    /// Whether models in this registry run int8 quantized inference.
    pub fn quantized(&self) -> bool {
        self.quantize
    }

    /// The policy requests should run on right now.
    pub fn current(&self) -> Arc<ServedModel> {
        self.current.read().expect("registry lock").clone()
    }

    /// The current model's version without taking the read lock. Routing
    /// uses this; it may trail `current().version` by one publish for a
    /// moment, which only shifts which shard a racing request lands on —
    /// purity means the response bytes cannot change.
    pub fn version_hint(&self) -> u64 {
        self.version_hint.load(Ordering::Acquire)
    }

    /// Publish counter. Moves exactly when `current()` would return a new
    /// `Arc`; equal generations mean a cached snapshot is still current.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Installs `model` as current (hot-swap). Training loops and tests use
    /// this to publish without going through the filesystem. When the
    /// registry quantizes, the int8 snapshot is (re)built here so published
    /// models never serve stale or missing quantized weights.
    pub fn publish(&self, mut model: ServedModel) {
        model.quant = self
            .quantize
            .then(|| QuantizedActor::from_actor(&model.actor));
        sqlgen_obs::obs_gauge!("serve.model.version", model.version as f64);
        sqlgen_obs::obs_gauge!(
            "serve.model.quantized",
            if model.quant.is_some() { 1.0 } else { 0.0 }
        );
        sqlgen_obs::obs_count!("serve.model.swaps.count");
        let version = model.version;
        *self.current.write().expect("registry lock") = Arc::new(model);
        // Swap first, bump after: a reader that sees the new generation is
        // then guaranteed to read the new pointer, so cached snapshots can
        // go stale-by-one but never stick.
        self.version_hint.store(version, Ordering::Release);
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// Re-scans the checkpoint directory and swaps in the best candidate if
    /// it differs from what is loaded. Returns `Ok(true)` when a swap
    /// happened. Without a directory this is a no-op.
    pub fn refresh(&self) -> Result<bool, CheckpointError> {
        let Some(dir) = &self.dir else {
            return Ok(false);
        };
        let mut candidates = scan_checkpoints(dir)?;
        // Highest version first; name as tie-break so the order is total.
        candidates.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| b.1.cmp(&a.1)));
        let mut last_err: Option<CheckpointError> = None;
        for (version, path) in candidates {
            let mtime = std::fs::metadata(&path).and_then(|m| m.modified()).ok();
            let from = LoadedFrom {
                path: path.clone(),
                mtime,
            };
            if self.loaded_from.lock().expect("loaded_from").as_ref() == Some(&from) {
                return Ok(false); // best candidate is already serving
            }
            match self.load_file(&path, version) {
                Ok(model) => {
                    let label = model.label.clone();
                    self.publish(model);
                    *self.loaded_from.lock().expect("loaded_from") = Some(from);
                    sqlgen_obs::obs_info!("[serve] loaded model {label} v{version}");
                    return Ok(true);
                }
                Err(e) => {
                    sqlgen_obs::obs_warn!("[serve] skipping checkpoint {}: {e}", path.display());
                    last_err = Some(e);
                }
            }
        }
        match last_err {
            // Every candidate was broken — surface the last failure.
            Some(e) => Err(e),
            None => Ok(false),
        }
    }

    fn load_file(&self, path: &Path, version: u64) -> Result<ServedModel, CheckpointError> {
        let ckpt = read_file(path)?;
        if ckpt.actor.vocab_size != self.vocab_size {
            return Err(CheckpointError::VocabMismatch {
                expected: self.vocab_size,
                found: ckpt.actor.vocab_size,
            });
        }
        let label = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "checkpoint".to_string());
        Ok(ServedModel {
            label,
            version,
            actor: ckpt.actor,
            quant: None, // built by `publish`
        })
    }
}

fn scan_checkpoints(dir: &Path) -> Result<Vec<(u64, PathBuf)>, CheckpointError> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.extension().is_some_and(|e| e == "ckpt") {
            let stem = path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default();
            out.push((file_version(&stem), path));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlgen_core::checkpoint::{write_atomic, Checkpoint};
    use sqlgen_rl::NetConfig;

    fn actor(vocab: usize, seed: u64) -> ActorNet {
        ActorNet::new(
            vocab,
            &NetConfig {
                embed_dim: 4,
                hidden: 4,
                layers: 1,
                dropout: 0.0,
            },
            seed,
        )
    }

    fn builtin(vocab: usize) -> ServedModel {
        ServedModel {
            label: "builtin".to_string(),
            version: 0,
            actor: actor(vocab, 1),
            quant: None,
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sqlgen-registry-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn file_version_parses_trailing_digits() {
        assert_eq!(file_version("policy-v12"), 12);
        assert_eq!(file_version("7"), 7);
        assert_eq!(file_version("model"), 0);
        assert_eq!(file_version("v2-final"), 0);
    }

    #[test]
    fn refresh_loads_highest_version_and_is_idempotent() {
        let dir = tmp_dir("load");
        for (name, seed) in [("policy-v1.ckpt", 2u64), ("policy-v3.ckpt", 3)] {
            let text = Checkpoint::legacy(actor(9, seed)).render();
            write_atomic(&dir.join(name), &text).unwrap();
        }
        let reg = ModelRegistry::new(builtin(9), Some(dir.clone()), 9, false);
        assert!(reg.refresh().unwrap());
        assert_eq!(reg.current().version, 3);
        assert_eq!(reg.current().label, "policy-v3");
        assert!(reg.current().quant.is_none());
        // Unchanged directory → no swap.
        assert!(!reg.refresh().unwrap());
        // A newer publish is picked up.
        write_atomic(
            &dir.join("policy-v5.ckpt"),
            &Checkpoint::legacy(actor(9, 9)).render(),
        )
        .unwrap();
        assert!(reg.refresh().unwrap());
        assert_eq!(reg.current().version, 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn refresh_skips_mismatched_and_corrupt_checkpoints() {
        let dir = tmp_dir("skip");
        // v9 has the wrong vocabulary, v8 is garbage — v2 should win.
        write_atomic(
            &dir.join("bad-vocab-v9.ckpt"),
            &Checkpoint::legacy(actor(5, 1)).render(),
        )
        .unwrap();
        write_atomic(&dir.join("corrupt-v8.ckpt"), "not a checkpoint").unwrap();
        write_atomic(
            &dir.join("good-v2.ckpt"),
            &Checkpoint::legacy(actor(9, 4)).render(),
        )
        .unwrap();
        let reg = ModelRegistry::new(builtin(9), Some(dir.clone()), 9, false);
        assert!(reg.refresh().unwrap());
        assert_eq!(reg.current().label, "good-v2");
        // Only broken candidates → typed error, old model keeps serving.
        let reg5 = ModelRegistry::new(builtin(5), Some(dir.clone()), 5, false);
        std::fs::remove_file(dir.join("bad-vocab-v9.ckpt")).unwrap();
        std::fs::remove_file(dir.join("good-v2.ckpt")).unwrap();
        assert!(reg5.refresh().is_err());
        assert_eq!(reg5.current().label, "builtin");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn publish_hot_swaps_under_readers() {
        let reg = ModelRegistry::new(builtin(9), None, 9, false);
        let before = reg.current();
        reg.publish(ServedModel {
            label: "swapped".to_string(),
            version: 7,
            actor: actor(9, 42),
            quant: None,
        });
        // The old snapshot is still usable; new readers see the new model.
        assert_eq!(before.label, "builtin");
        assert_eq!(reg.current().label, "swapped");
        assert_eq!(reg.current().version, 7);
    }

    #[test]
    fn version_hint_and_generation_track_publishes() {
        let reg = ModelRegistry::new(builtin(9), None, 9, false);
        assert_eq!(reg.version_hint(), 0);
        assert_eq!(reg.generation(), 0);
        reg.publish(ServedModel {
            label: "v7".to_string(),
            version: 7,
            actor: actor(9, 42),
            quant: None,
        });
        assert_eq!(reg.version_hint(), 7);
        assert_eq!(reg.generation(), 1);
        assert_eq!(reg.current().version, reg.version_hint());
        reg.publish(ServedModel {
            label: "v9".to_string(),
            version: 9,
            actor: actor(9, 43),
            quant: None,
        });
        assert_eq!(reg.version_hint(), 9);
        assert_eq!(reg.generation(), 2);
    }

    #[test]
    fn quantizing_registry_snapshots_every_installed_model() {
        let dir = tmp_dir("quant");
        write_atomic(
            &dir.join("policy-v4.ckpt"),
            &Checkpoint::legacy(actor(9, 6)).render(),
        )
        .unwrap();
        let reg = ModelRegistry::new(builtin(9), Some(dir.clone()), 9, true);
        assert!(reg.quantized());
        // The bootstrap model is quantized up front...
        assert!(reg.current().quant.is_some());
        // ...and so is every model loaded from disk or published in-process.
        assert!(reg.refresh().unwrap());
        let loaded = reg.current();
        assert_eq!(loaded.label, "policy-v4");
        let q = loaded.quant.as_ref().expect("quantized at load");
        assert_eq!(q.vocab_size, 9);
        reg.publish(ServedModel {
            label: "published".to_string(),
            version: 9,
            actor: actor(9, 42),
            quant: None,
        });
        assert!(reg.current().quant.is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
