//! `sqlgen-serve`: a query-generation service over the batched GEMM
//! inference engine.
//!
//! The server turns [`sqlgen_core::LearnedSqlGen`]-style generation into a
//! multi-tenant HTTP service (DESIGN.md §11):
//!
//! - [`http`] — hand-rolled, std-only HTTP/1.1 parsing and response
//!   writing with hard limits (no tokio/hyper in this build environment).
//! - [`queue`] — bounded admission queue; overflow becomes `429` +
//!   `Retry-After` instead of unbounded buffering.
//! - [`batcher`] — dynamic batching: concurrent requests coalesce into one
//!   lockstep generation window, with per-request deadlines propagated
//!   into the lanes. Responses are bitwise-identical to unbatched
//!   generation for the same seed (the `serve-equivalence` fuzz family).
//! - [`registry`] — versioned checkpoint registry with atomic hot-swap.
//! - [`server`] — thread pool, routing (`/generate`, `/healthz`,
//!   `/metrics`, `/models`, `/models/reload`) and graceful drain-style
//!   shutdown.
//! - [`client`] — minimal client used by tests, the CLI and
//!   `bench_serve`.

pub mod batcher;
pub mod client;
pub mod http;
pub mod queue;
pub mod registry;
pub mod server;

pub use batcher::{
    run_window, BatcherConfig, GenRequest, GenTask, RequestOutcome, Schema, ServedQuery,
    WindowOutcome, WindowRequest, MAX_QUERIES_PER_REQUEST,
};
pub use http::{read_request, write_response, Limits, ParseError, Request, Response};
pub use queue::{BoundedQueue, PushError};
pub use registry::{ModelRegistry, ServedModel};
pub use server::{serve, ServeConfig, ServerHandle};
