//! `sqlgen-serve`: a query-generation service over the batched GEMM
//! inference engine.
//!
//! The server turns [`sqlgen_core::LearnedSqlGen`]-style generation into a
//! multi-tenant HTTP service (DESIGN.md §11):
//!
//! - [`http`] — hand-rolled, std-only HTTP/1.1 parsing and response
//!   writing with hard limits (no tokio/hyper in this build environment).
//! - [`queue`] — bounded admission queue; overflow becomes `429` +
//!   `Retry-After` instead of unbounded buffering.
//! - [`batcher`] — dynamic batching: concurrent requests coalesce into one
//!   lockstep generation window, with per-request deadlines propagated
//!   into the lanes. Responses are bitwise-identical to unbatched
//!   generation for the same seed (the `serve-equivalence` fuzz family).
//! - [`registry`] — versioned checkpoint registry with atomic hot-swap.
//! - [`cache`] — sharded LRU over rendered response bodies, keyed on the
//!   purity tuple `(model-version, schema, seed, constraint, n)`.
//! - [`shard`] — generation shard workers behind a consistent-hash router
//!   on `(schema, model-version)`, with optional CPU pinning.
//! - [`sys`] / [`event_loop`] — Linux-only raw epoll bindings and the
//!   readiness event-loop backend (the default; `--legacy-pool` keeps the
//!   thread pool).
//! - [`server`] — config, routing (`/generate`, `/healthz`, `/metrics`,
//!   `/models`, `/models/reload`), backend selection and graceful
//!   drain-style shutdown.
//! - [`client`] — minimal client used by tests, the CLI and
//!   `bench_serve`.

pub mod batcher;
pub mod cache;
pub mod client;
pub mod event_loop;
pub mod http;
pub mod queue;
pub mod registry;
pub mod server;
pub mod shard;
pub mod sys;

pub use batcher::{
    run_window, run_window_tasks, BatcherConfig, GenRequest, GenTask, RequestOutcome, Responder,
    Schema, ServedQuery, WindowOutcome, WindowRequest, MAX_QUERIES_PER_REQUEST,
};
pub use cache::{CacheKey, ResultCache};
pub use http::{
    parse_buf, read_request, write_response, BufParse, Limits, ParseError, Request, Response,
};
pub use queue::{BoundedQueue, PushError};
pub use registry::{ModelRegistry, ServedModel};
pub use server::{outcome_json, serve, ServeConfig, ServerHandle};
pub use shard::{Shard, ShardPool, ShardTask};
