//! The HTTP server: bounded thread pool, routing, admission control and
//! graceful shutdown.
//!
//! Thread layout (all std threads, no async runtime):
//!
//! ```text
//! accept thread ──channel──► N http workers ──queue──► 1 batcher/schema
//!      │                         │                          │
//!  nonblocking              read_request               run_window on
//!  listener +               route, respond             `batch` lanes
//!  shutdown flag            (blocks on reply)
//! ```
//!
//! Shutdown (`ServerHandle::shutdown`) drains rather than aborts: the
//! listener stops accepting, `/healthz` flips to 503, every schema queue
//! closes (new `/generate` → 503) while already-admitted tasks run to
//! completion, and in-flight HTTP exchanges finish with
//! `Connection: close`.

use crate::batcher::{
    batch_loop, BatcherConfig, GenRequest, GenTask, RequestOutcome, Responder, Schema,
};
use crate::cache::CacheKey;
use crate::http::{read_request, write_response, Limits, Response};
use crate::queue::PushError;
use sqlgen_obs::{Labels, RequestTrace, TraceContext, TraceStore, TraceStoreConfig};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server knobs; the CLI exposes the first four as
/// `--addr --threads --batch --max-queue`.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// HTTP worker threads (connection concurrency).
    pub threads: usize,
    /// Lockstep GEMM lanes per generation window.
    pub batch: usize,
    /// Admission queue capacity per schema; beyond it requests get 429.
    pub max_queue: usize,
    /// How long the batcher waits to coalesce a window.
    pub max_wait_ms: u64,
    /// Episode-count cap per window.
    pub max_batch_jobs: usize,
    /// Socket read timeout (also the idle keep-alive cap).
    pub read_timeout_ms: u64,
    pub write_timeout_ms: u64,
    /// Value of the `Retry-After` header on 429.
    pub retry_after_s: u64,
    /// Generation deadline when the request has no `timeout_ms`.
    pub default_timeout_ms: u64,
    pub limits: Limits,
    /// Completed-trace ring capacity (see [`TraceStoreConfig`]).
    pub trace_capacity: usize,
    /// Percent of ordinary (non-error, non-slow) traces retained.
    pub trace_sample_pct: u64,
    /// Event-loop threads for the readiness backend (`--event-threads`).
    pub event_threads: usize,
    /// Shard workers behind the consistent-hash router (`--shards`).
    pub shards: usize,
    /// Result-cache budget in MiB per schema (`--cache-mb`; 0 disables).
    pub cache_mb: usize,
    /// Pin shard workers to CPUs round-robin (`--pin-cpus`).
    pub pin_cpus: bool,
    /// Run the pre-event-loop thread-pool backend (`--legacy-pool`; also
    /// the fallback on non-Linux hosts, where the epoll layer compiles
    /// out).
    pub legacy_pool: bool,
    /// Kernel send-buffer cap per connection (event backend); `None`
    /// keeps the OS default. Tests shrink it to force partial writes.
    pub sndbuf: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:8080".to_string(),
            threads: 4,
            batch: 8,
            max_queue: 64,
            max_wait_ms: 5,
            max_batch_jobs: 64,
            read_timeout_ms: 5_000,
            write_timeout_ms: 5_000,
            retry_after_s: 1,
            default_timeout_ms: 30_000,
            limits: Limits::default(),
            trace_capacity: 512,
            trace_sample_pct: 10,
            event_threads: 2,
            shards: 1,
            cache_mb: 64,
            pin_cpus: false,
            legacy_pool: false,
            sndbuf: None,
        }
    }
}

pub(crate) struct ServerState {
    pub(crate) schemas: Vec<Arc<Schema>>,
    pub(crate) draining: AtomicBool,
    pub(crate) config: ServeConfig,
    /// Tail-sampled ring of completed request traces (`/debug/traces`).
    pub(crate) traces: Arc<TraceStore>,
}

/// The thread bundle behind a [`ServerHandle`]: blocking worker pool or
/// epoll event loops + shard workers.
pub(crate) enum Backend {
    Legacy {
        accept: JoinHandle<()>,
        http_workers: Vec<JoinHandle<()>>,
        batchers: Vec<JoinHandle<()>>,
    },
    #[cfg(target_os = "linux")]
    Event(crate::event_loop::EventBackend),
}

/// A running server. Dropping the handle leaks the threads; call
/// [`ServerHandle::shutdown`] to drain and join them.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept_stop: Arc<AtomicBool>,
    backend: Backend,
}

impl ServerHandle {
    /// The actual bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Direct handle to a schema (tests and the in-process publish path).
    pub fn schema(&self, name: &str) -> Option<Arc<Schema>> {
        self.state.schemas.iter().find(|s| s.name == name).cloned()
    }

    /// Total admitted-but-unstarted tasks (bench queue-depth sampling):
    /// shard queues on the event backend, per-schema queues on the pool.
    pub fn queue_depth(&self) -> usize {
        match &self.backend {
            Backend::Legacy { .. } => self.state.schemas.iter().map(|s| s.queue.len()).sum(),
            #[cfg(target_os = "linux")]
            Backend::Event(ev) => ev.pool.depth(),
        }
    }

    /// Owned queue-depth sampler: a closure the bench can move into a
    /// monitoring thread while the handle itself stays on the driver
    /// thread. Same accounting as [`ServerHandle::queue_depth`].
    pub fn depth_probe(&self) -> Box<dyn Fn() -> usize + Send + Sync> {
        match &self.backend {
            Backend::Legacy { .. } => {
                let state = self.state.clone();
                Box::new(move || state.schemas.iter().map(|s| s.queue.len()).sum())
            }
            #[cfg(target_os = "linux")]
            Backend::Event(ev) => {
                let pool = ev.pool.clone();
                Box::new(move || pool.depth())
            }
        }
    }

    /// `(hits, misses, evictions)` summed over every schema's result
    /// cache.
    pub fn cache_stats(&self) -> (u64, u64, u64) {
        let mut total = (0, 0, 0);
        for s in &self.state.schemas {
            let (h, m, e) = s.cache.stats();
            total = (total.0 + h, total.1 + m, total.2 + e);
        }
        total
    }

    /// Graceful drain: stop accepting, finish in-flight work, join all
    /// threads.
    pub fn shutdown(self) {
        self.state.draining.store(true, Ordering::SeqCst);
        self.accept_stop.store(true, Ordering::SeqCst);
        match self.backend {
            Backend::Legacy {
                accept,
                http_workers,
                batchers,
            } => {
                for schema in &self.state.schemas {
                    schema.queue.close();
                }
                let _ = accept.join();
                for w in http_workers {
                    let _ = w.join();
                }
                for b in batchers {
                    let _ = b.join();
                }
            }
            #[cfg(target_os = "linux")]
            Backend::Event(ev) => ev.shutdown(),
        }
    }
}

/// Binds, spawns the thread pool and batchers, and returns immediately.
pub fn serve(config: ServeConfig, schemas: Vec<Schema>) -> std::io::Result<ServerHandle> {
    assert!(!schemas.is_empty(), "serve() needs at least one schema");
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let traces = Arc::new(TraceStore::new(TraceStoreConfig {
        capacity: config.trace_capacity.max(1),
        sample_pct: config.trace_sample_pct,
        ..TraceStoreConfig::default()
    }));
    let state = Arc::new(ServerState {
        schemas: schemas.into_iter().map(Arc::new).collect(),
        draining: AtomicBool::new(false),
        config,
        traces,
    });
    for schema in &state.schemas {
        schema.cache.set_budget(state.config.cache_mb * 1024 * 1024);
    }

    let accept_stop = Arc::new(AtomicBool::new(false));

    #[cfg(target_os = "linux")]
    if !state.config.legacy_pool {
        let backend = crate::event_loop::start(listener, state.clone(), accept_stop.clone())?;
        sqlgen_obs::obs_info!(
            "[serve] listening on {addr} (event backend: {} loops, {} shards, cache {} MiB, {} schemas)",
            state.config.event_threads.max(1),
            state.config.shards.max(1),
            state.config.cache_mb,
            state.schemas.len()
        );
        return Ok(ServerHandle {
            addr,
            state,
            accept_stop,
            backend: Backend::Event(backend),
        });
    }

    let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
    let conn_rx = Arc::new(Mutex::new(conn_rx));

    let stop = accept_stop.clone();
    let accept = std::thread::spawn(move || {
        // conn_tx lives here: when this thread exits, workers see the
        // channel disconnect and wind down.
        while !stop.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    if conn_tx.send(stream).is_err() {
                        return;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => {
                    sqlgen_obs::obs_warn!("[serve] accept error: {e}");
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
    });

    let mut http_workers = Vec::new();
    for _ in 0..state.config.threads.max(1) {
        let state = state.clone();
        let rx = conn_rx.clone();
        http_workers.push(std::thread::spawn(move || loop {
            let next = rx.lock().expect("conn receiver").recv();
            match next {
                Ok(stream) => handle_connection(&state, stream),
                Err(_) => return, // accept thread gone and channel drained
            }
        }));
    }

    let mut batchers = Vec::new();
    for schema in &state.schemas {
        let schema = schema.clone();
        let cfg = BatcherConfig {
            lanes: state.config.batch.max(1),
            max_wait: Duration::from_millis(state.config.max_wait_ms),
            max_batch_jobs: state.config.max_batch_jobs.max(1),
        };
        batchers.push(std::thread::spawn(move || batch_loop(&schema, &cfg)));
    }

    sqlgen_obs::obs_info!(
        "[serve] listening on {addr} ({} schemas, {} http workers, batch {})",
        state.schemas.len(),
        state.config.threads.max(1),
        state.config.batch.max(1)
    );
    Ok(ServerHandle {
        addr,
        state,
        accept_stop,
        backend: Backend::Legacy {
            accept,
            http_workers,
            batchers,
        },
    })
}

fn handle_connection(state: &ServerState, stream: TcpStream) {
    let cfg = &state.config;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(cfg.read_timeout_ms.max(1))));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(cfg.write_timeout_ms.max(1))));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        match read_request(&mut reader, &cfg.limits) {
            Ok(req) => {
                let started = Instant::now();
                let endpoint = endpoint_label(&req.path);
                // Trace identity: inbound traceparent/X-Request-Id when
                // valid, fresh otherwise; echoed on every response. Only
                // `/generate` builds (and offers) a full span tree — scrape
                // endpoints would flood the ring with trivial traces.
                let ctx = TraceContext::from_headers(
                    req.traceparent.as_deref(),
                    req.request_id.as_deref(),
                );
                let trace = (endpoint == "generate").then(|| RequestTrace::begin(ctx, endpoint));
                let resp = route(
                    state,
                    req.method.as_str(),
                    &req.path,
                    &req.body,
                    trace.as_ref(),
                );
                let resp = finalize_response(state, endpoint, started, ctx, trace, resp);
                // During a drain every response closes its connection so
                // the worker pool can wind down.
                let keep_alive = req.keep_alive && !state.draining.load(Ordering::SeqCst);
                if write_response(&mut writer, &resp, keep_alive).is_err() || !keep_alive {
                    return;
                }
            }
            Err(e) => {
                if let Some(status) = e.status() {
                    let _ =
                        write_response(&mut writer, &Response::error(status, e.detail()), false);
                }
                return;
            }
        }
    }
}

/// Trace-header echo, trace offer, and per-endpoint request metrics —
/// everything a response needs on its way out, shared by the blocking
/// worker path and the event loop.
pub(crate) fn finalize_response(
    state: &ServerState,
    endpoint: &'static str,
    started: Instant,
    ctx: TraceContext,
    trace: Option<Arc<RequestTrace>>,
    mut resp: Response,
) -> Response {
    // The response's own span is the trace root.
    let echo = TraceContext {
        trace_id: ctx.trace_id,
        parent_span: sqlgen_obs::trace::ROOT_SPAN,
    };
    resp = resp
        .with_header("x-request-id", echo.request_id())
        .with_header("traceparent", echo.render_traceparent());
    if let Some(trace) = trace {
        state.traces.offer(trace.finish(resp.status));
    }
    sqlgen_obs::obs_count!("serve.http.requests.count");
    let labels = Labels::new()
        .with("endpoint", endpoint)
        .with("status", &resp.status.to_string());
    let m = sqlgen_obs::metrics::global();
    m.counter_with("serve.http.requests", &labels).inc(1);
    m.histogram_with("serve.http.latency_us", &labels)
        .record(started.elapsed().as_micros() as f64);
    resp
}

/// Metric label for the per-endpoint latency series.
pub(crate) fn endpoint_label(path: &str) -> &'static str {
    let path = path.split('?').next().unwrap_or("");
    if path.starts_with("/debug/") {
        return "debug";
    }
    match path {
        "/generate" => "generate",
        "/healthz" => "healthz",
        "/metrics" => "metrics",
        "/models" | "/models/reload" => "models",
        _ => "other",
    }
}

pub(crate) fn route(
    state: &ServerState,
    method: &str,
    path: &str,
    body: &[u8],
    trace: Option<&Arc<RequestTrace>>,
) -> Response {
    let path = path.split('?').next().unwrap_or("");
    match (method, path) {
        ("GET", "/healthz") => {
            if state.draining.load(Ordering::SeqCst) {
                Response::json(503, r#"{"status":"draining"}"#.to_string())
            } else {
                Response::json(
                    200,
                    format!(r#"{{"status":"ok","schemas":{}}}"#, state.schemas.len()),
                )
            }
        }
        ("GET", "/metrics") => Response::text(200, sqlgen_obs::metrics::render_text()),
        ("GET", "/models") => Response::json(200, models_json(state)),
        ("GET", "/debug/traces") => {
            Response::json(200, traces_json(&state.traces, state.traces.recent(32)))
        }
        ("GET", "/debug/slowest") => {
            Response::json(200, traces_json(&state.traces, state.traces.slowest(16)))
        }
        ("GET", p) if p.starts_with("/debug/traces/") => {
            let id = p.strip_prefix("/debug/traces/").unwrap_or("");
            match TraceContext::parse_request_id(id) {
                None => Response::error(400, "trace id must be 32 hex characters"),
                Some(id) => match state.traces.get(id) {
                    Some(t) => Response::json(200, t.to_json().to_string()),
                    None => Response::error(404, "trace not found (evicted or not sampled)"),
                },
            }
        }
        ("POST", "/models/reload") => reload(state),
        ("POST", "/generate") => generate(state, body, trace),
        (_, "/healthz" | "/metrics" | "/models" | "/models/reload" | "/generate") => {
            Response::error(405, "method not allowed")
        }
        (_, p) if p.starts_with("/debug/") => Response::error(405, "method not allowed"),
        _ => Response::error(404, "no such endpoint"),
    }
}

/// Summary listing for `/debug/traces` and `/debug/slowest`, with the
/// store's sampling stats alongside.
fn traces_json(store: &TraceStore, traces: Vec<Arc<sqlgen_obs::FinishedTrace>>) -> String {
    let (offered, retained, held) = store.stats();
    let entries: Vec<String> = traces
        .iter()
        .map(|t| t.summary_json().to_string())
        .collect();
    format!(
        r#"{{"offered":{offered},"retained":{retained},"held":{held},"traces":[{}]}}"#,
        entries.join(",")
    )
}

fn models_json(state: &ServerState) -> String {
    let entries: Vec<String> = state
        .schemas
        .iter()
        .map(|s| {
            let m = s.registry.current();
            let (hits, misses, evictions) = s.cache.stats();
            format!(
                r#"{{"name":{},"model":{},"version":{},"quantized":{},"queue_depth":{},"queue_capacity":{},"cache":{{"entries":{},"bytes":{},"hits":{hits},"misses":{misses},"evictions":{evictions}}}}}"#,
                json_str(&s.name),
                json_str(&m.label),
                m.version,
                m.quant.is_some(),
                s.queue.len(),
                s.queue.capacity(),
                s.cache.len(),
                s.cache.bytes()
            )
        })
        .collect();
    format!(r#"{{"schemas":[{}]}}"#, entries.join(","))
}

fn reload(state: &ServerState) -> Response {
    let mut entries = Vec::new();
    for s in &state.schemas {
        let entry = match s.registry.refresh() {
            Ok(swapped) => {
                if swapped {
                    // Version-keyed entries are already unreachable; this
                    // just frees their bytes immediately.
                    s.cache.clear();
                }
                let m = s.registry.current();
                format!(
                    r#"{{"name":{},"swapped":{},"model":{},"version":{}}}"#,
                    json_str(&s.name),
                    swapped,
                    json_str(&m.label),
                    m.version
                )
            }
            Err(e) => format!(
                r#"{{"name":{},"swapped":false,"error":{}}}"#,
                json_str(&s.name),
                json_str(&e.to_string())
            ),
        };
        entries.push(entry);
    }
    Response::json(200, format!(r#"{{"schemas":[{}]}}"#, entries.join(",")))
}

fn generate(state: &ServerState, body: &[u8], trace: Option<&Arc<RequestTrace>>) -> Response {
    let Ok(text) = std::str::from_utf8(body) else {
        return Response::error(400, "body is not utf-8");
    };
    let req = match GenRequest::from_json(text) {
        Ok(req) => req,
        Err(e) => return Response::error(400, &e),
    };
    if let Some(tr) = trace {
        tr.annotate_num("n", req.n as f64);
        tr.annotate_num("seed", req.seed as f64);
    }
    let Some(schema) = (if req.schema.is_empty() {
        state.schemas.first().cloned()
    } else {
        state.schemas.iter().find(|s| s.name == req.schema).cloned()
    }) else {
        return Response::error(404, &format!("unknown schema {:?}", req.schema));
    };

    // Responses are pure functions of (model-version, schema, seed,
    // constraint, n), so a cached body is the same bytes a fresh rollout
    // would produce.
    let key = CacheKey::for_request(&req, schema.registry.current().version);
    if let Some(body) = schema.cache.get(&key) {
        if let Some(tr) = trace {
            tr.annotate_str("cache", "hit");
        }
        return Response::json(200, body.as_ref().clone());
    }
    if let Some(tr) = trace {
        tr.annotate_str("cache", "miss");
    }

    let now = Instant::now();
    // `timeout_ms: 0` is honoured as an already-expired deadline — useful
    // for probing the expiry path deterministically.
    let timeout = Duration::from_millis(req.timeout_ms.unwrap_or(state.config.default_timeout_ms));
    let deadline = now + timeout;
    let (reply_tx, reply_rx) = mpsc::sync_channel(1);
    let task = GenTask {
        req: req.clone(),
        deadline: Some(deadline),
        enqueued: now,
        reply: Responder::Channel(reply_tx),
        trace: trace.cloned(),
    };
    match schema.queue.try_push(task) {
        Err((PushError::Full, _)) => {
            return Response::error(429, "queue full; retry later")
                .with_header("retry-after", state.config.retry_after_s.to_string());
        }
        Err((PushError::Closed, _)) => {
            return Response::error(503, "server is shutting down");
        }
        Ok(()) => {}
    }
    // The batcher aborts expired lanes at `deadline`; the grace term covers
    // window gather time plus the final lockstep iteration.
    let grace = Duration::from_millis(state.config.max_wait_ms + 2_000);
    match reply_rx.recv_timeout(timeout + grace) {
        Ok(out) => {
            if out.queries.is_empty() && out.expired > 0 {
                sqlgen_obs::obs_count!("serve.timeout.count");
                return Response::error(504, "deadline expired before any query finished");
            }
            let body = outcome_json(&schema.name, &req, &out);
            // Only fully-finished responses are pure functions of the key
            // (expiry depends on wall clock); key on the version that
            // actually ran, which can differ from the admission-time
            // version across a hot swap.
            if out.expired == 0 {
                schema.cache.put(
                    CacheKey::for_request(&req, out.model_version),
                    Arc::new(body.clone()),
                );
            }
            Response::json(200, body)
        }
        Err(_) => {
            sqlgen_obs::obs_count!("serve.timeout.count");
            Response::error(504, "generation did not finish before the deadline")
        }
    }
}

/// Renders the `/generate` 200 body. Pub for the cache-equivalence fuzz
/// family, which must compare cached bytes against a fresh rendering.
pub fn outcome_json(schema: &str, req: &GenRequest, out: &RequestOutcome) -> String {
    let queries: Vec<String> = out
        .queries
        .iter()
        .map(|q| {
            format!(
                r#"{{"sql":{},"measured":{},"satisfied":{}}}"#,
                json_str(&q.sql),
                json_num(q.measured),
                q.satisfied
            )
        })
        .collect();
    format!(
        r#"{{"schema":{},"model":{},"model_version":{},"seed":{},"n":{},"expired":{},"queries":[{}]}}"#,
        json_str(schema),
        json_str(&out.model_label),
        out.model_version,
        req.seed,
        req.n,
        out.expired,
        queries.join(",")
    )
}

/// JSON string literal (quoted + escaped) via the vendored serde_json
/// `Value` renderer, so escaping rules live in one place.
fn json_str(s: &str) -> String {
    serde_json::Value::String(s.to_string()).to_string()
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

// Route-level tests drive `route()` directly (no sockets, no batcher), so
// the admission responses are deterministic: the queue is exactly as full
// as the test made it.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::batcher::ServedQuery;
    use sqlgen_core::{Constraint, GenConfig};
    use sqlgen_storage::gen::tpch_database;

    fn test_state(queue_cap: usize) -> ServerState {
        let db = tpch_database(0.05, 2);
        let config = GenConfig::fast().with_seed(11);
        let schema = Schema::build("tpch", &db, &config, None, queue_cap);
        ServerState {
            schemas: vec![Arc::new(schema)],
            draining: AtomicBool::new(false),
            config: ServeConfig::default(),
            traces: Arc::new(TraceStore::new(TraceStoreConfig::default())),
        }
    }

    fn fill_queue(state: &ServerState) -> mpsc::Receiver<RequestOutcome> {
        let schema = &state.schemas[0];
        let (tx, rx) = mpsc::sync_channel(state.config.max_queue);
        while schema.queue.len() < schema.queue.capacity() {
            schema
                .queue
                .try_push(GenTask {
                    req: GenRequest {
                        schema: String::new(),
                        constraint: Constraint::cardinality_point(10.0),
                        n: 1,
                        seed: 0,
                        timeout_ms: None,
                    },
                    deadline: None,
                    enqueued: Instant::now(),
                    reply: Responder::Channel(tx.clone()),
                    trace: None,
                })
                .map_err(|(e, _)| e)
                .unwrap();
        }
        rx
    }

    #[test]
    fn unknown_paths_and_methods_get_404_and_405() {
        let state = test_state(4);
        assert_eq!(route(&state, "GET", "/nope", b"", None).status, 404);
        assert_eq!(route(&state, "DELETE", "/generate", b"", None).status, 405);
        assert_eq!(route(&state, "POST", "/healthz", b"", None).status, 405);
    }

    #[test]
    fn healthz_flips_to_503_while_draining() {
        let state = test_state(4);
        assert_eq!(route(&state, "GET", "/healthz", b"", None).status, 200);
        state.draining.store(true, Ordering::SeqCst);
        let resp = route(&state, "GET", "/healthz", b"", None);
        assert_eq!(resp.status, 503);
        assert!(resp.body.contains("draining"));
    }

    #[test]
    fn generate_validates_body_and_schema() {
        let state = test_state(4);
        assert_eq!(
            route(&state, "POST", "/generate", b"not json", None).status,
            400
        );
        assert_eq!(
            route(&state, "POST", "/generate", &[0xff, 0xfe], None).status,
            400
        );
        let unknown = br#"{"schema":"nope","constraint":{"point":1}}"#;
        assert_eq!(
            route(&state, "POST", "/generate", unknown, None).status,
            404
        );
    }

    #[test]
    fn full_queue_gets_429_with_retry_after() {
        let state = test_state(2);
        let _rx = fill_queue(&state);
        let resp = route(
            &state,
            "POST",
            "/generate",
            br#"{"constraint":{"point":1}}"#,
            None,
        );
        assert_eq!(resp.status, 429);
        assert!(resp
            .headers
            .iter()
            .any(|(name, value)| name == "retry-after" && value == "1"));
    }

    #[test]
    fn closed_queue_gets_503() {
        let state = test_state(4);
        state.schemas[0].queue.close();
        let resp = route(
            &state,
            "POST",
            "/generate",
            br#"{"constraint":{"point":1}}"#,
            None,
        );
        assert_eq!(resp.status, 503);
    }

    #[test]
    fn models_and_metrics_render() {
        let state = test_state(4);
        let models = route(&state, "GET", "/models", b"", None);
        assert_eq!(models.status, 200);
        let v = serde_json::from_str::<serde_json::Value>(&models.body).unwrap();
        let entry = &v.get("schemas").unwrap().as_array().unwrap()[0];
        assert_eq!(entry.get("name").unwrap().as_str(), Some("tpch"));
        assert_eq!(entry.get("model").unwrap().as_str(), Some("builtin"));
        assert_eq!(entry.get("quantized").unwrap().as_bool(), Some(false));
        assert_eq!(route(&state, "GET", "/metrics", b"", None).status, 200);
        assert_eq!(
            route(&state, "POST", "/models/reload", b"", None).status,
            200
        );
    }

    #[test]
    fn outcome_json_escapes_sql() {
        let out = RequestOutcome {
            queries: vec![ServedQuery {
                sql: "SELECT \"x\"".to_string(),
                measured: 12.5,
                satisfied: true,
            }],
            expired: 1,
            model_label: "builtin".to_string(),
            model_version: 3,
        };
        let req = GenRequest {
            schema: String::new(),
            constraint: Constraint::cardinality_point(1.0),
            n: 2,
            seed: 7,
            timeout_ms: None,
        };
        let body = outcome_json("tpch", &req, &out);
        let v = serde_json::from_str::<serde_json::Value>(&body).unwrap();
        assert_eq!(
            v.get("queries").unwrap().as_array().unwrap()[0]
                .get("sql")
                .unwrap()
                .as_str(),
            Some("SELECT \"x\"")
        );
        assert_eq!(v.get("expired").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("model_version").unwrap().as_u64(), Some(3));
    }
}
