//! Tiny std-only HTTP client for tests, the CLI and the load generator.
//!
//! Speaks exactly the dialect the server emits: `HTTP/1.1`, sized bodies,
//! lowercase-insensitive headers. Supports keep-alive so the closed-loop
//! bench measures generation throughput, not connection setup.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A full response: status, headers (names lowercased) and body.
pub struct HttpResponse {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: String,
}

impl HttpResponse {
    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// A keep-alive connection to the server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    pub fn connect(addr: SocketAddr, timeout: Duration) -> std::io::Result<Client> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// Sends one request and reads the full response. Returns
    /// `(status, body)`.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<(u16, String)> {
        let resp = self.request_full(method, path, &[], body)?;
        Ok((resp.status, resp.body))
    }

    /// Like [`Client::request`] but sends `extra_headers` and returns the
    /// response headers too (trace-propagation tests need both sides).
    pub fn request_full(
        &mut self,
        method: &str,
        path: &str,
        extra_headers: &[(&str, &str)],
        body: Option<&str>,
    ) -> std::io::Result<HttpResponse> {
        let body = body.unwrap_or("");
        // Single write per request — separate head/body writes interact
        // badly with Nagle + delayed ACK (~40ms stalls).
        let mut msg = format!("{method} {path} HTTP/1.1\r\nhost: sqlgen\r\n");
        for (name, value) in extra_headers {
            msg.push_str(&format!("{name}: {value}\r\n"));
        }
        msg.push_str(&format!("content-length: {}\r\n\r\n{body}", body.len()));
        self.writer.write_all(msg.as_bytes())?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> std::io::Result<HttpResponse> {
        let status_line = self.read_line()?;
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad_data(format!("bad status line {status_line:?}")))?;
        let mut content_length = 0usize;
        let mut close = false;
        let mut headers = Vec::new();
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            let Some((name, value)) = line.split_once(':') else {
                continue;
            };
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim();
            if name == "content-length" {
                content_length = value
                    .parse()
                    .map_err(|_| bad_data(format!("bad content-length {value:?}")))?;
            } else if name == "connection" && value.eq_ignore_ascii_case("close") {
                close = true;
            }
            headers.push((name, value.to_string()));
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        let body = String::from_utf8(body).map_err(|_| bad_data("body is not utf-8".into()))?;
        if close {
            // The server is done with this connection; surface that as an
            // error on the *next* request, not this one.
            let _ = self.writer.shutdown(std::net::Shutdown::Write);
        }
        Ok(HttpResponse {
            status,
            headers,
            body,
        })
    }

    fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-response",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }
}

/// One-shot request on a fresh connection.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let mut client = Client::connect(addr, Duration::from_secs(60))?;
    client.request(method, path, body)
}

/// One-shot request that also returns response headers.
pub fn request_full(
    addr: SocketAddr,
    method: &str,
    path: &str,
    extra_headers: &[(&str, &str)],
    body: Option<&str>,
) -> std::io::Result<HttpResponse> {
    let mut client = Client::connect(addr, Duration::from_secs(60))?;
    client.request_full(method, path, extra_headers, body)
}

fn bad_data(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}
