//! Bounded admission queue between HTTP workers and the dynamic batcher.
//!
//! Admission control happens at push time: a full queue rejects immediately
//! (the HTTP layer turns that into `429` + `Retry-After`) instead of
//! buffering unbounded work the generation lanes cannot keep up with. The
//! queue-depth gauge `serve.queue.depth` tracks every transition.
//!
//! Shutdown is drain-oriented: after [`BoundedQueue::close`], pushes fail
//! with [`PushError::Closed`] (→ 503) but pops keep returning queued items
//! until the queue is empty — in-flight and already-admitted requests
//! complete, new ones are refused.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// At capacity — back-pressure the client (429).
    Full,
    /// Shutting down — refuse new work (503).
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Blocking bounded MPMC queue (mutex + condvar; std-only).
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    cap: usize,
    /// Per-schema labeled depth gauge (`serve.queue.depth{schema=...}`);
    /// the unlabeled `serve.queue.depth` gauge is still set for
    /// compatibility with existing dashboards.
    depth_gauge: Option<Arc<sqlgen_obs::Gauge>>,
}

impl<T> BoundedQueue<T> {
    pub fn new(cap: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            cap: cap.max(1),
            depth_gauge: None,
        }
    }

    /// A queue whose depth is also tracked per-schema in the labeled
    /// `serve.queue.depth` family.
    pub fn named(cap: usize, schema: &str) -> Self {
        let labels = sqlgen_obs::Labels::new().with("schema", schema);
        let gauge = sqlgen_obs::metrics::global().gauge_with("serve.queue.depth", &labels);
        BoundedQueue {
            depth_gauge: Some(gauge),
            ..Self::new(cap)
        }
    }

    fn set_depth(&self, depth: usize) {
        sqlgen_obs::obs_gauge!("serve.queue.depth", depth as f64);
        if let Some(g) = &self.depth_gauge {
            g.set(depth as f64);
        }
    }

    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Non-blocking admission; hands the item back on refusal so the caller
    /// can still answer the request it carries.
    pub fn try_push(&self, item: T) -> Result<(), (PushError, T)> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed {
            return Err((PushError::Closed, item));
        }
        if inner.items.len() >= self.cap {
            sqlgen_obs::obs_count!("serve.rejected.count");
            return Err((PushError::Full, item));
        }
        inner.items.push_back(item);
        self.set_depth(inner.items.len());
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Pops, waiting up to `timeout`. Returns `None` on timeout, or — once
    /// closed — immediately when empty (queued items still drain first).
    pub fn pop_timeout(&self, timeout: Duration) -> Option<T> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(item) = inner.items.pop_front() {
                self.set_depth(inner.items.len());
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .not_empty
                .wait_timeout(inner, deadline - now)
                .expect("queue lock");
            inner = guard;
        }
    }

    /// Non-blocking pop — the batcher's gather loop uses this to top up a
    /// window without waiting once the first request is in hand.
    pub fn try_pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        let item = inner.items.pop_front();
        if item.is_some() {
            self.set_depth(inner.items.len());
        }
        item
    }

    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock").items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn is_closed(&self) -> bool {
        self.inner.lock().expect("queue lock").closed
    }

    /// Stops admission; wakes all waiting poppers so they can drain and
    /// exit.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_fifo_and_capacity() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        let (err, item) = q.try_push(3).unwrap_err();
        assert_eq!((err, item), (PushError::Full, 3));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(1));
        assert_eq!(q.try_pop(), Some(2));
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn close_refuses_pushes_but_drains_pops() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.try_push(2).unwrap_err().0, PushError::Closed);
        // Drain continues after close...
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Some(1));
        // ...and an empty closed queue returns immediately, not on timeout.
        let start = Instant::now();
        assert_eq!(q.pop_timeout(Duration::from_secs(5)), None);
        assert!(start.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn pop_wakes_on_cross_thread_push() {
        let q = std::sync::Arc::new(BoundedQueue::new(4));
        let q2 = q.clone();
        let t = std::thread::spawn(move || q2.pop_timeout(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        q.try_push(7).unwrap();
        assert_eq!(t.join().unwrap(), Some(7));
    }
}
