//! Sharded generation workers behind the event loop.
//!
//! The legacy pool runs one batcher thread per schema, so co-tenant
//! schemas all contend on their own single thread and a hot schema cannot
//! scale past it. The shard pool decouples workers from schemas: `N`
//! identical workers each own a bounded queue, and a consistent-hash ring
//! over `(schema, model-version)` routes every request to one shard. The
//! ring gives two properties the north-star multi-tenant deployment needs:
//!
//! * **Stability** — a `(schema, version)` pair always lands on the same
//!   shard, so its requests coalesce into shared windows instead of
//!   spraying across workers (window batching is what makes the GEMM
//!   lanes pay off).
//! * **Smooth rebalance** — adding a shard moves only `~1/N` of the keys,
//!   because each shard projects `VNODES` points onto the ring rather
//!   than one.
//!
//! Workers optionally pin to CPUs round-robin (`--pin-cpus`,
//! `sched_setaffinity`) so shard cache state stays core-local on
//! multi-core hosts. Purity makes all of this invisible in responses:
//! which shard (or window) runs a request cannot change its bytes.

use crate::batcher::{run_window_tasks_with_model, BatcherConfig, GenTask, Schema};
use crate::queue::{BoundedQueue, PushError};
use crate::registry::ServedModel;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Virtual nodes per shard on the hash ring.
const VNODES: usize = 40;

/// A task routed to a shard: the shard worker needs the schema bundle
/// alongside the request because one shard serves many schemas.
pub struct ShardTask {
    pub schema: Arc<Schema>,
    pub task: GenTask,
}

/// One shard worker's admission queue.
pub struct Shard {
    pub queue: BoundedQueue<ShardTask>,
}

/// FNV-1a 64-bit; stable across runs and platforms, which keeps routing
/// deterministic (the default `DefaultHasher` makes no such promise).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The shard workers plus the consistent-hash ring that routes to them.
pub struct ShardPool {
    shards: Vec<Arc<Shard>>,
    /// `(ring position, shard index)` sorted by position.
    ring: Vec<(u64, usize)>,
}

impl ShardPool {
    pub fn new(n: usize, queue_cap: usize) -> ShardPool {
        let n = n.max(1);
        let shards: Vec<Arc<Shard>> = (0..n)
            .map(|i| {
                Arc::new(Shard {
                    queue: BoundedQueue::named(queue_cap, &format!("shard{i}")),
                })
            })
            .collect();
        let mut ring = Vec::with_capacity(n * VNODES);
        for (i, _) in shards.iter().enumerate() {
            for v in 0..VNODES {
                ring.push((fnv1a64(format!("shard/{i}/{v}").as_bytes()), i));
            }
        }
        ring.sort_unstable();
        ShardPool { shards, ring }
    }

    pub fn len(&self) -> usize {
        self.shards.len()
    }

    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Routes `(schema, model-version)` to its shard: first ring point at
    /// or after the key's hash, wrapping at the top.
    pub fn shard_for(&self, schema: &str, model_version: u64) -> &Arc<Shard> {
        let mut key = Vec::with_capacity(schema.len() + 9);
        key.extend_from_slice(schema.as_bytes());
        key.push(0);
        key.extend_from_slice(&model_version.to_le_bytes());
        let h = fnv1a64(&key);
        let idx = match self.ring.binary_search(&(h, usize::MAX)) {
            Ok(i) | Err(i) => i % self.ring.len(),
        };
        &self.shards[self.ring[idx].1]
    }

    /// Non-blocking admission to the routed shard. The rejected task rides
    /// back in the `Err` so the caller can answer 429/503 on its reply
    /// channel — worth the large variant. Routing keys on the registry's
    /// lock-free version hint, so admission never contends with a
    /// mid-publish writer holding the registry `RwLock`.
    #[allow(clippy::result_large_err)]
    pub fn try_push(
        &self,
        schema: &Arc<Schema>,
        task: GenTask,
    ) -> Result<(), (PushError, GenTask)> {
        self.shard_for(&schema.name, schema.registry.version_hint())
            .queue
            .try_push(ShardTask {
                schema: schema.clone(),
                task,
            })
            .map_err(|(e, st)| (e, st.task))
    }

    /// Spawns the worker threads. With `pin_cpus`, worker `i` pins to CPU
    /// `i % available_parallelism` — failure is a warning, not an error
    /// (cgroup masks can forbid it).
    pub fn spawn_workers(&self, cfg: &BatcherConfig, pin_cpus: bool) -> Vec<JoinHandle<()>> {
        let ncpus = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        self.shards
            .iter()
            .enumerate()
            .map(|(i, shard)| {
                let shard = shard.clone();
                let cfg = cfg.clone();
                std::thread::Builder::new()
                    .name(format!("sqlgen-shard-{i}"))
                    .spawn(move || {
                        if pin_cpus {
                            #[cfg(target_os = "linux")]
                            if let Err(e) = crate::sys::pin_current_thread(i % ncpus) {
                                sqlgen_obs::obs_warn!("[serve] shard {i}: cpu pinning failed: {e}");
                            }
                            #[cfg(not(target_os = "linux"))]
                            let _ = ncpus;
                        }
                        shard_loop(&shard, &cfg);
                    })
                    .expect("spawn shard worker")
            })
            .collect()
    }

    /// Total queued tasks across all shards (bench queue-depth sampling).
    pub fn depth(&self) -> usize {
        self.shards.iter().map(|s| s.queue.len()).sum()
    }

    /// Stops admission on every shard; queued work still drains.
    pub fn close(&self) {
        for s in &self.shards {
            s.queue.close();
        }
    }
}

/// Shard worker body: gather a window, group the gathered tasks by schema
/// preserving arrival order, and run one window per schema group. Runs
/// until the shard's queue is closed and drained.
///
/// Gather policy: drain whatever is already queued without waiting, and
/// keep waiting (bounded by `max_wait`) only while the window holds fewer
/// jobs than one GEMM lane width. Closed-loop bursts arrive together and
/// fill the window on the first drain, so they never pay the wait; smooth
/// open-loop arrivals would otherwise each get a private window and pay
/// the full per-window fixed cost (env + lane-state setup), capping
/// throughput far below the batched capacity.
/// Shard-local model snapshots: one `(schema, generation, model)` entry
/// per schema this worker has served. Between windows the worker refreshes
/// the registry (disk scan, between windows only — never mid-window) and
/// re-reads `current()` only when the publish generation moved, so the
/// steady-state per-window registry cost is one atomic load instead of a
/// `RwLock` read + `Arc` clone per window. Bounded by the number of live
/// schemas, which the server fixes at startup.
struct ModelCache {
    entries: Vec<(Arc<Schema>, u64, Arc<ServedModel>)>,
}

impl ModelCache {
    fn new() -> ModelCache {
        ModelCache {
            entries: Vec::new(),
        }
    }

    /// The model the next window on `schema` should run. Refreshes the
    /// registry from disk first (a successful swap invalidates the result
    /// cache, exactly as `run_window_tasks` does on the legacy path).
    fn model_for(&mut self, schema: &Arc<Schema>) -> Arc<ServedModel> {
        if let Ok(true) = schema.registry.refresh() {
            schema.cache.clear();
        }
        let generation = schema.registry.generation();
        match self
            .entries
            .iter_mut()
            .find(|(s, _, _)| Arc::ptr_eq(s, schema))
        {
            Some(entry) => {
                if entry.1 != generation {
                    entry.1 = generation;
                    entry.2 = schema.registry.current();
                }
                entry.2.clone()
            }
            None => {
                let model = schema.registry.current();
                self.entries
                    .push((schema.clone(), generation, model.clone()));
                model
            }
        }
    }
}

fn shard_loop(shard: &Shard, cfg: &BatcherConfig) {
    let mut models = ModelCache::new();
    loop {
        let Some(first) = shard.queue.pop_timeout(Duration::from_millis(50)) else {
            if shard.queue.is_closed() && shard.queue.is_empty() {
                return;
            }
            continue;
        };
        let gather_deadline = Instant::now() + cfg.max_wait;
        let mut gathered = vec![(first, Instant::now())];
        let mut job_count = gathered[0].0.task.req.n;
        while job_count < cfg.max_batch_jobs {
            match shard.queue.try_pop() {
                Some(t) => {
                    job_count += t.task.req.n;
                    gathered.push((t, Instant::now()));
                }
                None => {
                    if job_count >= cfg.lanes {
                        break;
                    }
                    let now = Instant::now();
                    if now >= gather_deadline {
                        break;
                    }
                    match shard.queue.pop_timeout(gather_deadline - now) {
                        Some(t) => {
                            job_count += t.task.req.n;
                            gathered.push((t, Instant::now()));
                        }
                        None => break,
                    }
                }
            }
        }
        // Group by schema, first-seen order. Purity means the grouping
        // cannot change any response; it only decides window composition.
        type SchemaGroup = (Arc<Schema>, Vec<(GenTask, Instant)>);
        let mut groups: Vec<SchemaGroup> = Vec::new();
        for (st, popped) in gathered {
            match groups.iter_mut().find(|(s, _)| Arc::ptr_eq(s, &st.schema)) {
                Some((_, tasks)) => tasks.push((st.task, popped)),
                None => groups.push((st.schema, vec![(st.task, popped)])),
            }
        }
        for (schema, tasks) in groups {
            let model = models.model_for(&schema);
            run_window_tasks_with_model(&schema, &model, tasks, cfg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_version_sensitive() {
        let pool = ShardPool::new(4, 8);
        let a1 = Arc::as_ptr(pool.shard_for("tpch", 1));
        let a2 = Arc::as_ptr(pool.shard_for("tpch", 1));
        assert_eq!(a1, a2, "same key must route to the same shard");
        // Across many (schema, version) keys, more than one shard is used.
        let mut seen = std::collections::HashSet::new();
        for v in 0..32u64 {
            seen.insert(Arc::as_ptr(pool.shard_for("tpch", v)));
            seen.insert(Arc::as_ptr(pool.shard_for("imdb", v)));
        }
        assert!(seen.len() > 1, "keys should spread across shards");
    }

    #[test]
    fn ring_growth_moves_only_a_fraction_of_keys() {
        let small = ShardPool::new(4, 8);
        let large = ShardPool::new(5, 8);
        let keys: Vec<String> = (0..400).map(|i| format!("schema-{i}")).collect();
        let moved = keys
            .iter()
            .filter(|k| ring_index(&small, k) != ring_index(&large, k))
            .count();
        // Consistent hashing: going 4 → 5 shards should move roughly 1/5
        // of keys, not most of them. Allow generous slack.
        assert!(moved < keys.len() / 2, "moved {moved} of {}", keys.len());
    }

    #[test]
    fn shard_model_cache_reuses_snapshots_until_publish() {
        let db = sqlgen_storage::gen::tpch_database(0.05, 2);
        let config = sqlgen_core::GenConfig::fast().with_seed(11);
        let schema = Arc::new(Schema::build("t", &db, &config, None, 8));
        let mut cache = ModelCache::new();
        let a = cache.model_for(&schema);
        let b = cache.model_for(&schema);
        assert!(
            Arc::ptr_eq(&a, &b),
            "no publish between windows → cached Arc is reused"
        );
        schema.publish_actor("trained", 3, a.actor.clone());
        let c = cache.model_for(&schema);
        assert!(
            !Arc::ptr_eq(&b, &c),
            "a publish must invalidate the cached snapshot"
        );
        assert_eq!(c.version, 3);
        assert_eq!(c.label, "trained");
    }

    fn ring_index(pool: &ShardPool, schema: &str) -> usize {
        let shard = pool.shard_for(schema, 0);
        pool.shards
            .iter()
            .position(|s| Arc::ptr_eq(s, shard))
            .unwrap()
    }
}
