//! Thin raw-syscall layer for the event-driven serving core.
//!
//! The build environment has no registry access, so `libc`/`mio` are out;
//! the handful of Linux primitives the readiness loop needs — `epoll`,
//! `eventfd`, `setsockopt`, `sched_setaffinity` — are declared here as
//! `extern "C"` bindings against the C library every Rust binary on this
//! target already links. Everything is wrapped in small RAII types so the
//! rest of the crate never touches a raw fd. Non-Linux builds compile this
//! module out and [`crate::server::serve`] falls back to the thread-pool
//! backend.

#![cfg(target_os = "linux")]

use std::io;
use std::os::unix::io::RawFd;

#[allow(non_camel_case_types)]
type c_int = i32;
#[allow(non_camel_case_types)]
type c_uint = u32;

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLL_CLOEXEC: c_int = 0o2000000;
const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;
const SOL_SOCKET: c_int = 1;
const SO_SNDBUF: c_int = 7;
const SO_RCVBUF: c_int = 8;

/// `struct epoll_event`; packed on x86-64 (the kernel ABI), naturally
/// aligned elsewhere.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
    fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
    fn setsockopt(
        fd: c_int,
        level: c_int,
        optname: c_int,
        optval: *const c_int,
        optlen: u32,
    ) -> c_int;
    fn sched_setaffinity(pid: c_int, cpusetsize: usize, mask: *const u64) -> c_int;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An epoll instance (closed on drop).
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    pub fn new() -> io::Result<Epoll> {
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        cvt(unsafe { epoll_ctl(self.fd, op, fd, &mut ev) }).map(|_| ())
    }

    /// Registers `fd` with level-triggered interest.
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Changes the interest set for an already-registered `fd`.
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        // The event pointer is ignored for DEL on every kernel we target.
        cvt(unsafe { epoll_ctl(self.fd, EPOLL_CTL_DEL, fd, std::ptr::null_mut()) }).map(|_| ())
    }

    /// Waits up to `timeout_ms` (-1 = forever), filling `events`. Returns
    /// the number of ready entries; EINTR is retried internally.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            let n = unsafe {
                epoll_wait(
                    self.fd,
                    events.as_mut_ptr(),
                    events.len() as c_int,
                    timeout_ms,
                )
            };
            if n >= 0 {
                return Ok(n as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

/// A nonblocking eventfd used to wake an event loop from other threads
/// (new connections, generation completions, shutdown).
pub struct WakeFd {
    fd: RawFd,
}

impl WakeFd {
    pub fn new() -> io::Result<WakeFd> {
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(WakeFd { fd })
    }

    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Posts a wakeup; safe from any thread, never blocks (a full counter
    /// just means a wakeup is already pending).
    pub fn wake(&self) {
        let one: u64 = 1;
        unsafe { write(self.fd, (&one as *const u64).cast(), 8) };
    }

    /// Drains pending wakeups (nonblocking read of the counter).
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        unsafe { read(self.fd, buf.as_mut_ptr(), 8) };
    }
}

impl Drop for WakeFd {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

/// Caps a socket's kernel send buffer (the kernel doubles the value and
/// enforces a floor, so tiny requests still land at a few KiB). Used to
/// bound per-connection memory and, in tests, to force partial writes.
pub fn set_send_buffer(fd: RawFd, bytes: usize) -> io::Result<()> {
    let v = bytes as c_int;
    cvt(unsafe { setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &v, 4) }).map(|_| ())
}

/// Caps a socket's kernel receive buffer.
pub fn set_recv_buffer(fd: RawFd, bytes: usize) -> io::Result<()> {
    let v = bytes as c_int;
    cvt(unsafe { setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &v, 4) }).map(|_| ())
}

/// Pins the calling thread to one CPU (`sched_setaffinity` on tid 0).
/// Returns an error when the CPU does not exist or the mask is refused;
/// callers treat that as a warning, not a failure.
pub fn pin_current_thread(cpu: usize) -> io::Result<()> {
    let mut mask = [0u64; 16]; // up to 1024 CPUs
    let word = cpu / 64;
    if word >= mask.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "cpu index out of range",
        ));
    }
    mask[word] = 1u64 << (cpu % 64);
    cvt(unsafe { sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) }).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::os::unix::io::AsRawFd;

    #[test]
    fn epoll_reports_readable_socket() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = std::net::TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let ep = Epoll::new().unwrap();
        ep.add(server_side.as_raw_fd(), EPOLLIN | EPOLLRDHUP, 7)
            .unwrap();
        let mut events = [EpollEvent { events: 0, data: 0 }; 8];
        // Nothing to read yet.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
        client.write_all(b"ping").unwrap();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let ev = events[0];
        assert_eq!({ ev.data }, 7);
        assert_ne!({ ev.events } & EPOLLIN, 0);
        ep.delete(server_side.as_raw_fd()).unwrap();
    }

    #[test]
    fn wakefd_wakes_and_drains() {
        let ep = Epoll::new().unwrap();
        let wake = WakeFd::new().unwrap();
        ep.add(wake.fd(), EPOLLIN, 1).unwrap();
        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
        wake.wake();
        wake.wake(); // coalesces
        assert_eq!(ep.wait(&mut events, 1000).unwrap(), 1);
        wake.drain();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn pinning_to_cpu0_succeeds_and_out_of_range_fails() {
        pin_current_thread(0).expect("cpu 0 always exists");
        assert!(pin_current_thread(64 * 16).is_err());
    }
}
