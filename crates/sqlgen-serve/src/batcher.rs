//! Dynamic batcher: coalesces concurrent generation requests into one
//! lockstep GEMM window.
//!
//! The flow is `queue → window → lanes`:
//!
//! 1. HTTP workers push [`GenTask`]s onto the schema's bounded queue.
//! 2. The batcher thread blocks for the first task, then keeps gathering
//!    until either `max_wait` elapses or the window holds
//!    `max_batch_jobs` episode jobs — latency-bounded coalescing.
//! 3. The window is expanded into per-episode [`sqlgen_rl::Job`]s (request
//!    `i`, episode `j` → tag `i << 32 | j`, seed `worker_seed(req.seed, j)`)
//!    and run through [`sqlgen_rl::run_jobs_batched`] on `lanes` lanes.
//!
//! Because every job re-seeds its lane RNG and zeroes its LSTM lane at
//! assignment, the response bytes for a request are a pure function of
//! (weights, schema, constraint, seed) — identical no matter which
//! co-tenant requests share the window or how wide the batch is. That is
//! the contract the `serve-equivalence` fuzz family checks.

use crate::queue::BoundedQueue;
use crate::registry::ModelRegistry;
use sqlgen_core::{Algorithm, Constraint, GenConfig, Refiner, Target};
use sqlgen_engine::{render, Estimator};
use sqlgen_fsm::{FsmConfig, Vocabulary};
use sqlgen_obs::trace::ROOT_SPAN;
use sqlgen_obs::{Labels, RequestTrace, TraceHandle};
use sqlgen_rl::{
    run_jobs_batched, worker_seed, ActorCritic, ActorNet, Episode, InferActor, Job, JobOutcome,
    Reinforce, SqlGenEnv,
};
use sqlgen_storage::Database;
use std::path::PathBuf;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Upper bound on `n` per request; keeps one request from monopolising
/// windows far beyond `max_batch_jobs`.
pub const MAX_QUERIES_PER_REQUEST: usize = 256;

/// A parsed `/generate` request body.
#[derive(Debug, Clone, PartialEq)]
pub struct GenRequest {
    /// Schema (database) to generate against; empty string = the server's
    /// first schema.
    pub schema: String,
    pub constraint: Constraint,
    /// Number of queries to generate.
    pub n: usize,
    /// Base seed; episode `j` runs on `worker_seed(seed, j)`.
    pub seed: u64,
    /// Per-request deadline override in milliseconds.
    pub timeout_ms: Option<u64>,
}

impl GenRequest {
    /// Parses a JSON request body, e.g.
    /// `{"constraint":{"metric":"cardinality","min":1,"max":500},"n":4,"seed":7}`.
    /// Point constraints use `"point"`, ranges use `"min"`/`"max"`.
    pub fn from_json(body: &str) -> Result<GenRequest, String> {
        let v = serde_json::from_str::<serde_json::Value>(body)
            .map_err(|e| format!("invalid JSON body: {e}"))?;
        let schema = v
            .get("schema")
            .and_then(|s| s.as_str())
            .unwrap_or("")
            .to_string();
        let n = match v.get("n") {
            None => 1,
            Some(n) => n
                .as_u64()
                .ok_or_else(|| "\"n\" must be a non-negative integer".to_string())?
                as usize,
        };
        if n == 0 || n > MAX_QUERIES_PER_REQUEST {
            return Err(format!("\"n\" must be in 1..={MAX_QUERIES_PER_REQUEST}"));
        }
        let seed = match v.get("seed") {
            None => 0,
            Some(s) => s
                .as_u64()
                .ok_or_else(|| "\"seed\" must be a non-negative integer".to_string())?,
        };
        let timeout_ms = match v.get("timeout_ms") {
            None => None,
            Some(t) => Some(
                t.as_u64()
                    .ok_or_else(|| "\"timeout_ms\" must be a non-negative integer".to_string())?,
            ),
        };
        let c = v
            .get("constraint")
            .ok_or_else(|| "missing \"constraint\" object".to_string())?;
        let metric = c
            .get("metric")
            .and_then(|m| m.as_str())
            .unwrap_or("cardinality");
        let num = |key: &str| -> Result<Option<f64>, String> {
            match c.get(key) {
                None => Ok(None),
                Some(x) => x
                    .as_f64()
                    .filter(|f| f.is_finite() && *f >= 0.0)
                    .map(Some)
                    .ok_or_else(|| format!("constraint \"{key}\" must be a finite number >= 0")),
            }
        };
        let target = match (num("point")?, num("min")?, num("max")?) {
            (Some(p), None, None) => Target::Point(p),
            (None, Some(lo), Some(hi)) if lo <= hi => Target::Range(lo, hi),
            (None, Some(_), Some(_)) => return Err("constraint min > max".to_string()),
            _ => {
                return Err(
                    "constraint needs either \"point\" or both \"min\" and \"max\"".to_string(),
                )
            }
        };
        let constraint = match metric {
            "cardinality" => match target {
                Target::Point(p) => Constraint::cardinality_point(p),
                Target::Range(lo, hi) => Constraint::cardinality_range(lo, hi),
            },
            "cost" => match target {
                Target::Point(p) => Constraint::cost_point(p),
                Target::Range(lo, hi) => Constraint::cost_range(lo, hi),
            },
            other => return Err(format!("unknown metric {other:?} (cardinality|cost)")),
        };
        Ok(GenRequest {
            schema,
            constraint,
            n,
            seed,
            timeout_ms,
        })
    }
}

/// One generated query in a response.
#[derive(Debug, Clone)]
pub struct ServedQuery {
    pub sql: String,
    pub measured: f64,
    pub satisfied: bool,
}

/// What the batcher sends back to the waiting HTTP worker.
#[derive(Debug, Clone)]
pub struct RequestOutcome {
    pub queries: Vec<ServedQuery>,
    /// Episodes aborted by the request deadline (so `queries.len() +
    /// expired == n`).
    pub expired: usize,
    pub model_label: String,
    pub model_version: u64,
}

/// Where a finished [`RequestOutcome`] goes: a blocking HTTP worker parked
/// on a rendezvous channel (legacy pool), or an event-loop completion
/// mailbox plus a wakeup (event backend). Either way delivery never
/// blocks; a receiver that already gave up is skipped silently.
pub enum Responder {
    Channel(mpsc::SyncSender<RequestOutcome>),
    #[cfg(target_os = "linux")]
    Event(crate::event_loop::EventReply),
}

impl Responder {
    pub fn send(&self, outcome: RequestOutcome) {
        match self {
            Responder::Channel(tx) => {
                let _ = tx.try_send(outcome);
            }
            #[cfg(target_os = "linux")]
            Responder::Event(reply) => reply.deliver(outcome),
        }
    }
}

/// A request travelling through the admission queue.
pub struct GenTask {
    pub req: GenRequest,
    pub deadline: Option<Instant>,
    pub enqueued: Instant,
    pub reply: Responder,
    /// Request trace the batcher attributes `queue_wait` / `batch_gather` /
    /// `lane_exec` spans to (opened by the HTTP layer, `None` untraced).
    pub trace: Option<Arc<RequestTrace>>,
}

/// The generation-side bundle for one database: action space, statistics,
/// FSM limits, model registry and admission queue. Everything the batcher
/// needs; the HTTP layer only touches `queue` and `registry`.
pub struct Schema {
    pub name: String,
    pub vocab: Vocabulary,
    pub estimator: Estimator,
    pub fsm: FsmConfig,
    pub registry: ModelRegistry,
    pub queue: BoundedQueue<GenTask>,
    /// Constraint-miss refinement engine shared by every window on this
    /// schema (deterministic local search + miss cache; DESIGN.md §12).
    pub refiner: Refiner,
    /// Rendered-response LRU keyed on `(model-version, seed, n,
    /// constraint)`; valid because responses are pure functions of that
    /// tuple. Cleared whenever the registry hot-swaps.
    pub cache: crate::cache::ResultCache,
}

impl Schema {
    /// Derives the action space and statistics from `db` exactly as
    /// `LearnedSqlGen::new` does — including the bootstrap policy weights —
    /// so an untrained server is bitwise-equivalent to an untrained
    /// generator with the same `GenConfig`.
    pub fn build(
        name: &str,
        db: &Database,
        config: &GenConfig,
        model_dir: Option<PathBuf>,
        queue_cap: usize,
    ) -> Schema {
        let vocab = Vocabulary::build(db, &config.sample);
        let estimator = Estimator::build(db);
        let actor = match config.algorithm {
            Algorithm::Reinforce => Reinforce::new(vocab.size(), config.train.clone()).actor,
            Algorithm::ActorCritic => ActorCritic::new(vocab.size(), config.train.clone()).actor,
        };
        let registry = ModelRegistry::new(
            crate::registry::ServedModel {
                label: "builtin".to_string(),
                version: 0,
                actor,
                quant: None,
            },
            model_dir,
            vocab.size(),
            config.quantize,
        );
        if let Err(e) = registry.refresh() {
            sqlgen_obs::obs_warn!("[serve] schema {name}: no loadable checkpoint yet: {e}");
        }
        Schema {
            name: name.to_string(),
            vocab,
            estimator,
            fsm: config.fsm.clone(),
            registry,
            queue: BoundedQueue::named(queue_cap, name),
            refiner: Refiner::new(config.refine.clone()),
            cache: crate::cache::ResultCache::new(64 * 1024 * 1024, 8, name),
        }
    }

    /// Installs trained weights from a generator (in-process publish path,
    /// used by `sqlgen serve --train` and tests).
    pub fn publish_actor(&self, label: &str, version: u64, actor: ActorNet) {
        assert_eq!(
            actor.vocab_size,
            self.vocab.size(),
            "published actor must match the schema vocabulary"
        );
        self.registry.publish(crate::registry::ServedModel {
            label: label.to_string(),
            version,
            actor,
            quant: None, // built by the registry when it quantizes
        });
    }
}

/// One request's slice of a window, decoupled from the task plumbing so
/// `run_window` stays pure (the fuzz harness calls it directly).
#[derive(Debug, Clone)]
pub struct WindowRequest {
    pub constraint: Constraint,
    pub n: usize,
    pub seed: u64,
    pub deadline: Option<Instant>,
    /// Trace handle whose parent is this request's `lane_exec` span; every
    /// job spawned for this request attributes its lane time there.
    pub trace: Option<TraceHandle>,
}

impl From<&GenRequest> for WindowRequest {
    fn from(req: &GenRequest) -> WindowRequest {
        WindowRequest {
            constraint: req.constraint,
            n: req.n,
            seed: req.seed,
            deadline: None,
            trace: None,
        }
    }
}

/// Episodes for one window request, in episode order.
pub struct WindowOutcome {
    pub episodes: Vec<Episode>,
    pub expired: usize,
}

/// Runs a gathered window on `lanes` lockstep lanes. Pure: the output for
/// request `i` depends only on (actor, vocab, estimator, fsm, refiner
/// config, `reqs[i]`) — not on `lanes` or on the other requests in the
/// window. Generic over the policy so windows run unchanged on the f32
/// actor or its int8 quantized snapshot.
///
/// With a refiner, missed constraints are repaired post-EOS by the
/// deterministic local search of `sqlgen_core::refine`, then — past the
/// search budget — by redrawing missed episode slots with seeds
/// `worker_seed(req.seed, req.n * (round + 1) + j)`, the same schedule
/// `LearnedSqlGen::generate_seeded` uses. Both stages are pure functions
/// of the request, so refined responses remain a pure function of
/// `(model-version, schema, seed, constraint)`.
pub fn run_window<A: InferActor>(
    actor: &A,
    vocab: &Vocabulary,
    estimator: &Estimator,
    fsm: &FsmConfig,
    reqs: &[WindowRequest],
    lanes: usize,
    refiner: Option<&Refiner>,
) -> Vec<WindowOutcome> {
    let envs: Vec<SqlGenEnv<'_>> = reqs
        .iter()
        .map(|r| SqlGenEnv::new(vocab, estimator, r.constraint).with_fsm_config(fsm.clone()))
        .collect();
    let mut jobs = Vec::new();
    for (ri, r) in reqs.iter().enumerate() {
        for j in 0..r.n {
            jobs.push(Job {
                env: &envs[ri],
                seed: worker_seed(r.seed, j),
                deadline: r.deadline,
                tag: (ri as u64) << 32 | j as u64,
                trace: r.trace.clone(),
            });
        }
    }
    // (request, episode)-indexed slots; `None` marks an expired job.
    let mut slots: Vec<Vec<Option<Episode>>> = reqs
        .iter()
        .map(|r| (0..r.n).map(|_| None).collect())
        .collect();
    for (tag, outcome) in run_jobs_batched(actor, jobs, lanes) {
        if let JobOutcome::Done(ep) = outcome {
            slots[(tag >> 32) as usize][(tag & 0xffff_ffff) as usize] = Some(*ep);
        }
    }
    if let Some(refiner) = refiner.filter(|r| r.enabled()) {
        // Local search per request, attributed to a `refine` span phase in
        // the request trace.
        for (ri, req_slots) in slots.iter_mut().enumerate() {
            let t0 = reqs[ri].trace.is_some().then(Instant::now);
            for ep in req_slots.iter_mut().flatten() {
                refiner.refine_episode(&envs[ri], ep);
            }
            if let (Some(t0), Some(handle)) = (t0, &reqs[ri].trace) {
                handle.accum("refine", t0.elapsed().as_nanos() as f64 / 1_000.0);
            }
        }
        // Fallback resampling, batched across the window per round; every
        // redraw is a fresh Job with a request-local seed, so co-tenants
        // still cannot perturb each other.
        for round in 0..refiner.config().resample_rounds {
            let mut jobs = Vec::new();
            for (ri, r) in reqs.iter().enumerate() {
                for (j, slot) in slots[ri].iter().enumerate() {
                    if slot.as_ref().is_some_and(|ep| !ep.satisfied) {
                        jobs.push(Job {
                            env: &envs[ri],
                            seed: worker_seed(r.seed, r.n * (round + 1) + j),
                            deadline: r.deadline,
                            tag: (ri as u64) << 32 | j as u64,
                            trace: r.trace.clone(),
                        });
                    }
                }
            }
            if jobs.is_empty() {
                break;
            }
            sqlgen_obs::obs_count!("refine.resampled", jobs.len() as u64);
            for (tag, outcome) in run_jobs_batched(actor, jobs, lanes) {
                let JobOutcome::Done(mut ep) = outcome else {
                    continue;
                };
                let ri = (tag >> 32) as usize;
                refiner.refine_episode(&envs[ri], &mut ep);
                if ep.satisfied {
                    slots[ri][(tag & 0xffff_ffff) as usize] = Some(*ep);
                }
            }
        }
    }
    slots
        .into_iter()
        .map(|req_slots| {
            let mut episodes = Vec::new();
            let mut expired = 0usize;
            for slot in req_slots {
                match slot {
                    Some(ep) => episodes.push(ep),
                    None => expired += 1,
                }
            }
            WindowOutcome { episodes, expired }
        })
        .collect()
}

/// Batcher knobs; `lanes` is the GEMM batch width, `max_wait` the window
/// gather deadline, `max_batch_jobs` the episode-count cap per window.
#[derive(Debug, Clone)]
pub struct BatcherConfig {
    pub lanes: usize,
    pub max_wait: Duration,
    pub max_batch_jobs: usize,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        BatcherConfig {
            lanes: 8,
            max_wait: Duration::from_millis(5),
            max_batch_jobs: 64,
        }
    }
}

/// The batcher thread body. Runs until the schema's queue is closed and
/// drained; every admitted task gets a reply (receivers that already gave
/// up are skipped silently).
pub fn batch_loop(schema: &Schema, cfg: &BatcherConfig) {
    loop {
        let Some(first) = schema.queue.pop_timeout(Duration::from_millis(50)) else {
            if schema.queue.is_closed() && schema.queue.is_empty() {
                return;
            }
            continue;
        };
        // Each task remembers when it left the queue, so queue_wait and
        // batch_gather split per task rather than at window granularity.
        let mut tasks = vec![(first, Instant::now())];
        let mut job_count = tasks[0].0.req.n;
        // Coalesce whatever is already queued, but run the moment the
        // queue drains: waiting out the rest of `max_wait` only adds
        // latency at low load (the gather histogram used to pin at the
        // full window), while under load windows still fill because
        // arrivals accumulate behind the previous window's execution.
        while job_count < cfg.max_batch_jobs {
            match schema.queue.try_pop() {
                Some(t) => {
                    job_count += t.req.n;
                    tasks.push((t, Instant::now()));
                }
                None => break,
            }
        }
        run_window_tasks(schema, tasks, cfg);
    }
}

/// Executes one gathered window: registry hot-swap (between windows, never
/// mid-window; a swap invalidates the result cache), trace-span tiling,
/// [`run_window`], and replies. Used by the legacy per-schema batcher
/// thread; shard workers call [`run_window_tasks_with_model`] with their
/// cached snapshot instead.
pub fn run_window_tasks(schema: &Schema, tasks: Vec<(GenTask, Instant)>, cfg: &BatcherConfig) {
    if let Ok(true) = schema.registry.refresh() {
        schema.cache.clear();
    }
    let model = schema.registry.current();
    run_window_tasks_with_model(schema, &model, tasks, cfg);
}

/// [`run_window_tasks`] with the model snapshot chosen by the caller. The
/// shard loop resolves `model` once per `(schema, registry generation)`
/// and reuses the `Arc` across windows, so steady-state windows skip the
/// registry `RwLock` entirely. The caller owns the refresh/invalidations
/// that `run_window_tasks` performs.
pub fn run_window_tasks_with_model(
    schema: &Schema,
    model: &Arc<crate::registry::ServedModel>,
    tasks: Vec<(GenTask, Instant)>,
    cfg: &BatcherConfig,
) {
    let job_count: usize = tasks.iter().map(|(t, _)| t.req.n).sum();
    // One labeled series per (schema, batch_width); the lookup is a map
    // probe per window, invisible next to the window itself.
    let phase_labels = Labels::new()
        .with("schema", &schema.name)
        .with("batch_width", &cfg.lanes.to_string());
    let m = sqlgen_obs::metrics::global();
    let queue_wait_h = m.histogram_with("serve.phase.queue_wait_us", &phase_labels);
    let gather_h = m.histogram_with("serve.phase.gather_us", &phase_labels);
    let exec_h = m.histogram_with("serve.phase.exec_us", &phase_labels);
    let started = Instant::now();
    let reqs: Vec<WindowRequest> = tasks
        .iter()
        .map(|(t, popped)| {
            queue_wait_h.record_silent((*popped - t.enqueued).as_micros() as f64);
            gather_h.record_silent((started - *popped).as_micros() as f64);
            // queue_wait ends where batch_gather starts and batch_gather
            // ends where lane_exec starts, so the three phases tile the
            // request wall time without overlap. lane_exec stays open
            // until the window finishes; per-job `episode` spans parent
            // under it.
            let trace = t.trace.as_ref().map(|tr| {
                tr.span_between("queue_wait", ROOT_SPAN, t.enqueued, *popped);
                tr.span_between("batch_gather", ROOT_SPAN, *popped, started);
                let lane = tr.open_span("lane_exec", ROOT_SPAN, started);
                tr.annotate_str("schema", &schema.name);
                tr.annotate_str("model", &model.label);
                tr.annotate_num("model_version", model.version as f64);
                tr.annotate_num("window_requests", tasks.len() as f64);
                tr.annotate_num("window_jobs", job_count as f64);
                tr.annotate_num("batch_width", cfg.lanes as f64);
                TraceHandle {
                    trace: tr.clone(),
                    parent: lane,
                }
            });
            WindowRequest {
                constraint: t.req.constraint,
                n: t.req.n,
                seed: t.req.seed,
                deadline: t.deadline,
                trace,
            }
        })
        .collect();
    sqlgen_obs::obs_record!("serve.batch.requests", tasks.len() as f64);
    sqlgen_obs::obs_record!("serve.batch.jobs", job_count as f64);
    for (t, _) in &tasks {
        sqlgen_obs::obs_record!(
            "serve.queue.wait_us",
            (started - t.enqueued).as_micros() as f64
        );
    }
    // Windows run on the int8 snapshot when the registry quantizes.
    let outcomes = match &model.quant {
        Some(q) => run_window(
            q,
            &schema.vocab,
            &schema.estimator,
            &schema.fsm,
            &reqs,
            cfg.lanes,
            Some(&schema.refiner),
        ),
        None => run_window(
            &model.actor,
            &schema.vocab,
            &schema.estimator,
            &schema.fsm,
            &reqs,
            cfg.lanes,
            Some(&schema.refiner),
        ),
    };
    let window_end = Instant::now();
    sqlgen_obs::obs_record!(
        "serve.window.latency_us",
        (window_end - started).as_micros() as f64
    );
    for r in &reqs {
        if let Some(handle) = &r.trace {
            handle.trace.close_span(handle.parent, window_end);
        }
        exec_h.record_silent((window_end - started).as_micros() as f64);
    }
    for ((task, _), out) in tasks.into_iter().zip(outcomes) {
        let queries = out
            .episodes
            .iter()
            .map(|ep| ServedQuery {
                sql: render(&ep.statement),
                measured: ep.measured,
                satisfied: ep.satisfied,
            })
            .collect();
        task.reply.send(RequestOutcome {
            queries,
            expired: out.expired,
            model_label: model.label.clone(),
            model_version: model.version,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlgen_storage::gen::tpch_database;

    fn fixture() -> (Database, GenConfig) {
        (tpch_database(0.05, 2), GenConfig::fast().with_seed(11))
    }

    #[test]
    fn parses_point_and_range_requests() {
        let r = GenRequest::from_json(
            r#"{"schema":"tpch","constraint":{"metric":"cost","point":100},"n":4,"seed":9,"timeout_ms":250}"#,
        )
        .unwrap();
        assert_eq!(r.schema, "tpch");
        assert_eq!(r.constraint, Constraint::cost_point(100.0));
        assert_eq!((r.n, r.seed, r.timeout_ms), (4, 9, Some(250)));
        let r = GenRequest::from_json(r#"{"constraint":{"min":1,"max":500}}"#).unwrap();
        assert_eq!(r.constraint, Constraint::cardinality_range(1.0, 500.0));
        assert_eq!((r.n, r.seed, r.timeout_ms), (1, 0, None));
    }

    #[test]
    fn rejects_malformed_requests_with_messages() {
        for (body, needle) in [
            ("{", "invalid JSON"),
            (r#"{"n":1}"#, "constraint"),
            (r#"{"constraint":{"metric":"latency","point":1}}"#, "metric"),
            (r#"{"constraint":{"min":9,"max":1}}"#, "min > max"),
            (r#"{"constraint":{"point":-3}}"#, "finite number"),
            (r#"{"constraint":{"min":1}}"#, "point"),
            (r#"{"constraint":{"point":1},"n":0}"#, "\"n\""),
            (r#"{"constraint":{"point":1},"n":100000}"#, "\"n\""),
            (r#"{"constraint":{"point":1},"seed":-4}"#, "seed"),
        ] {
            let err = GenRequest::from_json(body).unwrap_err();
            assert!(err.contains(needle), "{body} → {err}");
        }
    }

    #[test]
    fn window_results_are_independent_of_co_tenants_and_lanes() {
        let (db, config) = fixture();
        let schema = Schema::build("t", &db, &config, None, 8);
        let model = schema.registry.current();
        let a = WindowRequest {
            constraint: Constraint::cardinality_range(1.0, 500.0),
            n: 3,
            seed: 41,
            deadline: None,
            trace: None,
        };
        let b = WindowRequest {
            constraint: Constraint::cardinality_point(50.0),
            n: 2,
            seed: 99,
            deadline: None,
            trace: None,
        };
        let solo = run_window(
            &model.actor,
            &schema.vocab,
            &schema.estimator,
            &schema.fsm,
            std::slice::from_ref(&a),
            1,
            None,
        );
        let coalesced = run_window(
            &model.actor,
            &schema.vocab,
            &schema.estimator,
            &schema.fsm,
            &[b.clone(), a.clone()],
            8,
            None,
        );
        let solo_eps = &solo[0].episodes;
        let shared_eps = &coalesced[1].episodes;
        assert_eq!(solo_eps.len(), 3);
        assert_eq!(shared_eps.len(), 3);
        for (x, y) in solo_eps.iter().zip(shared_eps) {
            assert_eq!(x.actions, y.actions);
            assert_eq!(x.measured.to_bits(), y.measured.to_bits());
        }
        assert_eq!(coalesced[0].episodes.len(), 2);
    }

    /// With refinement (and its resample fallback) engaged, a request's
    /// refined response must still be independent of lane width and
    /// co-tenant requests — the serving purity contract.
    #[test]
    fn refined_windows_remain_pure_functions_of_the_request() {
        let (db, config) = fixture();
        let schema = Schema::build("t", &db, &config, None, 8);
        assert!(schema.refiner.enabled());
        let model = schema.registry.current();
        // Tight band → the untrained policy misses often → refinement runs.
        let a = WindowRequest {
            constraint: Constraint::cardinality_range(40.0, 60.0),
            n: 4,
            seed: 7,
            deadline: None,
            trace: None,
        };
        let b = WindowRequest {
            constraint: Constraint::cardinality_point(25.0),
            n: 2,
            seed: 3,
            deadline: None,
            trace: None,
        };
        let solo = run_window(
            &model.actor,
            &schema.vocab,
            &schema.estimator,
            &schema.fsm,
            std::slice::from_ref(&a),
            1,
            Some(&schema.refiner),
        );
        let coalesced = run_window(
            &model.actor,
            &schema.vocab,
            &schema.estimator,
            &schema.fsm,
            &[b, a.clone()],
            8,
            Some(&schema.refiner),
        );
        assert_eq!(solo[0].episodes.len(), 4);
        assert_eq!(coalesced[1].episodes.len(), 4);
        for (x, y) in solo[0].episodes.iter().zip(&coalesced[1].episodes) {
            assert_eq!(render(&x.statement), render(&y.statement));
            assert_eq!(x.measured.to_bits(), y.measured.to_bits());
            assert_eq!(x.satisfied, y.satisfied);
        }
    }

    #[test]
    fn quantized_schema_windows_run_on_the_int8_snapshot() {
        let (db, config) = fixture();
        let schema = Schema::build("t", &db, &config.with_quantize(true), None, 8);
        assert!(schema.registry.quantized());
        let model = schema.registry.current();
        let q = model.quant.as_ref().expect("quantized registry");
        let req = WindowRequest {
            constraint: Constraint::cardinality_range(1.0, 500.0),
            n: 3,
            seed: 41,
            deadline: None,
            trace: None,
        };
        let narrow = run_window(
            q,
            &schema.vocab,
            &schema.estimator,
            &schema.fsm,
            std::slice::from_ref(&req),
            1,
            Some(&schema.refiner),
        );
        let wide = run_window(
            q,
            &schema.vocab,
            &schema.estimator,
            &schema.fsm,
            std::slice::from_ref(&req),
            8,
            Some(&schema.refiner),
        );
        assert_eq!(narrow[0].episodes.len(), 3);
        // The purity contract holds on the int8 path too: results are
        // independent of the lane width.
        for (x, y) in narrow[0].episodes.iter().zip(&wide[0].episodes) {
            assert_eq!(x.actions, y.actions);
            assert_eq!(x.measured.to_bits(), y.measured.to_bits());
        }
    }

    #[test]
    fn batch_loop_replies_to_every_task_and_drains_on_close() {
        let (db, config) = fixture();
        let schema = std::sync::Arc::new(Schema::build("t", &db, &config, None, 16));
        let cfg = BatcherConfig {
            lanes: 4,
            max_wait: Duration::from_millis(2),
            max_batch_jobs: 8,
        };
        let mut rxs = Vec::new();
        for seed in 0..5u64 {
            let (tx, rx) = mpsc::sync_channel(1);
            schema
                .queue
                .try_push(GenTask {
                    req: GenRequest {
                        schema: String::new(),
                        constraint: Constraint::cardinality_range(1.0, 500.0),
                        n: 2,
                        seed,
                        timeout_ms: None,
                    },
                    deadline: None,
                    enqueued: Instant::now(),
                    reply: Responder::Channel(tx),
                    trace: None,
                })
                .map_err(|(e, _)| e)
                .unwrap();
            rxs.push(rx);
        }
        // Close before starting: the loop must still drain all queued work.
        schema.queue.close();
        let s = schema.clone();
        let cfg2 = cfg.clone();
        let worker = std::thread::spawn(move || batch_loop(&s, &cfg2));
        for rx in rxs {
            let out = rx.recv_timeout(Duration::from_secs(30)).unwrap();
            assert_eq!(out.queries.len() + out.expired, 2);
            assert_eq!(out.model_label, "builtin");
        }
        worker.join().unwrap();
        assert!(schema.queue.is_empty());
    }
}
