//! Deterministic result cache: repeat traffic becomes a memcpy.
//!
//! PR 8 made every `/generate` response body a pure function of
//! `(model-version, schema, seed, constraint, n)` — refinement, resampling
//! and lane scheduling are all derived deterministically from that tuple.
//! This cache exploits it: the fully rendered response body is stored under
//! that exact key, so a hit serves the same bytes a fresh rollout would
//! produce, straight from the event loop, without touching a shard queue.
//!
//! Structure: N independently locked shards (key-hash partitioned), each a
//! true LRU (intrusive doubly-linked list over a slab, O(1) get/put/evict)
//! with a byte budget. Responses that depend on anything outside the key —
//! expired lanes, error statuses — are never inserted. A model hot-swap
//! changes the version component of every key, so stale entries become
//! unreachable immediately; [`ResultCache::clear`] additionally drops their
//! bytes on `/models/reload` and registry swaps.

use crate::batcher::GenRequest;
use sqlgen_rl::{Metric, Target};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The purity tuple a cached body is keyed on. Schema is implicit (one
/// cache per schema); floats are compared by bit pattern, which is exactly
/// the determinism contract (`measured.to_bits()` equality in the fuzz
/// families).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    pub model_version: u64,
    pub seed: u64,
    pub n: u64,
    metric: u8,
    /// 0 = point (b unused), 1 = range.
    target_kind: u8,
    a_bits: u64,
    b_bits: u64,
}

impl CacheKey {
    /// Builds the key for a request against the currently served model
    /// version. Requests whose responses are not pure functions of the
    /// tuple (none today — `timeout_ms` only affects expiry, and expired
    /// responses are never cached) still key cleanly.
    pub fn for_request(req: &GenRequest, model_version: u64) -> CacheKey {
        let metric = match req.constraint.metric {
            Metric::Cardinality => 0,
            Metric::Cost => 1,
            Metric::Latency => 2,
        };
        let (target_kind, a_bits, b_bits) = match req.constraint.target {
            Target::Point(p) => (0, p.to_bits(), 0),
            Target::Range(lo, hi) => (1, lo.to_bits(), hi.to_bits()),
        };
        CacheKey {
            model_version,
            seed: req.seed,
            n: req.n as u64,
            metric,
            target_kind,
            a_bits,
            b_bits,
        }
    }

    fn shard_hash(&self) -> u64 {
        // splitmix64 over a quick field mix; only shard selection and the
        // HashMap use it, equality is always on the full key.
        let mut x = self
            .model_version
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(self.seed)
            .wrapping_add(self.n << 32)
            .wrapping_add((self.metric as u64) << 8 | self.target_kind as u64)
            .wrapping_add(self.a_bits.rotate_left(17))
            .wrapping_add(self.b_bits.rotate_left(43));
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }
}

const NIL: usize = usize::MAX;

struct Node {
    key: CacheKey,
    body: Arc<String>,
    prev: usize,
    next: usize,
}

/// One lock's worth of LRU state.
struct Shard {
    map: std::collections::HashMap<CacheKey, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize, // most recent
    tail: usize, // least recent
    bytes: usize,
    budget: usize,
}

impl Shard {
    fn new(budget: usize) -> Shard {
        Shard {
            map: std::collections::HashMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            bytes: 0,
            budget,
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.nodes[i].prev, self.nodes[i].next);
        match prev {
            NIL => self.head = next,
            p => self.nodes[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.nodes[n].prev = prev,
        }
    }

    fn push_front(&mut self, i: usize) {
        self.nodes[i].prev = NIL;
        self.nodes[i].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn entry_bytes(key_body_len: usize) -> usize {
        // Body plus a conservative per-entry overhead (key, node, map slot).
        key_body_len + std::mem::size_of::<Node>() + std::mem::size_of::<CacheKey>() + 48
    }

    fn get(&mut self, key: &CacheKey) -> Option<Arc<String>> {
        let i = *self.map.get(key)?;
        self.unlink(i);
        self.push_front(i);
        Some(self.nodes[i].body.clone())
    }

    /// Inserts (or refreshes) `key → body`, then evicts from the LRU tail
    /// until the shard is back under budget. Returns evictions performed.
    fn put(&mut self, key: CacheKey, body: Arc<String>) -> usize {
        let cost = Self::entry_bytes(body.len());
        if cost > self.budget {
            // Larger than the whole shard: not cacheable — and any smaller
            // body already cached under this key is now stale; drop it so a
            // later hit cannot serve superseded bytes.
            if let Some(i) = self.map.remove(&key) {
                self.unlink(i);
                self.bytes -= Self::entry_bytes(self.nodes[i].body.len());
                self.nodes[i].body = Arc::new(String::new());
                self.free.push(i);
            }
            return 0;
        }
        if let Some(&i) = self.map.get(&key) {
            self.bytes = self.bytes - Self::entry_bytes(self.nodes[i].body.len()) + cost;
            self.nodes[i].body = body;
            self.unlink(i);
            self.push_front(i);
        } else {
            let node = Node {
                key,
                body,
                prev: NIL,
                next: NIL,
            };
            let i = match self.free.pop() {
                Some(i) => {
                    self.nodes[i] = node;
                    i
                }
                None => {
                    self.nodes.push(node);
                    self.nodes.len() - 1
                }
            };
            self.push_front(i);
            self.map.insert(key, i);
            self.bytes += cost;
        }
        let mut evicted = 0;
        while self.bytes > self.budget && self.tail != NIL {
            let t = self.tail;
            // Never evict the entry we just touched; budget guarantees the
            // loop ends before reaching it unless it is the sole entry —
            // which `cost > budget` above already excluded.
            self.unlink(t);
            self.map.remove(&self.nodes[t].key);
            self.bytes -= Self::entry_bytes(self.nodes[t].body.len());
            self.nodes[t].body = Arc::new(String::new());
            self.free.push(t);
            evicted += 1;
        }
        evicted
    }

    fn clear(&mut self) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.bytes = 0;
    }
}

/// Sharded LRU over rendered response bodies, with hit/miss/eviction
/// counters and a bytes-held gauge (`serve.cache.*{schema=...}`).
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    hits: Arc<sqlgen_obs::Counter>,
    misses: Arc<sqlgen_obs::Counter>,
    evictions: Arc<sqlgen_obs::Counter>,
    bytes_gauge: Arc<sqlgen_obs::Gauge>,
    bytes_total: AtomicU64,
}

impl ResultCache {
    /// `budget_bytes` is the total across `shards` partitions.
    pub fn new(budget_bytes: usize, shards: usize, schema: &str) -> ResultCache {
        let shards = shards.max(1);
        let labels = sqlgen_obs::Labels::new().with("schema", schema);
        let m = sqlgen_obs::metrics::global();
        let per_shard = budget_bytes / shards;
        ResultCache {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard::new(per_shard)))
                .collect(),
            hits: m.counter_with("serve.cache.hits", &labels),
            misses: m.counter_with("serve.cache.misses", &labels),
            evictions: m.counter_with("serve.cache.evictions", &labels),
            bytes_gauge: m.gauge_with("serve.cache.bytes", &labels),
            bytes_total: AtomicU64::new(0),
        }
    }

    /// Re-targets the total byte budget (the CLI applies `--cache-mb` after
    /// `Schema::build`). Shards evict down to the new budget lazily on
    /// their next insert.
    pub fn set_budget(&self, budget_bytes: usize) {
        let per_shard = budget_bytes / self.shards.len();
        for s in &self.shards {
            s.lock().expect("cache shard").budget = per_shard;
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<Shard> {
        &self.shards[(key.shard_hash() % self.shards.len() as u64) as usize]
    }

    pub fn get(&self, key: &CacheKey) -> Option<Arc<String>> {
        let got = self.shard(key).lock().expect("cache shard").get(key);
        match &got {
            Some(_) => self.hits.inc(1),
            None => self.misses.inc(1),
        }
        got
    }

    pub fn put(&self, key: CacheKey, body: Arc<String>) {
        let shard = self.shard(&key);
        let (evicted, before, after) = {
            let mut s = shard.lock().expect("cache shard");
            let before = s.bytes;
            let evicted = s.put(key, body);
            (evicted, before, s.bytes)
        };
        if evicted > 0 {
            self.evictions.inc(evicted as u64);
        }
        self.apply_byte_delta(before, after);
    }

    /// Maintains the cross-shard byte total without locking every shard:
    /// each mutation applies its own shard's delta.
    fn apply_byte_delta(&self, before: usize, after: usize) {
        let total = if after >= before {
            self.bytes_total
                .fetch_add((after - before) as u64, Ordering::Relaxed)
                + (after - before) as u64
        } else {
            self.bytes_total
                .fetch_sub((before - after) as u64, Ordering::Relaxed)
                - (before - after) as u64
        };
        self.bytes_gauge.set(total as f64);
    }

    /// Drops every entry (hot-swap invalidation on `/models/reload` and
    /// registry swaps between windows).
    pub fn clear(&self) {
        for s in &self.shards {
            let mut s = s.lock().expect("cache shard");
            let before = s.bytes;
            s.clear();
            self.apply_byte_delta(before, 0);
        }
    }

    pub fn bytes(&self) -> usize {
        self.bytes_total.load(Ordering::Relaxed) as usize
    }

    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard").map.len())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// (hits, misses, evictions) counter snapshot for `/models` and the
    /// bench hit-rate report.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits.get(), self.misses.get(), self.evictions.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlgen_rl::Constraint;

    fn key(version: u64, seed: u64) -> CacheKey {
        CacheKey::for_request(
            &GenRequest {
                schema: String::new(),
                constraint: Constraint::cardinality_range(1.0, 500.0),
                n: 4,
                seed,
                timeout_ms: None,
            },
            version,
        )
    }

    fn body(tag: u64) -> Arc<String> {
        Arc::new(format!("body-{tag}-{}", "x".repeat(64)))
    }

    #[test]
    fn hit_returns_the_exact_inserted_body() {
        // Unique schema label: the counters live in the global labeled
        // metrics registry, so sharing a label across tests would race.
        let c = ResultCache::new(1 << 20, 4, "cache-test-hit");
        assert!(c.get(&key(1, 7)).is_none());
        c.put(key(1, 7), body(7));
        assert_eq!(c.get(&key(1, 7)).unwrap().as_str(), body(7).as_str());
        // Same request under a new model version is a different entry.
        assert!(c.get(&key(2, 7)).is_none());
        let (hits, misses, _) = c.stats();
        assert_eq!((hits, misses), (1, 2));
    }

    #[test]
    fn keys_distinguish_constraint_bits_and_n() {
        let base = GenRequest {
            schema: String::new(),
            constraint: Constraint::cardinality_range(1.0, 500.0),
            n: 4,
            seed: 9,
            timeout_ms: None,
        };
        let k1 = CacheKey::for_request(&base, 3);
        let mut other = base.clone();
        other.constraint = Constraint::cardinality_point(1.0);
        assert_ne!(k1, CacheKey::for_request(&other, 3));
        let mut other = base.clone();
        other.constraint = Constraint::cost_range(1.0, 500.0);
        assert_ne!(k1, CacheKey::for_request(&other, 3));
        let mut other = base.clone();
        other.n = 5;
        assert_ne!(k1, CacheKey::for_request(&other, 3));
        // timeout_ms is NOT part of the key: it only affects expiry, and
        // expired responses are never inserted.
        let mut other = base.clone();
        other.timeout_ms = Some(123);
        assert_eq!(k1, CacheKey::for_request(&other, 3));
    }

    #[test]
    fn lru_evicts_oldest_first_and_respects_budget() {
        let per_entry = Shard::entry_bytes(body(0).len());
        let c = ResultCache::new(per_entry * 3, 1, "cache-test-lru");
        for seed in 0..3 {
            c.put(key(1, seed), body(seed));
        }
        assert_eq!(c.len(), 3);
        // Touch seed 0 so seed 1 becomes the LRU victim.
        assert!(c.get(&key(1, 0)).is_some());
        c.put(key(1, 3), body(3));
        assert_eq!(c.len(), 3);
        assert!(c.get(&key(1, 1)).is_none(), "seed 1 was the LRU entry");
        assert!(c.get(&key(1, 0)).is_some());
        assert!(c.get(&key(1, 3)).is_some());
        assert!(c.bytes() <= per_entry * 3);
        let (_, _, evictions) = c.stats();
        assert_eq!(evictions, 1);
    }

    /// Found by the cache-equivalence fuzz family: an oversized re-put
    /// used to early-return and leave the older, smaller body in place —
    /// a later hit served superseded bytes.
    #[test]
    fn oversized_reput_invalidates_the_existing_entry() {
        let per_entry = Shard::entry_bytes(body(0).len());
        let c = ResultCache::new(per_entry * 2, 1, "cache-test-oversize-reput");
        c.put(key(1, 0), body(0));
        assert!(c.get(&key(1, 0)).is_some());
        c.put(key(1, 0), Arc::new("z".repeat(4096)));
        assert!(
            c.get(&key(1, 0)).is_none(),
            "stale body survived an oversized re-put"
        );
        assert_eq!(c.bytes(), 0);
    }

    #[test]
    fn oversized_bodies_are_not_cached_and_clear_empties() {
        let c = ResultCache::new(128, 1, "cache-test-oversize");
        c.put(key(1, 0), Arc::new("y".repeat(4096)));
        assert!(c.is_empty());
        let c = ResultCache::new(1 << 20, 2, "cache-test-oversize");
        c.put(key(1, 0), body(0));
        c.put(key(1, 1), body(1));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.bytes(), 0);
        assert!(c.get(&key(1, 0)).is_none());
    }
}
