//! End-to-end tests over real sockets: equivalence with in-process
//! generation, keep-alive, deadline expiry, hot-swap and graceful
//! shutdown.

use sqlgen_core::{Constraint, GenConfig, LearnedSqlGen};
use sqlgen_serve::client::{self, Client};
use sqlgen_serve::{serve, GenRequest, GenTask, ServeConfig, ServerHandle};
use sqlgen_storage::gen::tpch_database;
use std::sync::mpsc;
use std::time::{Duration, Instant};

const SEED: u64 = 11;

fn start_server_with(batch: usize, max_queue: usize, legacy_pool: bool) -> ServerHandle {
    let db = tpch_database(0.05, 2);
    let config = GenConfig::fast().with_seed(SEED);
    let schema = sqlgen_serve::Schema::build("tpch", &db, &config, None, max_queue);
    serve(
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
            batch,
            read_timeout_ms: 2_000,
            legacy_pool,
            ..ServeConfig::default()
        },
        vec![schema],
    )
    .expect("bind ephemeral port")
}

fn start_server(batch: usize, max_queue: usize) -> ServerHandle {
    start_server_with(batch, max_queue, false)
}

#[test]
fn served_generation_matches_in_process_generator() {
    let server = start_server(8, 64);
    let body = r#"{"schema":"tpch","constraint":{"metric":"cardinality","min":1,"max":500},"n":4,"seed":21}"#;
    let (status, resp) = client::request(server.addr(), "POST", "/generate", Some(body)).unwrap();
    assert_eq!(status, 200, "{resp}");
    let v = serde_json::from_str::<serde_json::Value>(&resp).unwrap();
    assert_eq!(v.get("model").unwrap().as_str(), Some("builtin"));
    assert_eq!(v.get("expired").unwrap().as_u64(), Some(0));
    let served: Vec<(String, bool)> = v
        .get("queries")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|q| {
            (
                q.get("sql").unwrap().as_str().unwrap().to_string(),
                q.get("satisfied").unwrap().as_bool().unwrap(),
            )
        })
        .collect();
    server.shutdown();

    // The same request answered in-process, with a *different* batch width:
    // byte-identical SQL is the serving determinism contract.
    let db = tpch_database(0.05, 2);
    let gen = LearnedSqlGen::new(
        &db,
        Constraint::cardinality_range(1.0, 500.0),
        GenConfig::fast().with_seed(SEED),
    );
    let direct: Vec<(String, bool)> = gen
        .generate_seeded(4, 21)
        .into_iter()
        .map(|q| (q.sql, q.satisfied))
        .collect();
    assert_eq!(served, direct);
}

#[test]
fn keep_alive_serves_multiple_requests_per_connection() {
    let server = start_server(4, 64);
    let mut c = Client::connect(server.addr(), Duration::from_secs(30)).unwrap();
    let (status, body) = c.request("GET", "/healthz", None).unwrap();
    assert_eq!(status, 200, "{body}");
    let gen_body = r#"{"constraint":{"point":50},"n":1,"seed":3}"#;
    let (status, _) = c.request("POST", "/generate", Some(gen_body)).unwrap();
    assert_eq!(status, 200);
    // Same connection, same request → same bytes.
    let (_, a) = c.request("POST", "/generate", Some(gen_body)).unwrap();
    let (_, b) = c.request("POST", "/generate", Some(gen_body)).unwrap();
    assert_eq!(a, b);
    let (status, metrics) = c.request("GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    assert!(
        metrics.contains(r#"serve_http_latency_us_count{endpoint="generate",status="200"}"#),
        "{metrics}"
    );
    assert!(metrics.contains("serve_batch_jobs"), "{metrics}");
    sqlgen_obs::validate_exposition(&metrics).expect("exposition-valid /metrics");
    server.shutdown();
}

#[test]
fn zero_timeout_expires_every_lane_to_504() {
    let server = start_server(4, 64);
    let body = r#"{"constraint":{"min":1,"max":500},"n":3,"seed":5,"timeout_ms":0}"#;
    let (status, resp) = client::request(server.addr(), "POST", "/generate", Some(body)).unwrap();
    assert_eq!(status, 504, "{resp}");
    assert!(resp.contains("deadline"), "{resp}");
    server.shutdown();
}

#[test]
fn malformed_http_and_bodies_get_400_413() {
    use std::io::{Read, Write};
    let server = start_server(4, 64);
    // Raw malformed request line → 400.
    let mut s = std::net::TcpStream::connect(server.addr()).unwrap();
    s.write_all(b"BOGUS\r\n\r\n").unwrap();
    let mut resp = String::new();
    s.read_to_string(&mut resp).unwrap();
    assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
    // Oversized declared body → 413.
    let mut s = std::net::TcpStream::connect(server.addr()).unwrap();
    s.write_all(b"POST /generate HTTP/1.1\r\ncontent-length: 99999999\r\n\r\n")
        .unwrap();
    let mut resp = String::new();
    s.read_to_string(&mut resp).unwrap();
    assert!(resp.starts_with("HTTP/1.1 413"), "{resp}");
    // Bad JSON → 400 over the normal client.
    let (status, _) =
        client::request(server.addr(), "POST", "/generate", Some("not json")).unwrap();
    assert_eq!(status, 400);
    server.shutdown();
}

#[test]
fn hot_swap_is_visible_in_models_and_responses() {
    let server = start_server(4, 64);
    let schema = server.schema("tpch").unwrap();
    let trained = schema.registry.current().actor.clone();
    schema.publish_actor("retrained", 7, trained);
    let (status, models) = client::request(server.addr(), "GET", "/models", None).unwrap();
    assert_eq!(status, 200);
    let v = serde_json::from_str::<serde_json::Value>(&models).unwrap();
    let entry = &v.get("schemas").unwrap().as_array().unwrap()[0];
    assert_eq!(entry.get("model").unwrap().as_str(), Some("retrained"));
    assert_eq!(entry.get("version").unwrap().as_u64(), Some(7));
    let (_, resp) = client::request(
        server.addr(),
        "POST",
        "/generate",
        Some(r#"{"constraint":{"point":50},"n":1}"#),
    )
    .unwrap();
    let v = serde_json::from_str::<serde_json::Value>(&resp).unwrap();
    assert_eq!(v.get("model_version").unwrap().as_u64(), Some(7));
    server.shutdown();
}

#[test]
fn every_response_carries_request_id_and_adopts_inbound_traceparent() {
    let server = start_server(4, 64);
    // Plain GET: fresh id, echoed on both headers.
    let resp = client::request_full(server.addr(), "GET", "/healthz", &[], None).unwrap();
    assert_eq!(resp.status, 200);
    let id = resp
        .header("x-request-id")
        .expect("x-request-id")
        .to_string();
    assert_eq!(id.len(), 32, "{id:?}");
    assert!(id.chars().all(|c| c.is_ascii_hexdigit()));
    let tp = resp.header("traceparent").expect("traceparent");
    assert_eq!(tp, format!("00-{id}-0000000000000001-01"));

    // Inbound traceparent: the trace id is adopted verbatim.
    let inbound = "00-0123456789abcdef0123456789abcdef-00000000000000aa-01";
    let resp = client::request_full(
        server.addr(),
        "POST",
        "/generate",
        &[("traceparent", inbound)],
        Some(r#"{"constraint":{"point":50},"n":1,"seed":3}"#),
    )
    .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert_eq!(
        resp.header("x-request-id"),
        Some("0123456789abcdef0123456789abcdef")
    );
    // A hostile traceparent is ignored, not echoed: the server mints a
    // fresh id rather than propagating garbage.
    let resp = client::request_full(
        server.addr(),
        "GET",
        "/healthz",
        &[("traceparent", "00-zzzz-bad-01")],
        None,
    )
    .unwrap();
    let fresh = resp.header("x-request-id").unwrap();
    assert_eq!(fresh.len(), 32);
    assert_ne!(fresh, "zzzz");
    server.shutdown();
}

#[test]
fn forced_504_trace_is_retained_with_tiled_phases() {
    let db = tpch_database(0.05, 2);
    let config = GenConfig::fast().with_seed(SEED);
    let schema = sqlgen_serve::Schema::build("tpch", &db, &config, None, 64);
    let server = serve(
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
            batch: 4,
            max_wait_ms: 50,
            read_timeout_ms: 2_000,
            ..ServeConfig::default()
        },
        vec![schema],
    )
    .expect("bind ephemeral port");

    let resp = client::request_full(
        server.addr(),
        "POST",
        "/generate",
        &[],
        Some(r#"{"constraint":{"min":1,"max":500},"n":2,"seed":5,"timeout_ms":0}"#),
    )
    .unwrap();
    assert_eq!(resp.status, 504, "{}", resp.body);
    let id = resp
        .header("x-request-id")
        .expect("x-request-id")
        .to_string();

    // Error traces are always retained by tail sampling; the echoed id
    // must resolve to the full span tree.
    let (status, body) =
        client::request(server.addr(), "GET", &format!("/debug/traces/{id}"), None).unwrap();
    assert_eq!(status, 200, "{body}");
    let v = serde_json::from_str::<serde_json::Value>(&body).unwrap();
    assert_eq!(v.get("id").unwrap().as_str(), Some(id.as_str()));
    assert_eq!(v.get("status").unwrap().as_u64(), Some(504));
    let wall = v.get("dur_us").unwrap().as_f64().unwrap();
    let spans = v.get("spans").unwrap().as_array().unwrap();
    let phase = |name: &str| -> (f64, f64) {
        let s = spans
            .iter()
            .find(|s| s.get("name").unwrap().as_str() == Some(name))
            .unwrap_or_else(|| panic!("missing span {name}: {body}"));
        (
            s.get("start_us").unwrap().as_f64().unwrap(),
            s.get("dur_us").unwrap().as_f64().unwrap(),
        )
    };
    let (qw_start, qw_dur) = phase("queue_wait");
    let (bg_start, bg_dur) = phase("batch_gather");
    let (le_start, le_dur) = phase("lane_exec");
    // Phases tile: each ends where the next begins, no overlap.
    assert!(qw_start + qw_dur <= bg_start + 1.0, "{body}");
    assert!(bg_start + bg_dur <= le_start + 1.0, "{body}");
    // The batcher no longer waits out `max_wait` once the queue drains, so
    // the phases are µs-scale and what's left of the wall is fixed
    // dispatch + completion-wakeup overhead — bound it absolutely (10ms
    // covers scheduler jitter) rather than as a fraction.
    let covered = qw_dur + bg_dur + le_dur;
    assert!(
        covered <= wall && wall - covered <= 10_000.0,
        "phases {covered}µs vs wall {wall}µs: {body}"
    );

    // The trace also shows up in the ring listings.
    let (status, listing) = client::request(server.addr(), "GET", "/debug/traces", None).unwrap();
    assert_eq!(status, 200);
    assert!(listing.contains(&id), "{listing}");
    let (status, _) = client::request(server.addr(), "GET", "/debug/slowest", None).unwrap();
    assert_eq!(status, 200);
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_queued_work_and_closes_listener() {
    // Legacy pool: this test pushes straight onto the per-schema queue,
    // which only the legacy batcher threads drain (the event backend
    // admits through shard queues instead; see the event drain test).
    let server = start_server_with(4, 64, true);
    let addr = server.addr();
    let schema = server.schema("tpch").unwrap();
    // Queue work directly, then shut down: every admitted task must still
    // get a reply (drain, not abort).
    let mut rxs = Vec::new();
    for seed in 0..4u64 {
        let (tx, rx) = mpsc::sync_channel(1);
        schema
            .queue
            .try_push(GenTask {
                req: GenRequest {
                    schema: String::new(),
                    constraint: Constraint::cardinality_range(1.0, 500.0),
                    n: 2,
                    seed,
                    timeout_ms: None,
                },
                deadline: None,
                enqueued: Instant::now(),
                reply: sqlgen_serve::Responder::Channel(tx),
                trace: None,
            })
            .map_err(|(e, _)| e)
            .unwrap();
        rxs.push(rx);
    }
    server.shutdown();
    for rx in rxs {
        let out = rx.try_recv().expect("queued task drained before join");
        assert_eq!(out.queries.len() + out.expired, 2);
    }
    // New work is refused: the queue is closed and the listener is gone.
    assert!(schema.queue.is_closed());
    let refused = match std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(500)) {
        Err(_) => true,
        Ok(s) => {
            // Some platforms accept briefly from the backlog; the
            // connection must be dead either way.
            use std::io::{Read, Write};
            let _ = s.shutdown(std::net::Shutdown::Both);
            drop(s);
            let mut probe = Vec::new();
            match std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(500)) {
                Err(_) => true,
                Ok(mut s2) => {
                    let _ = s2.set_read_timeout(Some(Duration::from_millis(500)));
                    let _ = s2.write_all(b"GET /healthz HTTP/1.1\r\n\r\n");
                    matches!(s2.read_to_end(&mut probe), Ok(0) | Err(_)) || probe.is_empty()
                }
            }
        }
    };
    assert!(refused, "listener still serving after shutdown");
}

#[test]
fn event_backend_drains_in_flight_requests_on_shutdown() {
    let server = start_server(4, 64);
    let addr = server.addr();
    // Admit a request over HTTP, then shut down while it may still be in
    // a shard queue or window: drain semantics say it completes.
    let worker = std::thread::spawn(move || {
        client::request(
            addr,
            "POST",
            "/generate",
            Some(r#"{"constraint":{"min":1,"max":500},"n":8,"seed":13}"#),
        )
        .expect("in-flight request answered across shutdown")
    });
    std::thread::sleep(Duration::from_millis(100));
    server.shutdown();
    let (status, body) = worker.join().unwrap();
    assert_eq!(status, 200, "{body}");
    let v = serde_json::from_str::<serde_json::Value>(&body).unwrap();
    assert_eq!(v.get("expired").unwrap().as_u64(), Some(0));
    // The listener is gone: a fresh connect must fail or yield nothing.
    std::thread::sleep(Duration::from_millis(50));
    if let Ok(mut s) = std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(300)) {
        use std::io::{Read, Write};
        let _ = s.set_read_timeout(Some(Duration::from_millis(300)));
        let _ = s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n");
        let mut probe = Vec::new();
        let dead = matches!(s.read_to_end(&mut probe), Ok(0) | Err(_)) || probe.is_empty();
        assert!(dead, "listener still serving after shutdown");
    }
}

#[test]
fn repeat_requests_hit_the_cache_with_identical_bytes() {
    let server = start_server(4, 64);
    let body = r#"{"constraint":{"metric":"cardinality","min":1,"max":500},"n":3,"seed":77}"#;
    let (status, first) = client::request(server.addr(), "POST", "/generate", Some(body)).unwrap();
    assert_eq!(status, 200, "{first}");
    let (h0, _, _) = server.cache_stats();
    let (status, second) = client::request(server.addr(), "POST", "/generate", Some(body)).unwrap();
    assert_eq!(status, 200);
    assert_eq!(first, second, "cached body must be bitwise-identical");
    let (h1, _, _) = server.cache_stats();
    assert!(h1 > h0, "second identical request must be a cache hit");
    // /models reports the cache holding at least this entry.
    let (_, models) = client::request(server.addr(), "GET", "/models", None).unwrap();
    let v = serde_json::from_str::<serde_json::Value>(&models).unwrap();
    let cache = v.get("schemas").unwrap().as_array().unwrap()[0]
        .get("cache")
        .expect("cache stats in /models")
        .clone();
    assert!(cache.get("entries").unwrap().as_u64().unwrap() >= 1);
    assert!(cache.get("bytes").unwrap().as_u64().unwrap() > 0);
    server.shutdown();
}

#[test]
fn hot_swap_invalidates_cached_responses() {
    let server = start_server(4, 64);
    let body = r#"{"constraint":{"point":50},"n":1,"seed":3}"#;
    let (status, v0) = client::request(server.addr(), "POST", "/generate", Some(body)).unwrap();
    assert_eq!(status, 200, "{v0}");
    // Warm the cache, then publish a new version: the old entry is keyed
    // on version 0 and must never satisfy a version-7 request.
    let (_, cached) = client::request(server.addr(), "POST", "/generate", Some(body)).unwrap();
    assert_eq!(v0, cached);
    let schema = server.schema("tpch").unwrap();
    let trained = schema.registry.current().actor.clone();
    schema.publish_actor("retrained", 7, trained);
    let (status, v7) = client::request(server.addr(), "POST", "/generate", Some(body)).unwrap();
    assert_eq!(status, 200, "{v7}");
    let parsed = serde_json::from_str::<serde_json::Value>(&v7).unwrap();
    assert_eq!(
        parsed.get("model_version").unwrap().as_u64(),
        Some(7),
        "stale cached response served after hot swap: {v7}"
    );
    server.shutdown();
}
