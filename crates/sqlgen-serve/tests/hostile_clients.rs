//! Hostile-client tests for the event-loop backend: slowloris header
//! trickle, oversized heads, partial-write backpressure on a tiny socket
//! buffer, and keep-alive pipelining.

#![cfg(target_os = "linux")]

use sqlgen_core::GenConfig;
use sqlgen_serve::client::{self, Client};
use sqlgen_serve::{serve, ServeConfig, ServerHandle};
use sqlgen_storage::gen::tpch_database;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

const SEED: u64 = 11;

fn start_server(config: ServeConfig) -> ServerHandle {
    let db = tpch_database(0.05, 2);
    let gen_config = GenConfig::fast().with_seed(SEED);
    let schema = sqlgen_serve::Schema::build("tpch", &db, &gen_config, None, 64);
    serve(config, vec![schema]).expect("bind ephemeral port")
}

fn base_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        batch: 4,
        ..ServeConfig::default()
    }
}

/// Reads one full HTTP/1.1 response (status line, headers, sized body)
/// from a raw buffered stream. Returns `(status, body)`.
fn read_response(reader: &mut BufReader<TcpStream>) -> std::io::Result<(u16, String)> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "closed before status line",
        ));
    }
    let status: u16 = line
        .split(' ')
        .nth(1)
        .and_then(|s| s.trim().parse().ok())
        .expect("status line");
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("content-length");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok((status, String::from_utf8(body).expect("utf-8 body")))
}

/// A client that dribbles one header byte at a time must be disconnected
/// once it exceeds the read deadline — and must not degrade service for
/// well-behaved connections sharing the loop.
#[test]
fn slowloris_header_trickle_is_closed_at_the_deadline() {
    let server = start_server(ServeConfig {
        read_timeout_ms: 300,
        ..base_config()
    });
    let addr = server.addr();

    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let head = b"GET /healthz HTTP/1.1\r\nhost: sqlgen\r\n\r\n";
    let started = Instant::now();
    let mut closed = false;
    for byte in head.iter() {
        if s.write_all(std::slice::from_ref(byte)).is_err() {
            closed = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(40));
        // A healthy request on a fresh connection keeps working while the
        // trickler is being starved out.
        if started.elapsed() > Duration::from_millis(200)
            && started.elapsed().as_millis().is_multiple_of(2)
        {
            let (status, _) = client::request(addr, "GET", "/healthz", None).unwrap();
            assert_eq!(status, 200);
        }
        if started.elapsed() > Duration::from_secs(5) {
            break;
        }
    }
    if !closed {
        // Writes may succeed into the kernel buffer after the server hangs
        // up; the read side observes the close (EOF or reset).
        let mut buf = [0u8; 64];
        closed = matches!(s.read(&mut buf), Ok(0) | Err(_));
    }
    assert!(closed, "slowloris connection was not closed");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "trickler survived far past the read deadline"
    );
    server.shutdown();
}

/// A head that never terminates is cut off at `max_head` with 413 — the
/// per-connection buffer is bounded, not grow-until-OOM.
#[test]
fn unterminated_giant_head_is_bounded_and_rejected() {
    let server = start_server(base_config());
    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(b"GET /healthz HTTP/1.1\r\n").unwrap();
    // 64 KiB of header bytes with no terminating blank line — far past
    // the 8 KiB head budget.
    let filler = format!("x-filler: {}\r\n", "a".repeat(1022));
    for _ in 0..64 {
        if s.write_all(filler.as_bytes()).is_err() {
            break; // server already hung up — also a pass
        }
    }
    let mut resp = String::new();
    let _ = s.read_to_string(&mut resp);
    assert!(
        resp.is_empty() || resp.starts_with("HTTP/1.1 413"),
        "expected 413 or close, got {resp:?}"
    );
    server.shutdown();
}

/// With a tiny kernel send buffer the response cannot be written in one
/// syscall; the event loop must park the remainder behind EPOLLOUT and
/// finish once the client drains. The full body must still arrive intact.
#[test]
fn partial_write_backpressure_completes_large_responses() {
    let server = start_server(ServeConfig {
        sndbuf: Some(4_096),
        ..base_config()
    });
    let stream = TcpStream::connect(server.addr()).unwrap();
    {
        use std::os::fd::AsRawFd;
        // Shrink the client's receive window too so the in-flight data the
        // kernel will absorb stays well under the response size.
        let _ = sqlgen_serve::sys::set_recv_buffer(stream.as_raw_fd(), 4_096);
    }
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let body = r#"{"constraint":{"min":1,"max":500},"n":192,"seed":9}"#;
    let msg = format!(
        "POST /generate HTTP/1.1\r\nhost: sqlgen\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    writer.write_all(msg.as_bytes()).unwrap();
    // Let the response land in the (tiny) socket buffers while we refuse
    // to read: the server's write stalls part-way and must resume.
    std::thread::sleep(Duration::from_millis(500));
    let mut reader = BufReader::new(stream);
    let (status, resp) = read_response(&mut reader).unwrap();
    assert_eq!(status, 200, "{resp}");
    let v = serde_json::from_str::<serde_json::Value>(&resp).unwrap();
    assert_eq!(
        v.get("queries").unwrap().as_array().unwrap().len(),
        192,
        "truncated or reordered body"
    );
    server.shutdown();
}

/// Three requests in a single write — two of them `/generate` with
/// different seeds — come back as three responses, in order, each
/// byte-identical to the same request issued alone.
#[test]
fn pipelined_requests_are_answered_in_order() {
    let server = start_server(base_config());
    let addr = server.addr();
    let gen1 = r#"{"constraint":{"point":50},"n":1,"seed":1}"#;
    let gen2 = r#"{"constraint":{"point":50},"n":1,"seed":2}"#;

    // References, one request per connection.
    let (_, want1) = client::request(addr, "POST", "/generate", Some(gen1)).unwrap();
    let (_, want2) = client::request(addr, "POST", "/generate", Some(gen2)).unwrap();
    assert_ne!(want1, want2, "seeds must produce distinct responses");

    let mut pipelined = String::new();
    pipelined.push_str("GET /healthz HTTP/1.1\r\nhost: sqlgen\r\ncontent-length: 0\r\n\r\n");
    for body in [gen1, gen2] {
        pipelined.push_str(&format!(
            "POST /generate HTTP/1.1\r\nhost: sqlgen\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        ));
    }
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    writer.write_all(pipelined.as_bytes()).unwrap();

    let mut reader = BufReader::new(stream);
    let (s0, b0) = read_response(&mut reader).unwrap();
    assert_eq!(s0, 200, "{b0}");
    assert!(b0.contains("ok"), "healthz first: {b0}");
    let (s1, b1) = read_response(&mut reader).unwrap();
    assert_eq!(s1, 200, "{b1}");
    assert_eq!(
        b1, want1,
        "first generate out of order or non-deterministic"
    );
    let (s2, b2) = read_response(&mut reader).unwrap();
    assert_eq!(s2, 200, "{b2}");
    assert_eq!(b2, want2, "second generate out of order");

    // And the same keep-alive connection still works for a follow-up.
    let mut c = Client::connect(addr, Duration::from_secs(10)).unwrap();
    let (status, _) = c.request("GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);
    server.shutdown();
}
