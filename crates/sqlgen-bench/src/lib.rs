//! Experiment harness shared by the per-figure binaries.
//!
//! `DESIGN.md` maps each paper figure to one binary in `src/bin/`:
//!
//! | Figure | Binary |
//! |--------|--------|
//! | 4      | `fig4_accuracy_cardinality` |
//! | 5      | `fig5_accuracy_cost` |
//! | 6      | `fig6_efficiency_cardinality` |
//! | 7      | `fig7_efficiency_cost` |
//! | 8      | `fig8_rl_comparison` |
//! | 9      | `fig9_meta_critic` |
//! | 10     | `fig10_query_distribution` |
//! | 11     | `fig11_complicated_queries` |
//! | 12     | `fig12_sample_size` |
//!
//! Every binary accepts `--n <queries>`, `--scale <sf>`, `--seed <u64>`,
//! `--train <episodes>` and `--quick`, prints the paper's rows as a
//! markdown table and writes a CSV under `results/`.

pub mod args;
pub mod methods;
pub mod table;

pub use args::HarnessArgs;
pub use methods::{MethodResult, TestBed};
pub use table::{write_csv, Table};
