//! Minimal command-line flag parsing for the experiment binaries
//! (avoids pulling `clap` into the allowed dependency set).

/// Flags shared by every figure binary.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Queries per cell (the paper uses N = 1000; we default lower).
    pub n: usize,
    /// Data scale factor.
    pub scale: f64,
    pub seed: u64,
    /// Training episodes for the learned method.
    pub train: usize,
    /// Worker threads for episode collection (1 = exact serial behaviour).
    pub threads: usize,
    /// Lockstep inference lanes (1 = exact serial behaviour).
    pub batch: usize,
    /// Quick mode: shrink everything for a smoke run.
    pub quick: bool,
    /// Restrict to one benchmark (tpch/job/xuetang); `None` = all.
    pub benchmark: Option<String>,
    /// Write observability events to this JSONL file.
    pub trace: Option<String>,
    /// Print the end-of-run metrics summary table.
    pub metrics: bool,
    /// Suppress informational progress output.
    pub quiet: bool,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            n: 200,
            scale: 0.3,
            seed: 42,
            train: 400,
            threads: 1,
            batch: 1,
            quick: false,
            benchmark: None,
            trace: None,
            metrics: false,
            quiet: false,
        }
    }
}

impl HarnessArgs {
    /// Parses `std::env::args()`; panics with a usage message on bad input.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    pub fn parse_from<I: IntoIterator<Item = String>>(iter: I) -> Self {
        let mut args = HarnessArgs::default();
        let mut it = iter.into_iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| -> String {
                it.next()
                    .unwrap_or_else(|| panic!("flag {name} needs a value"))
            };
            match flag.as_str() {
                "--n" => args.n = value("--n").parse().expect("--n: integer"),
                "--scale" => args.scale = value("--scale").parse().expect("--scale: float"),
                "--seed" => args.seed = value("--seed").parse().expect("--seed: integer"),
                "--train" => args.train = value("--train").parse().expect("--train: integer"),
                "--threads" => {
                    args.threads = value("--threads").parse().expect("--threads: integer");
                    args.threads = args.threads.max(1);
                }
                "--batch" => {
                    args.batch = value("--batch").parse().expect("--batch: integer");
                    args.batch = args.batch.max(1);
                }
                "--benchmark" => args.benchmark = Some(value("--benchmark")),
                "--quick" => args.quick = true,
                "--trace" => args.trace = Some(value("--trace")),
                "--metrics" => args.metrics = true,
                "--quiet" | "-q" => args.quiet = true,
                "--help" | "-h" => {
                    println!(
                        "flags: --n <queries> --scale <sf> --seed <u64> \
                         --train <episodes> --threads <workers> \
                         --batch <lanes> \
                         --benchmark <tpch|job|xuetang> --quick \
                         --trace <path.jsonl> --metrics --quiet"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other} (try --help)"),
            }
        }
        if args.quick {
            args.n = args.n.min(40);
            args.train = args.train.min(120);
            args.scale = args.scale.min(0.15);
        }
        args
    }

    /// Applies the observability flags: call once at the top of `main`.
    pub fn init_obs(&self) {
        if self.quiet {
            sqlgen_obs::set_level(sqlgen_obs::Level::Warn);
        }
        if self.metrics {
            sqlgen_obs::enable_metrics();
        }
        if let Some(path) = &self.trace {
            match sqlgen_obs::JsonlSink::create(std::path::Path::new(path)) {
                Ok(sink) => sqlgen_obs::install_sink(std::sync::Arc::new(sink)),
                Err(e) => {
                    sqlgen_obs::obs_error!("cannot create trace file {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
    }

    /// Flushes the observability flags: call once at the end of `main`.
    pub fn finish_obs(&self) {
        if self.metrics {
            sqlgen_obs::metrics::summary_table().print();
        }
        if self.trace.is_some() {
            sqlgen_obs::metrics::emit_summary_events();
            sqlgen_obs::clear_sink();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> HarnessArgs {
        HarnessArgs::parse_from(s.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_and_overrides() {
        let a = parse(&[]);
        assert_eq!(a.n, 200);
        let a = parse(&["--n", "50", "--seed", "7", "--scale", "1.5"]);
        assert_eq!(a.n, 50);
        assert_eq!(a.seed, 7);
        assert!((a.scale - 1.5).abs() < 1e-12);
        assert_eq!(a.threads, 1);
        let a = parse(&["--threads", "4"]);
        assert_eq!(a.threads, 4);
        // 0 is clamped to the serial path rather than rejected.
        assert_eq!(parse(&["--threads", "0"]).threads, 1);
        assert_eq!(a.batch, 1);
        assert_eq!(parse(&["--batch", "8"]).batch, 8);
        assert_eq!(parse(&["--batch", "0"]).batch, 1);
    }

    #[test]
    fn quick_mode_shrinks() {
        let a = parse(&["--quick"]);
        assert!(a.n <= 40 && a.train <= 120);
    }

    #[test]
    fn benchmark_filter() {
        let a = parse(&["--benchmark", "tpch"]);
        assert_eq!(a.benchmark.as_deref(), Some("tpch"));
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn rejects_unknown() {
        parse(&["--bogus"]);
    }
}
