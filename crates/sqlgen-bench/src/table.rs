//! Markdown table printing and CSV output for the experiment binaries.
//!
//! The implementation moved to `sqlgen_obs::table` so the metrics summary
//! and the figure binaries share one renderer; this module re-exports it to
//! keep existing `sqlgen_bench::table::*` paths working.

pub use sqlgen_obs::table::*;
