//! Unified method runners: LearnedSQLGen vs the two baselines, measured the
//! way the paper measures them (§7.1):
//!
//! * **accuracy** — generate `n` queries, report the satisfied fraction;
//! * **efficiency** — wall-clock time to collect `n` satisfied queries,
//!   *including* the learned method's training phase (satisfied queries
//!   discovered during training count toward the target, as in the paper).

use sqlgen_baselines::{RandomGen, TemplateGen};
use sqlgen_core::{Algorithm, GenConfig, LearnedSqlGen, RefineConfig};
use sqlgen_engine::Estimator;
use sqlgen_fsm::{FsmConfig, Vocabulary};
use sqlgen_rl::{Constraint, NetConfig, SqlGenEnv, TrainConfig};
use sqlgen_storage::gen::Benchmark;
use sqlgen_storage::sample::SampleConfig;
use sqlgen_storage::Database;
use std::time::Instant;

/// A prepared benchmark instance: data + action space + statistics.
pub struct TestBed {
    pub benchmark: Benchmark,
    pub db: Database,
    pub vocab: Vocabulary,
    pub est: Estimator,
    pub seed: u64,
}

impl TestBed {
    pub fn new(benchmark: Benchmark, scale: f64, seed: u64) -> Self {
        Self::with_sample(benchmark, scale, seed, SampleConfig::default())
    }

    pub fn with_sample(benchmark: Benchmark, scale: f64, seed: u64, sample: SampleConfig) -> Self {
        let db = benchmark.build(scale, seed);
        let vocab = Vocabulary::build(&db, &sample);
        let est = Estimator::build(&db);
        TestBed {
            benchmark,
            db,
            vocab,
            est,
            seed,
        }
    }

    pub fn env(&self, constraint: Constraint) -> SqlGenEnv<'_> {
        SqlGenEnv::new(&self.vocab, &self.est, constraint)
    }

    pub fn env_with(&self, constraint: Constraint, fsm: FsmConfig) -> SqlGenEnv<'_> {
        SqlGenEnv::new(&self.vocab, &self.est, constraint).with_fsm_config(fsm)
    }
}

/// One method's outcome for one experiment cell.
#[derive(Debug, Clone)]
pub struct MethodResult {
    pub method: &'static str,
    pub accuracy: f64,
    pub seconds: f64,
    pub satisfied: usize,
    pub attempts: usize,
}

/// The experiment-grade generator configuration (smaller than the paper's
/// GPU-scale nets, same shape; see DESIGN.md scale note).
pub fn harness_gen_config(seed: u64) -> GenConfig {
    GenConfig {
        sample: SampleConfig::default(),
        // One extra join vs the library default: large-cardinality point
        // constraints are only reachable through fact-fact join chains.
        fsm: FsmConfig {
            max_joins: 3,
            ..FsmConfig::default()
        },
        train: TrainConfig {
            net: NetConfig {
                embed_dim: 24,
                hidden: 24,
                layers: 2,
                dropout: 0.1,
            },
            seed,
            ..Default::default()
        },
        algorithm: Algorithm::ActorCritic,
        default_train_episodes: 400,
        threads: 1,
        batch_size: 1,
        quantize: false,
        refine: RefineConfig::default(),
        reward_source: sqlgen_core::RewardSource::default(),
    }
}

/// LearnedSQLGen accuracy run: train, then generate `n`, report accuracy.
pub fn learned_accuracy(
    bed: &TestBed,
    constraint: Constraint,
    train_episodes: usize,
    n: usize,
    threads: usize,
) -> MethodResult {
    let start = Instant::now();
    let mut cfg = harness_gen_config(bed.seed).with_threads(threads);
    cfg.sample = SampleConfig {
        k: 100,
        ..Default::default()
    };
    let mut g = LearnedSqlGen::new(&bed.db, constraint, cfg);
    g.train(train_episodes);
    let qs = g.generate(n);
    let satisfied = qs.iter().filter(|q| q.satisfied).count();
    MethodResult {
        method: "LearnedSQLGen",
        accuracy: satisfied as f64 / n.max(1) as f64,
        seconds: start.elapsed().as_secs_f64(),
        satisfied,
        attempts: n,
    }
}

/// SQLSmith accuracy run: `n` random queries.
pub fn random_accuracy(bed: &TestBed, constraint: Constraint, n: usize) -> MethodResult {
    let env = bed.env(constraint);
    let mut g = RandomGen::new(bed.seed ^ 0x51);
    let start = Instant::now();
    let accuracy = g.accuracy(&env, n);
    MethodResult {
        method: "SQLSmith",
        accuracy,
        seconds: start.elapsed().as_secs_f64(),
        satisfied: (accuracy * n as f64).round() as usize,
        attempts: n,
    }
}

/// Template accuracy run: `n` tuning attempts.
pub fn template_accuracy(bed: &TestBed, constraint: Constraint, n: usize) -> MethodResult {
    let env = bed.env(constraint);
    let mut g = TemplateGen::from_rollouts(&bed.vocab, &env.fsm_config, 16, bed.seed ^ 0x7e);
    let start = Instant::now();
    let accuracy = g.accuracy(&env, n);
    MethodResult {
        method: "Template",
        accuracy,
        seconds: start.elapsed().as_secs_f64(),
        satisfied: (accuracy * n as f64).round() as usize,
        attempts: n,
    }
}

/// Efficiency runs: time to collect `n` satisfied queries (training
/// included for the learned method). When the attempt budget runs out with
/// `0 < m < n` found, the time is linearly extrapolated to `n`; with
/// `m = 0` the time is `+inf` ("n/a" in the tables).
pub fn learned_efficiency(
    bed: &TestBed,
    constraint: Constraint,
    train_episodes: usize,
    n: usize,
    threads: usize,
) -> MethodResult {
    let start = Instant::now();
    let mut cfg = harness_gen_config(bed.seed).with_threads(threads);
    cfg.sample = SampleConfig {
        k: 100,
        ..Default::default()
    };
    let mut g = LearnedSqlGen::new(&bed.db, constraint, cfg);
    g.train(train_episodes);
    let found_in_training = g.stats.satisfied_during_training.len().min(n);
    let remaining = n - found_in_training;
    let (found, attempts) = g.generate_satisfied(remaining, budget(n));
    let satisfied = found_in_training + found.len();
    finish(
        "LearnedSQLGen",
        start,
        satisfied,
        n,
        train_episodes + attempts,
    )
}

pub fn random_efficiency(bed: &TestBed, constraint: Constraint, n: usize) -> MethodResult {
    let env = bed.env(constraint);
    let mut g = RandomGen::new(bed.seed ^ 0x51);
    let start = Instant::now();
    let (found, attempts) = g.find_satisfied(&env, n, budget(n));
    finish("SQLSmith", start, found.len(), n, attempts)
}

pub fn template_efficiency(bed: &TestBed, constraint: Constraint, n: usize) -> MethodResult {
    let env = bed.env(constraint);
    let mut g = TemplateGen::from_rollouts(&bed.vocab, &env.fsm_config, 16, bed.seed ^ 0x7e);
    let start = Instant::now();
    let (found, attempts) = g.find_satisfied(&env, n, budget(n));
    finish("Template", start, found.len(), n, attempts)
}

fn budget(n: usize) -> usize {
    (n * 200).max(2_000)
}

fn finish(
    method: &'static str,
    start: Instant,
    satisfied: usize,
    target: usize,
    attempts: usize,
) -> MethodResult {
    let elapsed = start.elapsed().as_secs_f64();
    let seconds = if satisfied >= target {
        elapsed
    } else if satisfied > 0 {
        elapsed * target as f64 / satisfied as f64
    } else {
        f64::INFINITY
    };
    MethodResult {
        method,
        accuracy: satisfied as f64 / attempts.max(1) as f64,
        seconds,
        satisfied,
        attempts,
    }
}
