//! Figure 9: generalizing to new constraints — Scratch vs AC-extend vs
//! MetaCritic.
//!
//! Paper setup (on XueTang): pre-train on K uniform sub-ranges of a
//! cardinality domain, then adapt to unseen constraints inside the domain.
//! Reports (a) accuracy after adaptation, (b) adaptation time to N
//! satisfied queries, (c) the accuracy-vs-epoch adaptation trace.

use sqlgen_bench::table::{pct, secs};
use sqlgen_bench::{write_csv, HarnessArgs, Table, TestBed};
use sqlgen_rl::{
    AcExtend, ActorCritic, Constraint, MetaCriticTrainer, NetConfig, SqlGenEnv, TrainConfig,
};
use sqlgen_storage::gen::Benchmark;
use std::time::Instant;

// The paper uses [10k, 20k] on 24 GB XueTang; at our scale the well-covered
// cardinality region is lower, so the domain keeps the same relative width
// (5 tasks, adapt on boundary-straddling sub-ranges) shifted down.
const DOMAIN: (f64, f64) = (200.0, 2_200.0);
const PRETRAIN_TASKS: usize = 5;

fn train_cfg(seed: u64) -> TrainConfig {
    TrainConfig {
        net: NetConfig {
            embed_dim: 24,
            hidden: 24,
            layers: 2,
            dropout: 0.1,
        },
        seed,
        ..Default::default()
    }
}

/// The pre-training tasks: uniform sub-ranges of the domain.
fn pretrain_constraints() -> Vec<Constraint> {
    let width = (DOMAIN.1 - DOMAIN.0) / PRETRAIN_TASKS as f64;
    (0..PRETRAIN_TASKS)
        .map(|i| {
            let lo = DOMAIN.0 + i as f64 * width;
            Constraint::cardinality_range(lo, lo + width)
        })
        .collect()
}

/// Unseen tasks: ranges straddling the pre-training boundaries.
fn new_constraints() -> Vec<Constraint> {
    let width = (DOMAIN.1 - DOMAIN.0) / PRETRAIN_TASKS as f64;
    (0..4)
        .map(|i| {
            let center = DOMAIN.0 + (i as f64 + 1.0) * width;
            Constraint::cardinality_range(center - width / 4.0, center + width / 4.0)
        })
        .collect()
}

struct AdaptResult {
    accuracy: f64,
    seconds: f64,
    trace: Vec<f32>,
}

fn evaluate<F: FnMut(&SqlGenEnv) -> sqlgen_rl::Episode>(
    env: &SqlGenEnv,
    n: usize,
    mut gen: F,
) -> f64 {
    let mut hits = 0;
    for _ in 0..n {
        if gen(env).satisfied {
            hits += 1;
        }
    }
    hits as f64 / n as f64
}

/// Adaptation loop: train for `episodes`, record the reward trace and the
/// time at which the n-th satisfied query appeared.
fn adapt<F: FnMut(&SqlGenEnv) -> sqlgen_rl::Episode>(
    env: &SqlGenEnv,
    episodes: usize,
    n: usize,
    mut train: F,
) -> (f64, Vec<f32>) {
    let start = Instant::now();
    let mut trace = Vec::with_capacity(episodes);
    let mut found = 0usize;
    let mut seconds = f64::INFINITY;
    for _ in 0..episodes {
        let ep = train(env);
        trace.push(ep.total_reward() / ep.len().max(1) as f32);
        if ep.satisfied {
            found += 1;
            if found == n && !seconds.is_finite() {
                seconds = start.elapsed().as_secs_f64();
            }
        }
    }
    if !seconds.is_finite() && found > 0 {
        seconds = start.elapsed().as_secs_f64() * n as f64 / found as f64;
    }
    (seconds, trace)
}

fn main() {
    let args = HarnessArgs::parse();
    args.init_obs();
    let benchmark = match args.benchmark.as_deref() {
        Some(s) => s.parse().expect("benchmark name"),
        None => Benchmark::XueTang,
    };
    sqlgen_obs::obs_info!("[fig9] preparing {} ...", benchmark.name());
    let bed = TestBed::new(benchmark, args.scale, args.seed);
    let pretrain = pretrain_constraints();
    let adapt_episodes = args.train;
    let pre_episodes = args.train / 2;

    // Pre-train MetaCritic across the K tasks.
    sqlgen_obs::obs_info!("[fig9] pre-training MetaCritic on {PRETRAIN_TASKS} tasks ...");
    let mut meta = MetaCriticTrainer::new(bed.vocab.size(), pretrain.clone(), train_cfg(args.seed));
    for round in 0..pre_episodes {
        for (i, &c) in pretrain.iter().enumerate() {
            let env = bed.env(c);
            meta.train_task(i, &env);
        }
        if round % 50 == 0 {
            sqlgen_obs::obs_info!("[fig9]   meta pre-train round {round}/{pre_episodes}");
        }
    }

    // Pre-train AC-extend on the same tasks (shared nets, bucket-token
    // conditioned).
    sqlgen_obs::obs_info!("[fig9] pre-training AC-extend ...");
    let mut ace = AcExtend::new(bed.vocab.size(), train_cfg(args.seed ^ 1), DOMAIN);
    for _ in 0..pre_episodes {
        for &c in &pretrain {
            let env = bed.env(c);
            ace.train_episode(&env);
        }
    }

    let mut acc_table = Table::new(
        format!(
            "Figure 9(a) — Accuracy on new constraints (N={}, {}, adapt={adapt_episodes} eps)",
            args.n,
            benchmark.name()
        ),
        &["constraint", "Scratch", "AC-extend", "MetaCritic"],
    );
    let mut time_table = Table::new(
        format!(
            "Figure 9(b) — Adaptation time to {} satisfied queries",
            args.n
        ),
        &["constraint", "Scratch", "AC-extend", "MetaCritic"],
    );
    let mut traces: Vec<(Vec<f32>, Vec<f32>, Vec<f32>)> = Vec::new();

    for c in new_constraints() {
        let label = format!(
            "Card in [{:.1}k, {:.1}k]",
            match c.target {
                sqlgen_rl::Target::Range(lo, _) => lo / 1e3,
                _ => unreachable!(),
            },
            match c.target {
                sqlgen_rl::Target::Range(_, hi) => hi / 1e3,
                _ => unreachable!(),
            }
        );
        sqlgen_obs::obs_info!("[fig9] adapting to {label}");
        let env = bed.env(c);

        // Scratch: fresh actor-critic.
        let mut scratch = ActorCritic::new(bed.vocab.size(), train_cfg(args.seed ^ 2));
        let (sec_scratch, trace_scratch) =
            adapt(&env, adapt_episodes, args.n, |e| scratch.train_episode(e));
        let acc_scratch = evaluate(&env, args.n, |e| scratch.generate(e));
        let r_scratch = AdaptResult {
            accuracy: acc_scratch,
            seconds: sec_scratch,
            trace: trace_scratch,
        };

        // AC-extend: continue training the shared nets on the new bucket.
        let (sec_ace, trace_ace) = adapt(&env, adapt_episodes, args.n, |e| ace.train_episode(e));
        let acc_ace = evaluate(&env, args.n, |e| ace.generate(e));
        let r_ace = AdaptResult {
            accuracy: acc_ace,
            seconds: sec_ace,
            trace: trace_ace,
        };

        // MetaCritic: new actor, warm shared critic.
        let task = meta.add_task(bed.vocab.size(), c);
        let (sec_meta, trace_meta) =
            adapt(&env, adapt_episodes, args.n, |e| meta.train_task(task, e));
        let acc_meta = evaluate(&env, args.n, |e| meta.generate(task, e));
        let r_meta = AdaptResult {
            accuracy: acc_meta,
            seconds: sec_meta,
            trace: trace_meta,
        };

        acc_table.row(vec![
            label.clone(),
            pct(r_scratch.accuracy),
            pct(r_ace.accuracy),
            pct(r_meta.accuracy),
        ]);
        time_table.row(vec![
            label,
            secs(r_scratch.seconds),
            secs(r_ace.seconds),
            secs(r_meta.seconds),
        ]);
        traces.push((r_scratch.trace, r_ace.trace, r_meta.trace));
    }

    acc_table.print();
    time_table.print();
    write_csv(&acc_table, "fig9a_accuracy");
    write_csv(&time_table, "fig9b_time");

    // Figure 9(c): adaptation reward trace on the first new task.
    let mut trace_table = Table::new(
        "Figure 9(c) — Average reward per adaptation epoch (first new task)",
        &["epoch", "Scratch", "AC-extend", "MetaCritic"],
    );
    let (ts, ta, tm) = &traces[0];
    let bucket = 10usize;
    let avg = |t: &[f32], i: usize| -> f32 {
        let c = &t[i * bucket..((i + 1) * bucket).min(t.len())];
        c.iter().sum::<f32>() / c.len().max(1) as f32
    };
    for i in 0..ts.len() / bucket {
        trace_table.row(vec![
            format!("{}", i * bucket),
            format!("{:.4}", avg(ts, i)),
            format!("{:.4}", avg(ta, i)),
            format!("{:.4}", avg(tm, i)),
        ]);
    }
    trace_table.print();
    write_csv(&trace_table, "fig9c_adaptation_trace");
    args.finish_obs();
}
