//! Paged-storage benchmark: out-of-core equivalence and execution rewards.
//!
//! Two phases, both reported in `BENCH_storage.json` (written to `--out`,
//! default: current directory):
//!
//! 1. **Scan** — streams a TPC-H image of `--db-mib` MiB (default 64) to
//!    disk via [`PagedDbWriter`] (bounded memory), rebuilds the same scale
//!    in memory, and compares every cell through a `--pool-mib` (default 4)
//!    buffer pool in row-major order. The file must be at least 10x the
//!    pool, every value must be bitwise identical (floats compared by
//!    bits), the pool must evict, and the row-major hit-rate must clear
//!    0.5 — any violation exits non-zero, which is what the CI storage
//!    smoke step relies on.
//! 2. **Reward** — trains a generator against the *paged* image with
//!    `RewardSource::Execute` (real cardinalities within the default
//!    budget, estimator fallback on budget misses), then replays the
//!    generated queries measuring estimator-vs-execution q-error
//!    (p50/p90/p99/max/mean) and reward agreement — the fraction of
//!    queries where the constraint verdict is the same under the estimate
//!    and the true count. Pool counters are reset before the phase so
//!    `pages_read` attributes I/O to execution alone.
//!
//! The scan image is calibrated: a small probe build measures bytes/scale
//! and the target scale is extrapolated linearly (row counts scale
//! linearly). `--smoke` shrinks the reward phase (the scan phase keeps its
//! full size — the 10x working-set pressure *is* the test). All other
//! flags are the shared harness flags (`--help`).

use sqlgen_bench::methods::harness_gen_config;
use sqlgen_bench::HarnessArgs;
use sqlgen_core::{ExecBudget, ExecDb, LearnedSqlGen};
use sqlgen_engine::{Estimator, ExecOptions};
use sqlgen_rl::Constraint;
use sqlgen_storage::gen::Benchmark;
use sqlgen_storage::{DbRead, PagedDb, PagedDbWriter, TableRead, Value};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

const MIB: f64 = (1 << 20) as f64;

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "sqlgen-bench-storage-{tag}-{}.db",
        std::process::id()
    ))
}

/// Streams `benchmark` at `scale` into a fresh paged file; returns bytes.
fn build_paged(benchmark: Benchmark, scale: f64, seed: u64, path: &PathBuf) -> u64 {
    let mut w = PagedDbWriter::create(path).expect("create paged file");
    benchmark
        .build_into(scale, seed, &mut w)
        .and_then(|()| w.finish())
        .unwrap_or_else(|e| panic!("paged build failed: {e}"));
    std::fs::metadata(path).expect("stat paged file").len()
}

/// Bitwise value equality: floats by bit pattern (SQL-semantic `==` treats
/// NaN/NULL as never equal, which is wrong for storage equivalence).
fn bits_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        (Value::Null, Value::Null) => true,
        _ => a == b,
    }
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

struct ScanPhase {
    scale: f64,
    file_bytes: u64,
    pool_bytes: usize,
    rows: u64,
    values_compared: u64,
    mismatches: u64,
    seconds: f64,
    hits: u64,
    misses: u64,
    evictions: u64,
    hit_rate: f64,
}

/// Builds the big image, reopens it behind a small pool, and compares every
/// cell against the in-memory build in row-major order.
fn run_scan(seed: u64, target_bytes: u64, pool_bytes: usize, path: &PathBuf) -> ScanPhase {
    // Calibrate bytes/scale with a small probe build, then extrapolate.
    // Fixed-size tables (nation/region) make growth sublinear, so correct
    // the scale against the measured size until the target is reached.
    const PROBE_SCALE: f64 = 0.1;
    let probe_bytes = build_paged(Benchmark::TpcH, PROBE_SCALE, seed, path);
    let mut scale = (target_bytes as f64 / (probe_bytes as f64 / PROBE_SCALE)).max(PROBE_SCALE);
    sqlgen_obs::obs_info!(
        "[storage] probe {:.1} MiB at scale {PROBE_SCALE} -> target scale {scale:.2}",
        probe_bytes as f64 / MIB
    );
    let start = Instant::now();
    let mut file_bytes = build_paged(Benchmark::TpcH, scale, seed, path);
    for _ in 0..3 {
        if file_bytes as f64 >= target_bytes as f64 * 0.98 {
            break;
        }
        scale *= target_bytes as f64 / file_bytes as f64;
        file_bytes = build_paged(Benchmark::TpcH, scale, seed, path);
    }
    let build_secs = start.elapsed().as_secs_f64();
    let mem = Benchmark::TpcH.build(scale, seed);
    let paged = PagedDb::open(path, pool_bytes).unwrap_or_else(|e| panic!("open paged: {e}"));
    paged
        .verify()
        .unwrap_or_else(|e| panic!("verify failed: {e}"));
    sqlgen_obs::obs_info!(
        "[storage] built {:.1} MiB ({} rows) in {build_secs:.1}s, pool {:.1} MiB",
        file_bytes as f64 / MIB,
        paged.total_rows(),
        pool_bytes as f64 / MIB
    );

    paged.reset_pool_stats();
    let start = Instant::now();
    let mut values = 0u64;
    let mut mismatches = 0u64;
    for name in mem.table_names() {
        let mt = mem.table(name).expect("listed table exists");
        let dt = paged.read_table(name).expect("paged table exists");
        if TableRead::row_count(dt) != mt.row_count() {
            mismatches += 1;
            continue;
        }
        let cols = mt.schema.columns.len();
        for r in 0..mt.row_count() {
            for c in 0..cols {
                if !bits_eq(&mt.columns[c].get(r), &dt.value(c, r)) {
                    mismatches += 1;
                }
                values += 1;
            }
        }
    }
    let seconds = start.elapsed().as_secs_f64();
    let stats = paged.pool_stats();
    ScanPhase {
        scale,
        file_bytes,
        pool_bytes,
        rows: paged.total_rows(),
        values_compared: values,
        mismatches,
        seconds,
        hits: stats.hits,
        misses: stats.misses,
        evictions: stats.evictions,
        hit_rate: stats.hit_rate(),
    }
}

struct RewardPhase {
    scale: f64,
    episodes: usize,
    queries: usize,
    executed: usize,
    fallbacks: usize,
    reward_agreement: f64,
    pages_read: u64,
    pool_hits: u64,
    qerr_count: usize,
    qerr_mean: f64,
    qerr_p50: f64,
    qerr_p90: f64,
    qerr_p99: f64,
    qerr_max: f64,
}

/// Trains with execution rewards against the paged image and measures the
/// estimator-vs-execution q-error of the queries it then generates.
fn run_reward(
    seed: u64,
    scale: f64,
    episodes: usize,
    queries: usize,
    pool_bytes: usize,
    path: &PathBuf,
) -> RewardPhase {
    build_paged(Benchmark::TpcH, scale, seed, path);
    let paged = PagedDb::open(path, pool_bytes).unwrap_or_else(|e| panic!("open paged: {e}"));
    let estimator = Estimator::from_stats(paged.table_stats());
    let exec_db = Arc::new(ExecDb::Paged(paged));
    let constraint = Constraint::cardinality_range(10.0, 5_000.0);
    let config = harness_gen_config(seed).with_execute_rewards(ExecBudget::default());
    let mut g = LearnedSqlGen::from_exec_db(exec_db.clone(), constraint, config);
    let start = Instant::now();
    g.train(episodes);
    sqlgen_obs::obs_info!(
        "[storage] trained {episodes} episodes with execution rewards in {:.1}s",
        start.elapsed().as_secs_f64()
    );
    let qs = g.generate_seeded(queries, seed);

    let paged = exec_db.as_paged().expect("exec db is paged");
    paged.reset_pool_stats();
    let opts = ExecOptions {
        max_rows: 5_000_000,
        deadline: None,
    };
    let mut qerrs = Vec::with_capacity(qs.len());
    let mut executed = 0usize;
    let mut fallbacks = 0usize;
    let mut agree = 0usize;
    for q in &qs {
        let est = estimator.cardinality(&q.statement);
        match exec_db.cardinality(&q.statement, opts.clone()) {
            Ok(real) => {
                executed += 1;
                let (a, b) = (est.max(1.0), (real as f64).max(1.0));
                qerrs.push(a.max(b) / a.min(b));
                if constraint.satisfied(est) == constraint.satisfied(real as f64) {
                    agree += 1;
                }
            }
            Err(_) => fallbacks += 1,
        }
    }
    let replay_stats = paged.pool_stats();
    let pages_read = replay_stats.misses;
    let pool_hits = replay_stats.hits;
    qerrs.sort_by(f64::total_cmp);
    let mean = if qerrs.is_empty() {
        0.0
    } else {
        qerrs.iter().sum::<f64>() / qerrs.len() as f64
    };
    RewardPhase {
        scale,
        episodes,
        queries: qs.len(),
        executed,
        fallbacks,
        reward_agreement: agree as f64 / executed.max(1) as f64,
        pages_read,
        pool_hits,
        qerr_count: qerrs.len(),
        qerr_mean: mean,
        qerr_p50: percentile(&qerrs, 0.50),
        qerr_p90: percentile(&qerrs, 0.90),
        qerr_p99: percentile(&qerrs, 0.99),
        qerr_max: qerrs.last().copied().unwrap_or(0.0),
    }
}

fn main() {
    let mut smoke = false;
    let mut out_dir = String::from(".");
    let mut db_mib = 64usize;
    let mut pool_mib = 4usize;
    let mut rest = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out_dir = it.next().expect("--out needs a value"),
            "--db-mib" => {
                db_mib = it
                    .next()
                    .expect("--db-mib needs a value")
                    .parse()
                    .expect("--db-mib: integer");
            }
            "--pool-mib" => {
                pool_mib = it
                    .next()
                    .expect("--pool-mib needs a value")
                    .parse()
                    .expect("--pool-mib: integer");
            }
            _ => rest.push(a),
        }
    }
    let mut args = HarnessArgs::parse_from(rest);
    if smoke {
        args.train = args.train.min(40);
        args.n = args.n.min(20);
    }
    args.init_obs();

    let target_bytes = (db_mib as u64) << 20;
    let pool_bytes = pool_mib << 20;
    let scan_path = temp_path("scan");
    let scan = run_scan(args.seed, target_bytes, pool_bytes, &scan_path);
    std::fs::remove_file(&scan_path).ok();
    let ratio = scan.file_bytes as f64 / scan.pool_bytes as f64;
    sqlgen_obs::obs_info!(
        "[storage] scanned {} values in {:.1}s: {} mismatches, hit-rate {:.3}, \
         {} evictions, file/pool {ratio:.1}x",
        scan.values_compared,
        scan.seconds,
        scan.mismatches,
        scan.hit_rate,
        scan.evictions
    );

    // Reward phase trains on a small image: execution cost per query, not
    // working-set pressure, dominates here.
    let reward_scale = if smoke { 0.1 } else { 0.3 };
    let reward_path = temp_path("reward");
    let reward = run_reward(
        args.seed,
        reward_scale,
        args.train,
        args.n,
        pool_bytes,
        &reward_path,
    );
    std::fs::remove_file(&reward_path).ok();
    sqlgen_obs::obs_info!(
        "[storage] reward: {}/{} executed, agreement {:.3}, q-error p50 {:.2} p90 {:.2} \
         p99 {:.2} max {:.2} ({} pages read)",
        reward.executed,
        reward.queries,
        reward.reward_agreement,
        reward.qerr_p50,
        reward.qerr_p90,
        reward.qerr_p99,
        reward.qerr_max,
        reward.pages_read
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"benchmark\": \"tpch\",");
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(json, "  \"scan\": {{");
    let _ = writeln!(json, "    \"scale\": {:.3},", scan.scale);
    let _ = writeln!(
        json,
        "    \"file_mib\": {:.1},",
        scan.file_bytes as f64 / MIB
    );
    let _ = writeln!(
        json,
        "    \"pool_mib\": {:.1},",
        scan.pool_bytes as f64 / MIB
    );
    let _ = writeln!(json, "    \"file_over_pool\": {ratio:.1},");
    let _ = writeln!(json, "    \"rows\": {},", scan.rows);
    let _ = writeln!(json, "    \"values_compared\": {},", scan.values_compared);
    let _ = writeln!(json, "    \"mismatches\": {},", scan.mismatches);
    let _ = writeln!(json, "    \"seconds\": {:.3},", scan.seconds);
    let _ = writeln!(json, "    \"pool_hits\": {},", scan.hits);
    let _ = writeln!(json, "    \"pool_misses\": {},", scan.misses);
    let _ = writeln!(json, "    \"pool_evictions\": {},", scan.evictions);
    let _ = writeln!(json, "    \"pool_hit_rate\": {:.4}", scan.hit_rate);
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"reward\": {{");
    let _ = writeln!(json, "    \"scale\": {:.3},", reward.scale);
    let _ = writeln!(json, "    \"episodes\": {},", reward.episodes);
    let _ = writeln!(json, "    \"queries\": {},", reward.queries);
    let _ = writeln!(json, "    \"executed\": {},", reward.executed);
    let _ = writeln!(json, "    \"fallbacks\": {},", reward.fallbacks);
    let _ = writeln!(
        json,
        "    \"reward_agreement\": {:.4},",
        reward.reward_agreement
    );
    let _ = writeln!(json, "    \"pages_read\": {},", reward.pages_read);
    let _ = writeln!(json, "    \"pool_hits\": {},", reward.pool_hits);
    let _ = writeln!(
        json,
        "    \"qerror\": {{\"count\": {}, \"mean\": {:.3}, \"p50\": {:.3}, \
         \"p90\": {:.3}, \"p99\": {:.3}, \"max\": {:.3}}}",
        reward.qerr_count,
        reward.qerr_mean,
        reward.qerr_p50,
        reward.qerr_p90,
        reward.qerr_p99,
        reward.qerr_max
    );
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");
    let path = std::path::Path::new(&out_dir).join("BENCH_storage.json");
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    sqlgen_obs::obs_info!("[storage] wrote {}", path.display());
    args.finish_obs();

    // Invariant gate (the CI smoke step relies on the non-zero exit).
    let mut failures = Vec::new();
    if ratio < 10.0 {
        failures.push(format!("file/pool ratio {ratio:.1} below 10x"));
    }
    if scan.mismatches > 0 {
        failures.push(format!(
            "{} value mismatches vs in-memory build",
            scan.mismatches
        ));
    }
    if scan.evictions == 0 {
        failures.push("pool never evicted".to_string());
    }
    if scan.hit_rate <= 0.5 {
        failures.push(format!("row-major hit-rate {:.3} below 0.5", scan.hit_rate));
    }
    if reward.executed == 0 {
        failures.push("no query executed within budget".to_string());
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("bench_storage: FAIL: {f}");
        }
        std::process::exit(1);
    }
}
