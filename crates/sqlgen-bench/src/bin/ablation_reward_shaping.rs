//! Ablation: potential-based reward shaping vs the paper's literal
//! raw-boundary rewards (the deviation documented in DESIGN.md §5).
//!
//! Trains the same actor-critic under both reward modes on point and range
//! constraints and reports trained accuracy. Raw boundary rewards are
//! vulnerable to boundary-padding reward hacking; shaping aligns the return
//! with the final query's §4.2 reward.

use sqlgen_bench::table::pct;
use sqlgen_bench::{write_csv, HarnessArgs, Table, TestBed};
use sqlgen_rl::{ActorCritic, Constraint, NetConfig, RewardMode, TrainConfig};
use sqlgen_storage::gen::Benchmark;

fn cfg(seed: u64) -> TrainConfig {
    TrainConfig {
        net: NetConfig {
            embed_dim: 24,
            hidden: 24,
            layers: 2,
            dropout: 0.1,
        },
        seed,
        ..Default::default()
    }
}

fn main() {
    let args = HarnessArgs::parse();
    args.init_obs();
    let bed = TestBed::new(Benchmark::TpcH, args.scale, args.seed);
    let constraints = [
        ("Card = 1e2", Constraint::cardinality_point(1e2)),
        ("Card = 1e3", Constraint::cardinality_point(1e3)),
        ("Card in [1k, 2k]", Constraint::cardinality_range(1e3, 2e3)),
        (
            "Card in [200, 400]",
            Constraint::cardinality_range(200.0, 400.0),
        ),
    ];

    let mut table = Table::new(
        format!(
            "Ablation — reward scheme (N={}, train={}, TPC-H scale={})",
            args.n, args.train, args.scale
        ),
        &["constraint", "raw boundary rewards", "potential shaping"],
    );

    for (label, constraint) in constraints {
        sqlgen_obs::obs_info!("[ablation] {label}");
        let mut accs = Vec::new();
        for mode in [RewardMode::RawBoundary, RewardMode::Shaped] {
            let env = bed.env(constraint).with_reward_mode(mode);
            let mut trainer = ActorCritic::new(bed.vocab.size(), cfg(args.seed));
            for _ in 0..args.train {
                trainer.train_episode(&env);
            }
            let hits = (0..args.n)
                .filter(|_| trainer.generate(&env).satisfied)
                .count();
            accs.push(hits as f64 / args.n as f64);
        }
        table.row(vec![label.to_string(), pct(accs[0]), pct(accs[1])]);
    }

    table.print();
    write_csv(&table, "ablation_reward_shaping");
    args.finish_obs();
}
