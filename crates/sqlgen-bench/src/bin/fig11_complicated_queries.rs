//! Figure 11: time to generate increasing numbers of *complicated*
//! satisfied queries (nested SELECT / INSERT / DELETE) under cost
//! constraints on TPC-H.
//!
//! The cost points are adapted to our cost model's units (the paper's 10²..
//! 10⁶ axis assumes 33 GB tables; see EXPERIMENTS.md): nested/delete use
//! reachable cost points, INSERT cost is constant in both models so its
//! constraint is a band around that constant — the curve then measures pure
//! generation + validation throughput, as in the paper.

use sqlgen_bench::methods::harness_gen_config;
use sqlgen_bench::table::secs;
use sqlgen_bench::{write_csv, HarnessArgs, Table, TestBed};
use sqlgen_core::LearnedSqlGen;
use sqlgen_engine::{Statement, StatementKind};
use sqlgen_fsm::FsmConfig;
use sqlgen_rl::Constraint;
use sqlgen_storage::gen::Benchmark;
use std::time::Instant;

/// Whether a statement counts as the target complicated type.
fn matches(kind: &str, stmt: &Statement) -> bool {
    match kind {
        "nested" => stmt.as_select().is_some_and(|q| q.has_subquery()),
        "insert" => stmt.kind() == StatementKind::Insert,
        "delete" => stmt.kind() == StatementKind::Delete,
        other => unreachable!("unknown kind {other}"),
    }
}

fn fsm_for(kind: &str) -> FsmConfig {
    match kind {
        "nested" => FsmConfig {
            max_subquery_depth: 1,
            ..FsmConfig::default()
        },
        "insert" => FsmConfig::default().with_statements(&[StatementKind::Insert]),
        "delete" => FsmConfig::default().with_statements(&[StatementKind::Delete]),
        other => unreachable!("unknown kind {other}"),
    }
}

fn main() {
    let args = HarnessArgs::parse();
    args.init_obs();
    let bed = TestBed::new(Benchmark::TpcH, args.scale, args.seed);
    let targets: Vec<usize> = (1..=10).map(|i| i * args.n / 10).collect();

    // (kind, label, constraints): cost levels reachable per statement type.
    let cases: Vec<(&str, Vec<(String, Constraint)>)> = vec![
        (
            "nested",
            vec![
                ("Cost = 1e2".into(), Constraint::cost_point(1e2)),
                ("Cost = 1e3".into(), Constraint::cost_point(1e3)),
                (
                    "Cost in [1e2, 4e2]".into(),
                    Constraint::cost_range(1e2, 4e2),
                ),
            ],
        ),
        (
            "insert",
            vec![(
                "Cost in [0.01, 1]".into(),
                Constraint::cost_range(0.01, 1.0),
            )],
        ),
        (
            "delete",
            vec![
                ("Cost = 1e1".into(), Constraint::cost_point(1e1)),
                ("Cost in [1, 50]".into(), Constraint::cost_range(1.0, 50.0)),
            ],
        ),
    ];

    for (kind, constraints) in cases {
        let mut table = Table::new(
            format!(
                "Figure 11 — Time to generate k satisfied {kind} queries (TPC-H, scale={})",
                args.scale
            ),
            &{
                let mut h = vec!["k"];
                h.extend(constraints.iter().map(|(l, _)| l.as_str()));
                h
            },
        );

        // Per constraint: train once, then collect up to max(targets),
        // recording the elapsed time at each checkpoint.
        let mut series: Vec<Vec<f64>> = Vec::new();
        for (label, constraint) in &constraints {
            sqlgen_obs::obs_info!("[fig11] {kind} / {label}");
            let mut cfg = harness_gen_config(bed.seed).with_threads(args.threads);
            cfg.fsm = fsm_for(kind);
            let start = Instant::now();
            let mut g = LearnedSqlGen::new(&bed.db, *constraint, cfg);
            g.train(args.train.min(200));
            let mut times = Vec::with_capacity(targets.len());
            let mut found = 0usize;
            let budget = targets.last().unwrap() * 300;
            let mut attempts = 0usize;
            let mut next_target = 0usize;
            while next_target < targets.len() && attempts < budget {
                attempts += 1;
                let q = &g.generate(1)[0];
                if q.satisfied && matches(kind, &q.statement) {
                    found += 1;
                    while next_target < targets.len() && found >= targets[next_target] {
                        times.push(start.elapsed().as_secs_f64());
                        next_target += 1;
                    }
                }
            }
            while times.len() < targets.len() {
                times.push(f64::INFINITY);
            }
            series.push(times);
        }

        for (i, &k) in targets.iter().enumerate() {
            let mut row = vec![k.to_string()];
            row.extend(series.iter().map(|s| secs(s[i])));
            table.row(row);
        }
        table.print();
        write_csv(&table, &format!("fig11_{kind}"));
    }
    args.finish_obs();
}
