//! Figure 5: generation accuracy under **cost** constraints.
//!
//! Same grid as Figure 4 with the optimizer cost model as the metric.

use sqlgen_bench::methods::{learned_accuracy, random_accuracy, template_accuracy};
use sqlgen_bench::table::pct;
use sqlgen_bench::{write_csv, HarnessArgs, Table, TestBed};
use sqlgen_rl::Constraint;
use sqlgen_storage::gen::Benchmark;

fn main() {
    let args = HarnessArgs::parse();
    args.init_obs();
    // The paper's cost axis spans 10²..10⁸ on 33 GB data; our scaled data
    // puts interesting costs at 10¹..10⁶ cost units — same spread, shifted
    // (documented in EXPERIMENTS.md).
    let points: [f64; 4] = [1e2, 1e3, 1e4, 1e5];
    let ranges = [(1e2, 2e2), (1e2, 4e2), (1e2, 6e2), (1e2, 8e2)];

    let mut table = Table::new(
        format!(
            "Figure 5 — Accuracy, cost constraints (N={}, scale={}, train={})",
            args.n, args.scale, args.train
        ),
        &[
            "dataset",
            "constraint",
            "SQLSmith",
            "Template",
            "LearnedSQLGen",
        ],
    );

    for benchmark in Benchmark::ALL {
        if let Some(only) = &args.benchmark {
            if !benchmark.name().eq_ignore_ascii_case(only) {
                continue;
            }
        }
        sqlgen_obs::obs_info!("[fig5] preparing {} ...", benchmark.name());
        let bed = TestBed::new(benchmark, args.scale, args.seed);

        let constraints: Vec<(String, Constraint)> = points
            .iter()
            .map(|&c| {
                (
                    format!("Cost = 1e{:.0}", c.log10()),
                    Constraint::cost_point(c),
                )
            })
            .chain(ranges.iter().map(|&(lo, hi)| {
                (
                    format!("Cost in [{lo:.0}, {hi:.0}]"),
                    Constraint::cost_range(lo, hi),
                )
            }))
            .collect();

        for (label, constraint) in constraints {
            sqlgen_obs::obs_info!("[fig5] {} / {label}", benchmark.name());
            let rnd = random_accuracy(&bed, constraint, args.n);
            let tpl = template_accuracy(&bed, constraint, args.n);
            let lrn = learned_accuracy(&bed, constraint, args.train, args.n, args.threads);
            table.row(vec![
                benchmark.name().to_string(),
                label,
                pct(rnd.accuracy),
                pct(tpl.accuracy),
                pct(lrn.accuracy),
            ]);
        }
    }

    table.print();
    write_csv(&table, "fig5_accuracy_cost");
    args.finish_obs();
}
