//! Load generator for `sqlgen-serve`.
//!
//! Self-hosts an in-process server per phase (ephemeral port), then drives
//! it over real sockets with keep-alive clients. Two phases — batch width
//! 1 (serial lanes) and `--batch` (default 8) — make the dynamic-batching
//! win measurable: the same closed-loop offered load, the only difference
//! being how many GEMM lanes a window runs on. Results go to
//! `BENCH_serve.json` in `--out`.
//!
//! Modes:
//! - closed loop (default): `--workers` connections, each fires its next
//!   request as soon as the previous response lands.
//! - target QPS (`--qps X`): workers pace requests on an absolute schedule
//!   at X requests/sec aggregate; the report shows achieved vs target.
//!
//! `--smoke` shrinks the run for CI (seconds) and exits non-zero unless
//! both phases sustained non-zero throughput and shut down cleanly.

use sqlgen_bench::methods::harness_gen_config;
use sqlgen_bench::HarnessArgs;
use sqlgen_serve::client::Client;
use sqlgen_serve::{serve, Schema, ServeConfig, ServerHandle};
use sqlgen_storage::gen::Benchmark;
use sqlgen_storage::Database;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

struct LoadPlan {
    workers: usize,
    /// Requests per worker.
    requests: usize,
    /// Queries per request (`n` in the request body).
    n_per_request: usize,
    /// Aggregate target rate; 0 = closed loop.
    target_qps: f64,
}

#[derive(Default)]
struct WorkerStats {
    ok: usize,
    rejected: usize,
    timeouts: usize,
    other_errors: usize,
    latencies_ms: Vec<f64>,
}

/// p50/p95 of one pipeline phase, read back from the labeled
/// `serve.phase.*_us` histograms after the load finishes.
struct PhaseBreakdown {
    samples: u64,
    p50_ms: f64,
    p95_ms: f64,
}

struct PhaseResult {
    batch: usize,
    seconds: f64,
    ok: usize,
    rejected: usize,
    timeouts: usize,
    other_errors: usize,
    requests_per_sec: f64,
    queries_per_sec: f64,
    latency_p50_ms: f64,
    latency_p95_ms: f64,
    latency_p99_ms: f64,
    /// queue_wait → gather → exec attribution for this batch width.
    queue_wait: PhaseBreakdown,
    gather: PhaseBreakdown,
    exec: PhaseBreakdown,
    /// `(seconds_since_phase_start, depth)` samples of the admission queue.
    queue_depth_timeline: Vec<(f64, usize)>,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn run_worker(
    addr: std::net::SocketAddr,
    worker: usize,
    plan: &LoadPlan,
    phase_start: Instant,
) -> WorkerStats {
    let mut stats = WorkerStats::default();
    let Ok(mut client) = Client::connect(addr, Duration::from_secs(120)) else {
        stats.other_errors = plan.requests;
        return stats;
    };
    // Open-loop pacing: worker w owns ticks w, w+W, w+2W, ... of the
    // aggregate schedule.
    let interval = if plan.target_qps > 0.0 {
        Some(Duration::from_secs_f64(
            plan.workers as f64 / plan.target_qps,
        ))
    } else {
        None
    };
    for r in 0..plan.requests {
        if let Some(interval) = interval {
            let due = phase_start
                + interval.mul_f64(r as f64)
                + interval.mul_f64(worker as f64 / plan.workers as f64);
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
        }
        let seed = (worker as u64) << 20 | r as u64;
        let body = format!(
            r#"{{"constraint":{{"metric":"cardinality","min":1,"max":500}},"n":{},"seed":{seed}}}"#,
            plan.n_per_request
        );
        let started = Instant::now();
        match client.request("POST", "/generate", Some(&body)) {
            Ok((200, _)) => {
                stats.ok += 1;
                stats
                    .latencies_ms
                    .push(started.elapsed().as_secs_f64() * 1e3);
            }
            Ok((429, _)) => stats.rejected += 1,
            Ok((504, _)) => stats.timeouts += 1,
            Ok(_) => stats.other_errors += 1,
            Err(_) => {
                stats.other_errors += 1;
                // The connection may be dead (e.g. read timeout); reconnect
                // so one hiccup doesn't void the rest of the phase.
                match Client::connect(addr, Duration::from_secs(120)) {
                    Ok(c) => client = c,
                    Err(_) => {
                        stats.other_errors += plan.requests - r - 1;
                        return stats;
                    }
                }
            }
        }
    }
    stats
}

/// Reads back the labeled `serve.phase.<which>_us` histogram this phase's
/// batch width wrote into the global registry.
fn read_breakdown(which: &str, batch: usize) -> PhaseBreakdown {
    let labels = sqlgen_obs::Labels::new()
        .with("schema", "tpch")
        .with("batch_width", &batch.to_string());
    let h =
        sqlgen_obs::metrics::global().histogram_with(&format!("serve.phase.{which}_us"), &labels);
    PhaseBreakdown {
        samples: h.count(),
        p50_ms: h.percentile(0.50) / 1e3,
        p95_ms: h.percentile(0.95) / 1e3,
    }
}

/// End-to-end trace smoke against a live server: the forced-504 request
/// must carry an `X-Request-Id` that resolves to a full span tree, and
/// `/metrics` must pass the Prometheus exposition grammar. Panics (→
/// non-zero exit, CI-visible) on any violation.
fn trace_smoke(addr: std::net::SocketAddr) {
    use sqlgen_serve::client;
    let resp = client::request_full(
        addr,
        "POST",
        "/generate",
        &[],
        Some(r#"{"constraint":{"point":50},"n":1,"timeout_ms":0}"#),
    )
    .expect("trace smoke request failed");
    assert_eq!(
        resp.status, 504,
        "timeout_ms=0 should expire: {}",
        resp.body
    );
    let id = resp
        .header("x-request-id")
        .expect("response missing X-Request-Id")
        .to_string();
    let (status, body) =
        client::request(addr, "GET", &format!("/debug/traces/{id}"), None).expect("trace lookup");
    assert_eq!(status, 200, "504 trace {id} not retained: {body}");
    for phase in ["queue_wait", "batch_gather", "lane_exec"] {
        assert!(body.contains(phase), "trace missing {phase} span: {body}");
    }
    let (status, metrics) = client::request(addr, "GET", "/metrics", None).expect("metrics fetch");
    assert_eq!(status, 200);
    if let Err(e) = sqlgen_obs::validate_exposition(&metrics) {
        panic!("/metrics violates the exposition format: {e}");
    }
}

fn run_phase(db: &Database, seed: u64, batch: usize, plan: &LoadPlan) -> PhaseResult {
    let schema = Schema::build("tpch", db, &harness_gen_config(seed), None, 512);
    let server: ServerHandle = serve(
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: plan.workers,
            batch,
            max_queue: 512,
            max_wait_ms: 2,
            max_batch_jobs: (batch * 8).max(16),
            read_timeout_ms: 120_000,
            write_timeout_ms: 120_000,
            ..ServeConfig::default()
        },
        vec![schema],
    )
    .expect("bind ephemeral port");
    let addr = server.addr();

    // Queue-depth sampler: polls the admission queue every 20ms for the
    // offered-load timeline in BENCH_serve.json.
    let sampler_stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let sampler_schema = server.schema("tpch").expect("tpch schema");
    let phase_start = Instant::now();
    let sampler = {
        let stop = sampler_stop.clone();
        std::thread::spawn(move || {
            let mut timeline = Vec::new();
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                timeline.push((
                    phase_start.elapsed().as_secs_f64(),
                    sampler_schema.queue.len(),
                ));
                std::thread::sleep(Duration::from_millis(20));
            }
            timeline
        })
    };

    let all: Vec<WorkerStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..plan.workers)
            .map(|w| scope.spawn(move || run_worker(addr, w, plan, phase_start)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let seconds = phase_start.elapsed().as_secs_f64();
    sampler_stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let mut queue_depth_timeline = sampler.join().expect("queue sampler");
    // Keep the report bounded: downsample long timelines to ≤200 points.
    if queue_depth_timeline.len() > 200 {
        let step = queue_depth_timeline.len().div_ceil(200);
        queue_depth_timeline = queue_depth_timeline.into_iter().step_by(step).collect();
    }

    // Per-phase attribution for this batch width, then the trace/metrics
    // smoke contract — both against the still-running server.
    let queue_wait = read_breakdown("queue_wait", batch);
    let gather = read_breakdown("gather", batch);
    let exec = read_breakdown("exec", batch);
    trace_smoke(addr);
    server.shutdown();

    let mut latencies: Vec<f64> = all.iter().flat_map(|s| s.latencies_ms.clone()).collect();
    latencies.sort_by(f64::total_cmp);
    let ok: usize = all.iter().map(|s| s.ok).sum();
    PhaseResult {
        batch,
        seconds,
        ok,
        rejected: all.iter().map(|s| s.rejected).sum(),
        timeouts: all.iter().map(|s| s.timeouts).sum(),
        other_errors: all.iter().map(|s| s.other_errors).sum(),
        requests_per_sec: ok as f64 / seconds,
        queries_per_sec: (ok * plan.n_per_request) as f64 / seconds,
        latency_p50_ms: percentile(&latencies, 0.50),
        latency_p95_ms: percentile(&latencies, 0.95),
        latency_p99_ms: percentile(&latencies, 0.99),
        queue_wait,
        gather,
        exec,
        queue_depth_timeline,
    }
}

fn breakdown_json(b: &PhaseBreakdown) -> String {
    format!(
        "{{\"samples\": {}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}}}",
        b.samples, b.p50_ms, b.p95_ms
    )
}

fn phase_json(p: &PhaseResult) -> String {
    let timeline: Vec<String> = p
        .queue_depth_timeline
        .iter()
        .map(|(t, d)| format!("[{t:.3}, {d}]"))
        .collect();
    format!(
        "{{\"batch\": {}, \"seconds\": {:.3}, \"ok\": {}, \"rejected\": {}, \
         \"timeouts\": {}, \"other_errors\": {}, \"requests_per_sec\": {:.2}, \
         \"queries_per_sec\": {:.2}, \"latency_p50_ms\": {:.2}, \
         \"latency_p95_ms\": {:.2}, \"latency_p99_ms\": {:.2}, \
         \"phase_breakdown\": {{\"queue_wait\": {}, \"gather\": {}, \"exec\": {}}}, \
         \"queue_depth_timeline\": [{}]}}",
        p.batch,
        p.seconds,
        p.ok,
        p.rejected,
        p.timeouts,
        p.other_errors,
        p.requests_per_sec,
        p.queries_per_sec,
        p.latency_p50_ms,
        p.latency_p95_ms,
        p.latency_p99_ms,
        breakdown_json(&p.queue_wait),
        breakdown_json(&p.gather),
        breakdown_json(&p.exec),
        timeline.join(", ")
    )
}

fn main() {
    let mut smoke = false;
    let mut out_dir = String::from(".");
    let mut qps = 0.0f64;
    let mut workers = 8usize;
    let mut requests = 25usize;
    let mut rest = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out_dir = it.next().expect("--out needs a value"),
            "--qps" => {
                qps = it
                    .next()
                    .expect("--qps needs a value")
                    .parse()
                    .expect("--qps must be a number")
            }
            "--workers" => {
                workers = it
                    .next()
                    .expect("--workers needs a value")
                    .parse()
                    .expect("--workers must be an integer")
            }
            "--requests" => {
                requests = it
                    .next()
                    .expect("--requests needs a value")
                    .parse()
                    .expect("--requests must be an integer")
            }
            _ => rest.push(a),
        }
    }
    let mut args = HarnessArgs::parse_from(rest);
    if args.batch <= 1 {
        args.batch = 8;
    }
    let mut n_per_request = 4usize;
    if smoke {
        args.scale = args.scale.min(0.05);
        workers = workers.min(4);
        requests = requests.min(5);
        n_per_request = 2;
    }
    args.init_obs();
    sqlgen_obs::enable_metrics();

    let plan = LoadPlan {
        workers,
        requests,
        n_per_request,
        target_qps: qps,
    };
    sqlgen_obs::obs_info!(
        "[serve-bench] tpch scale={} seed={} workers={} requests/worker={} n={} mode={}",
        args.scale,
        args.seed,
        plan.workers,
        plan.requests,
        plan.n_per_request,
        if qps > 0.0 {
            format!("open-loop {qps} qps")
        } else {
            "closed-loop".to_string()
        }
    );
    let db = Benchmark::TpcH.build(args.scale, args.seed);

    let serial = run_phase(&db, args.seed, 1, &plan);
    sqlgen_obs::obs_info!(
        "[serve-bench] batch=1: {:.1} q/s ({} ok, {} rejected, {} timeouts), p95 {:.1}ms",
        serial.queries_per_sec,
        serial.ok,
        serial.rejected,
        serial.timeouts,
        serial.latency_p95_ms
    );
    let batched = run_phase(&db, args.seed, args.batch, &plan);
    sqlgen_obs::obs_info!(
        "[serve-bench] batch={}: {:.1} q/s ({} ok, {} rejected, {} timeouts), p95 {:.1}ms",
        batched.batch,
        batched.queries_per_sec,
        batched.ok,
        batched.rejected,
        batched.timeouts,
        batched.latency_p95_ms
    );
    for p in [&serial, &batched] {
        sqlgen_obs::obs_info!(
            "[serve-bench] batch={} attribution: queue_wait p50/p95 {:.2}/{:.2}ms, \
             gather {:.2}/{:.2}ms, exec {:.2}/{:.2}ms",
            p.batch,
            p.queue_wait.p50_ms,
            p.queue_wait.p95_ms,
            p.gather.p50_ms,
            p.gather.p95_ms,
            p.exec.p50_ms,
            p.exec.p95_ms
        );
    }
    let speedup = batched.queries_per_sec / serial.queries_per_sec.max(f64::MIN_POSITIVE);
    sqlgen_obs::obs_info!(
        "[serve-bench] batch={} vs batch=1: {:.2}x queries/sec",
        batched.batch,
        speedup
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"benchmark\": \"tpch\",");
    let _ = writeln!(json, "  \"scale\": {},", args.scale);
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(json, "  \"workers\": {},", plan.workers);
    let _ = writeln!(json, "  \"requests_per_worker\": {},", plan.requests);
    let _ = writeln!(json, "  \"queries_per_request\": {},", plan.n_per_request);
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if qps > 0.0 {
            "open-loop"
        } else {
            "closed-loop"
        }
    );
    let _ = writeln!(json, "  \"target_qps\": {qps},");
    let _ = writeln!(
        json,
        "  \"phases\": [\n    {},\n    {}\n  ],",
        phase_json(&serial),
        phase_json(&batched)
    );
    let _ = writeln!(
        json,
        "  \"batch_speedup_queries_per_sec\": {{\"batch\": {}, \"vs_batch_1\": {:.2}}}",
        batched.batch, speedup
    );
    json.push_str("}\n");
    let path = std::path::Path::new(&out_dir).join("BENCH_serve.json");
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    sqlgen_obs::obs_info!("[serve-bench] wrote {}", path.display());

    args.finish_obs();
    // The smoke contract for CI: traffic flowed in both phases and both
    // servers shut down cleanly (reaching this line proves the joins).
    if serial.queries_per_sec <= 0.0 || batched.queries_per_sec <= 0.0 {
        eprintln!("[serve-bench] FAIL: a phase sustained zero throughput");
        std::process::exit(1);
    }
}
