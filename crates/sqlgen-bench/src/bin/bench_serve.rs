//! Load generator for `sqlgen-serve`.
//!
//! Self-hosts an in-process server per phase (ephemeral port), then drives
//! it over real sockets. Four phases go to `BENCH_serve.json` in `--out`:
//!
//! - two **closed-loop** phases — batch width 1 (serial lanes) and
//!   `--batch` (default 8) — keep-alive worker threads, each firing its
//!   next request as soon as the previous response lands; this makes the
//!   dynamic-batching win measurable in isolation;
//! - two **open-loop** phases over `--connections` (default 1024)
//!   epoll-multiplexed nonblocking sockets driven by one client thread:
//!   `open-cold` paces unique-seed requests at `--qps` (default: 60% of a
//!   short self-calibration burst against the same server), and
//!   `open-warm` replays a 64-seed working set closed-loop so the result
//!   cache serves almost everything (the report carries the measured
//!   hit-rate per phase).
//!
//! Open-loop phases run the int8 quantized model when `--quant` is given;
//! the `quantized` field in each phase records which policy ran. The
//! open-loop client needs Linux (it reuses the server's raw epoll
//! bindings); elsewhere only the closed-loop phases run.
//!
//! `--smoke` shrinks the run for CI (seconds) and exits non-zero unless
//! every phase sustained non-zero throughput, the warm phase hit the
//! cache for >90% of lookups, and all servers shut down cleanly.
//!
//! `--qps-sweep` adds a paced rate sweep (Linux only): after a closed-loop
//! calibration burst, short open-loop runs at a grid of fractions of the
//! calibrated capacity record achieved q/s + p50/p95 per offered rate into
//! the `qps_sweep` array of `BENCH_serve.json` — the saturation curve the
//! single cold/warm points can't show.

use sqlgen_bench::methods::harness_gen_config;
use sqlgen_bench::HarnessArgs;
use sqlgen_serve::client::Client;
use sqlgen_serve::{serve, Schema, ServeConfig, ServerHandle};
use sqlgen_storage::gen::Benchmark;
use sqlgen_storage::Database;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

struct LoadPlan {
    workers: usize,
    /// Requests per worker.
    requests: usize,
    /// Queries per request (`n` in the request body).
    n_per_request: usize,
    /// Aggregate target rate; 0 = closed loop.
    target_qps: f64,
}

#[derive(Default)]
struct WorkerStats {
    ok: usize,
    rejected: usize,
    timeouts: usize,
    other_errors: usize,
    latencies_ms: Vec<f64>,
}

/// p50/p95 of one pipeline phase, read back from the labeled
/// `serve.phase.*_us` histograms after the load finishes.
struct PhaseBreakdown {
    samples: u64,
    p50_ms: f64,
    p95_ms: f64,
}

struct PhaseResult {
    name: String,
    batch: usize,
    connections: usize,
    quantized: bool,
    target_qps: f64,
    seconds: f64,
    ok: usize,
    rejected: usize,
    timeouts: usize,
    other_errors: usize,
    requests_per_sec: f64,
    queries_per_sec: f64,
    latency_p50_ms: f64,
    latency_p95_ms: f64,
    latency_p99_ms: f64,
    /// Result-cache hit rate over this phase (delta of the shared
    /// counters, so earlier phases in the same process don't leak in).
    cache_hit_rate: f64,
    /// queue_wait → gather → exec attribution for this batch width.
    queue_wait: PhaseBreakdown,
    gather: PhaseBreakdown,
    exec: PhaseBreakdown,
    /// `(seconds_since_phase_start, depth)` samples of the admission queue.
    queue_depth_timeline: Vec<(f64, usize)>,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn run_worker(
    addr: std::net::SocketAddr,
    worker: usize,
    plan: &LoadPlan,
    phase_start: Instant,
) -> WorkerStats {
    let mut stats = WorkerStats::default();
    let Ok(mut client) = Client::connect(addr, Duration::from_secs(120)) else {
        stats.other_errors = plan.requests;
        return stats;
    };
    // Open-loop pacing: worker w owns ticks w, w+W, w+2W, ... of the
    // aggregate schedule.
    let interval = if plan.target_qps > 0.0 {
        Some(Duration::from_secs_f64(
            plan.workers as f64 / plan.target_qps,
        ))
    } else {
        None
    };
    for r in 0..plan.requests {
        if let Some(interval) = interval {
            let due = phase_start
                + interval.mul_f64(r as f64)
                + interval.mul_f64(worker as f64 / plan.workers as f64);
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
        }
        let seed = (worker as u64) << 20 | r as u64;
        let body = format!(
            r#"{{"constraint":{{"metric":"cardinality","min":1,"max":500}},"n":{},"seed":{seed}}}"#,
            plan.n_per_request
        );
        let started = Instant::now();
        match client.request("POST", "/generate", Some(&body)) {
            Ok((200, _)) => {
                stats.ok += 1;
                stats
                    .latencies_ms
                    .push(started.elapsed().as_secs_f64() * 1e3);
            }
            Ok((429, _)) => stats.rejected += 1,
            Ok((504, _)) => stats.timeouts += 1,
            Ok(_) => stats.other_errors += 1,
            Err(_) => {
                stats.other_errors += 1;
                // The connection may be dead (e.g. read timeout); reconnect
                // so one hiccup doesn't void the rest of the phase.
                match Client::connect(addr, Duration::from_secs(120)) {
                    Ok(c) => client = c,
                    Err(_) => {
                        stats.other_errors += plan.requests - r - 1;
                        return stats;
                    }
                }
            }
        }
    }
    stats
}

/// Reads back the labeled `serve.phase.<which>_us` histogram this phase's
/// batch width wrote into the global registry.
fn read_breakdown(which: &str, batch: usize) -> PhaseBreakdown {
    let labels = sqlgen_obs::Labels::new()
        .with("schema", "tpch")
        .with("batch_width", &batch.to_string());
    let h =
        sqlgen_obs::metrics::global().histogram_with(&format!("serve.phase.{which}_us"), &labels);
    PhaseBreakdown {
        samples: h.count(),
        p50_ms: h.percentile(0.50) / 1e3,
        p95_ms: h.percentile(0.95) / 1e3,
    }
}

/// End-to-end trace smoke against a live server: the forced-504 request
/// must carry an `X-Request-Id` that resolves to a full span tree, and
/// `/metrics` must pass the Prometheus exposition grammar. Panics (→
/// non-zero exit, CI-visible) on any violation.
fn trace_smoke(addr: std::net::SocketAddr) {
    use sqlgen_serve::client;
    let resp = client::request_full(
        addr,
        "POST",
        "/generate",
        &[],
        Some(r#"{"constraint":{"point":50},"n":1,"timeout_ms":0}"#),
    )
    .expect("trace smoke request failed");
    assert_eq!(
        resp.status, 504,
        "timeout_ms=0 should expire: {}",
        resp.body
    );
    let id = resp
        .header("x-request-id")
        .expect("response missing X-Request-Id")
        .to_string();
    let (status, body) =
        client::request(addr, "GET", &format!("/debug/traces/{id}"), None).expect("trace lookup");
    assert_eq!(status, 200, "504 trace {id} not retained: {body}");
    for phase in ["queue_wait", "batch_gather", "lane_exec"] {
        assert!(body.contains(phase), "trace missing {phase} span: {body}");
    }
    let (status, metrics) = client::request(addr, "GET", "/metrics", None).expect("metrics fetch");
    assert_eq!(status, 200);
    if let Err(e) = sqlgen_obs::validate_exposition(&metrics) {
        panic!("/metrics violates the exposition format: {e}");
    }
}

/// Spawns a sampler thread polling `depth()` every 20ms; returns
/// `(stop_flag, join_handle)`.
fn spawn_depth_sampler(
    server: &ServerHandle,
    phase_start: Instant,
) -> (
    std::sync::Arc<std::sync::atomic::AtomicBool>,
    std::thread::JoinHandle<Vec<(f64, usize)>>,
) {
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let depth_of = server.depth_probe();
    let sampler = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut timeline = Vec::new();
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                timeline.push((phase_start.elapsed().as_secs_f64(), depth_of()));
                std::thread::sleep(Duration::from_millis(20));
            }
            timeline
        })
    };
    (stop, sampler)
}

fn downsample(mut timeline: Vec<(f64, usize)>) -> Vec<(f64, usize)> {
    // Keep the report bounded: downsample long timelines to ≤200 points.
    if timeline.len() > 200 {
        let step = timeline.len().div_ceil(200);
        timeline = timeline.into_iter().step_by(step).collect();
    }
    timeline
}

fn run_phase(db: &Database, seed: u64, batch: usize, plan: &LoadPlan) -> PhaseResult {
    let schema = Schema::build("tpch", db, &harness_gen_config(seed), None, 512);
    let server: ServerHandle = serve(
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: plan.workers,
            batch,
            max_queue: 512,
            max_wait_ms: 2,
            max_batch_jobs: (batch * 8).max(16),
            read_timeout_ms: 120_000,
            write_timeout_ms: 120_000,
            ..ServeConfig::default()
        },
        vec![schema],
    )
    .expect("bind ephemeral port");
    let addr = server.addr();
    let (hits0, misses0, _) = server.cache_stats();

    let phase_start = Instant::now();
    let (sampler_stop, sampler) = spawn_depth_sampler(&server, phase_start);

    let all: Vec<WorkerStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..plan.workers)
            .map(|w| scope.spawn(move || run_worker(addr, w, plan, phase_start)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let seconds = phase_start.elapsed().as_secs_f64();
    sampler_stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let queue_depth_timeline = downsample(sampler.join().expect("queue sampler"));

    // Per-phase attribution for this batch width, then the trace/metrics
    // smoke contract — both against the still-running server.
    let queue_wait = read_breakdown("queue_wait", batch);
    let gather = read_breakdown("gather", batch);
    let exec = read_breakdown("exec", batch);
    trace_smoke(addr);
    let (hits1, misses1, _) = server.cache_stats();
    server.shutdown();

    let mut latencies: Vec<f64> = all.iter().flat_map(|s| s.latencies_ms.clone()).collect();
    latencies.sort_by(f64::total_cmp);
    let ok: usize = all.iter().map(|s| s.ok).sum();
    let lookups = (hits1 - hits0) + (misses1 - misses0);
    PhaseResult {
        name: format!("closed-batch-{batch}"),
        batch,
        connections: plan.workers,
        quantized: false,
        target_qps: plan.target_qps,
        seconds,
        ok,
        rejected: all.iter().map(|s| s.rejected).sum(),
        timeouts: all.iter().map(|s| s.timeouts).sum(),
        other_errors: all.iter().map(|s| s.other_errors).sum(),
        requests_per_sec: ok as f64 / seconds,
        queries_per_sec: (ok * plan.n_per_request) as f64 / seconds,
        latency_p50_ms: percentile(&latencies, 0.50),
        latency_p95_ms: percentile(&latencies, 0.95),
        latency_p99_ms: percentile(&latencies, 0.99),
        cache_hit_rate: if lookups > 0 {
            (hits1 - hits0) as f64 / lookups as f64
        } else {
            0.0
        },
        queue_wait,
        gather,
        exec,
        queue_depth_timeline,
    }
}

// ---------------------------------------------------------------------------
// Open-loop epoll client
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod open_loop {
    use super::{percentile, Instant};
    use sqlgen_serve::sys::{Epoll, EpollEvent, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT};
    use std::io::{Read, Write};
    use std::net::{SocketAddr, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::time::Duration;

    pub struct OpenPlan {
        pub connections: usize,
        /// Aggregate pacing target in requests/sec; 0 = closed loop (every
        /// connection fires as soon as its previous response lands).
        pub target_rps: f64,
        pub duration: Duration,
        pub n_per_request: usize,
        /// Seeds are `seed_base + (g % pool)`; `pool = 0` means every
        /// request gets a unique seed (pure cold).
        pub seed_base: u64,
        pub seed_pool: u64,
    }

    #[derive(Default)]
    pub struct OpenStats {
        pub sent: usize,
        pub ok: usize,
        pub rejected: usize,
        pub timeouts: usize,
        pub other_errors: usize,
        pub seconds: f64,
        pub latencies_ms: Vec<f64>,
        /// How late each request fired relative to its scheduled tick
        /// (client-side scheduling error, not server latency).
        pub send_delays_ms: Vec<f64>,
    }

    impl OpenStats {
        pub fn p(&mut self, q: f64) -> f64 {
            self.latencies_ms.sort_by(f64::total_cmp);
            percentile(&self.latencies_ms, q)
        }
    }

    struct OConn {
        stream: TcpStream,
        /// epoll token == index in the connection table; fixed at add().
        token: u64,
        out: Vec<u8>,
        out_pos: usize,
        buf: Vec<u8>,
        sent_at: Option<Instant>,
        next_due: Instant,
        ticks: u64,
        want_out: bool,
        dead: bool,
    }

    /// `(status, total_response_len)` once the buffer holds one complete
    /// response.
    fn try_parse(buf: &[u8]) -> Option<(u16, usize)> {
        let head_end = buf.windows(4).position(|w| w == b"\r\n\r\n")? + 4;
        let head = std::str::from_utf8(&buf[..head_end]).ok()?;
        let status: u16 = head.split(' ').nth(1)?.parse().ok()?;
        let mut content_length = 0usize;
        for line in head.split("\r\n").skip(1) {
            if let Some((name, value)) = line.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().ok()?;
                }
            }
        }
        let total = head_end + content_length;
        (buf.len() >= total).then_some((status, total))
    }

    /// Drives `connections` keep-alive sockets from one thread over epoll.
    /// Requests stop at `duration`; in-flight responses get a short drain
    /// grace so the tail is counted, not truncated.
    pub fn run(addr: SocketAddr, plan: &OpenPlan) -> OpenStats {
        let epoll = Epoll::new().expect("epoll");
        let interval = if plan.target_rps > 0.0 {
            Some(Duration::from_secs_f64(
                plan.connections as f64 / plan.target_rps,
            ))
        } else {
            None
        };
        let mut conns: Vec<OConn> = (0..plan.connections)
            .map(|k| {
                let stream = TcpStream::connect(addr).expect("connect");
                stream.set_nodelay(true).expect("nodelay");
                stream.set_nonblocking(true).expect("nonblocking");
                epoll
                    .add(stream.as_raw_fd(), EPOLLIN, k as u64)
                    .expect("epoll add");
                OConn {
                    stream,
                    token: k as u64,
                    out: Vec::new(),
                    out_pos: 0,
                    buf: Vec::new(),
                    sent_at: None,
                    next_due: Instant::now(), // re-based below
                    ticks: 0,
                    want_out: false,
                    dead: false,
                }
            })
            .collect();
        // The schedule starts AFTER the whole fleet is connected —
        // connecting hundreds of sockets takes real time, and baselining
        // before it would put every early tick in the past, turning phase
        // start into a catch-up burst that floods the server queue.
        // Stagger connection k by k/C of one interval so the aggregate
        // schedule is evenly spaced, not a thundering herd.
        let start = Instant::now();
        for (k, c) in conns.iter_mut().enumerate() {
            c.next_due = match interval {
                Some(iv) => start + iv.mul_f64(k as f64 / plan.connections as f64),
                None => start,
            };
        }

        let mut stats = OpenStats::default();
        let mut seq: u64 = 0; // global request counter → seeds
        let deadline = start + plan.duration;
        let hard_stop = deadline + Duration::from_secs(10);
        let mut events = vec![EpollEvent { events: 0, data: 0 }; 1024];
        loop {
            let now = Instant::now();
            // Send phase: every idle connection whose tick is due fires.
            let mut nearest_due: Option<Instant> = None;
            if now < deadline {
                for (k, c) in conns.iter_mut().enumerate() {
                    if c.dead || c.sent_at.is_some() {
                        continue;
                    }
                    if now < c.next_due {
                        nearest_due =
                            Some(nearest_due.map_or(c.next_due, |d: Instant| d.min(c.next_due)));
                        continue;
                    }
                    let seed = plan.seed_base
                        + if plan.seed_pool > 0 {
                            seq % plan.seed_pool
                        } else {
                            seq
                        };
                    seq += 1;
                    let body = format!(
                        r#"{{"constraint":{{"metric":"cardinality","min":1,"max":500}},"n":{},"seed":{seed}}}"#,
                        plan.n_per_request
                    );
                    c.out = format!(
                        "POST /generate HTTP/1.1\r\nhost: bench\r\ncontent-length: {}\r\n\r\n{body}",
                        body.len()
                    )
                    .into_bytes();
                    c.out_pos = 0;
                    c.sent_at = Some(Instant::now());
                    stats
                        .send_delays_ms
                        .push(now.saturating_duration_since(c.next_due).as_secs_f64() * 1e3);
                    c.ticks += 1;
                    if let Some(iv) = interval {
                        // Next tick stays on the absolute schedule (no
                        // drift from service time) — but missed ticks are
                        // skipped, not replayed: a connection that fell
                        // behind would otherwise fire back-to-back and turn
                        // the paced phase into a closed loop at full depth.
                        let stagger = iv.mul_f64(k as f64 / plan.connections as f64);
                        let elapsed = now.saturating_duration_since(start + stagger);
                        let caught_up =
                            (elapsed.as_secs_f64() / iv.as_secs_f64()).floor() as u64 + 1;
                        c.ticks = c.ticks.max(caught_up);
                        c.next_due = start + stagger + iv.mul_f64(c.ticks as f64);
                    }
                    stats.sent += 1;
                    flush(&epoll, c);
                }
            }

            // Termination: past the deadline and nothing left in flight.
            let in_flight = conns.iter().filter(|c| c.sent_at.is_some()).count();
            if (now >= deadline && in_flight == 0) || now >= hard_stop {
                stats.other_errors += in_flight; // hard-stop stragglers
                stats.seconds = start.elapsed().as_secs_f64();
                return stats;
            }

            let timeout_ms = if now >= deadline {
                25
            } else {
                match nearest_due {
                    Some(due) => {
                        (due.saturating_duration_since(now).as_millis() as i32).clamp(0, 25)
                    }
                    None => 25,
                }
            };
            let n = epoll.wait(&mut events, timeout_ms).expect("epoll wait");
            for ev in &events[..n] {
                let k = { ev.data } as usize;
                let bits = { ev.events };
                let c = &mut conns[k];
                if c.dead {
                    continue;
                }
                if bits & (EPOLLERR | EPOLLHUP) != 0 {
                    fail_conn(&epoll, c, &mut stats);
                    continue;
                }
                if bits & EPOLLOUT != 0 {
                    flush(&epoll, c);
                }
                if bits & EPOLLIN != 0 {
                    read_ready(&epoll, c, &mut stats);
                }
            }
        }
    }

    fn fail_conn(epoll: &Epoll, c: &mut OConn, stats: &mut OpenStats) {
        if c.sent_at.take().is_some() {
            stats.other_errors += 1;
        }
        let _ = epoll.delete(c.stream.as_raw_fd());
        c.dead = true;
    }

    fn flush(epoll: &Epoll, c: &mut OConn) {
        while c.out_pos < c.out.len() {
            match c.stream.write(&c.out[c.out_pos..]) {
                Ok(0) => break,
                Ok(n) => c.out_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if !c.want_out {
                        c.want_out = true;
                        let _ = epoll.modify(c.stream.as_raw_fd(), EPOLLIN | EPOLLOUT, c.token);
                    }
                    return;
                }
                Err(_) => {
                    c.dead = true;
                    return;
                }
            }
        }
        c.out.clear();
        c.out_pos = 0;
        if c.want_out {
            c.want_out = false;
            let _ = epoll.modify(c.stream.as_raw_fd(), EPOLLIN, c.token);
        }
    }

    fn read_ready(epoll: &Epoll, c: &mut OConn, stats: &mut OpenStats) {
        let mut scratch = [0u8; 16384];
        loop {
            match c.stream.read(&mut scratch) {
                Ok(0) => {
                    fail_conn(epoll, c, stats);
                    return;
                }
                Ok(n) => c.buf.extend_from_slice(&scratch[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => {
                    fail_conn(epoll, c, stats);
                    return;
                }
            }
        }
        while let Some((status, total)) = try_parse(&c.buf) {
            c.buf.drain(..total);
            if let Some(sent) = c.sent_at.take() {
                match status {
                    200 => {
                        stats.ok += 1;
                        stats.latencies_ms.push(sent.elapsed().as_secs_f64() * 1e3);
                    }
                    429 => stats.rejected += 1,
                    504 => stats.timeouts += 1,
                    _ => stats.other_errors += 1,
                }
            }
        }
    }
}

fn main() {
    let mut smoke = false;
    let mut out_dir = String::from(".");
    let mut qps = 0.0f64;
    let mut workers = 8usize;
    let mut requests = 25usize;
    let mut connections = 1024usize;
    let mut quant = false;
    let mut qps_sweep = false;
    let mut rest = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--quant" => quant = true,
            "--qps-sweep" => qps_sweep = true,
            "--out" => out_dir = it.next().expect("--out needs a value"),
            "--qps" => {
                qps = it
                    .next()
                    .expect("--qps needs a value")
                    .parse()
                    .expect("--qps must be a number")
            }
            "--workers" => {
                workers = it
                    .next()
                    .expect("--workers needs a value")
                    .parse()
                    .expect("--workers must be an integer")
            }
            "--connections" => {
                connections = it
                    .next()
                    .expect("--connections needs a value")
                    .parse()
                    .expect("--connections must be an integer")
            }
            "--requests" => {
                requests = it
                    .next()
                    .expect("--requests needs a value")
                    .parse()
                    .expect("--requests must be an integer")
            }
            _ => rest.push(a),
        }
    }
    let mut args = HarnessArgs::parse_from(rest);
    if args.batch <= 1 {
        args.batch = 8;
    }
    let mut n_per_request = 4usize;
    if smoke {
        args.scale = args.scale.min(0.05);
        workers = workers.min(4);
        requests = requests.min(5);
        n_per_request = 2;
        connections = connections.min(256);
    }
    args.init_obs();
    sqlgen_obs::enable_metrics();

    let hardware_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let plan = LoadPlan {
        workers,
        requests,
        n_per_request,
        target_qps: qps,
    };
    sqlgen_obs::obs_info!(
        "[serve-bench] tpch scale={} seed={} workers={} requests/worker={} n={} connections={} hw_threads={}",
        args.scale,
        args.seed,
        plan.workers,
        plan.requests,
        plan.n_per_request,
        connections,
        hardware_threads
    );
    let db = Benchmark::TpcH.build(args.scale, args.seed);

    let serial = run_phase(&db, args.seed, 1, &plan);
    let batched = run_phase(&db, args.seed, args.batch, &plan);
    for p in [&serial, &batched] {
        sqlgen_obs::obs_info!(
            "[serve-bench] {}: {:.1} q/s ({} ok, {} rejected, {} timeouts), p95 {:.1}ms",
            p.name,
            p.queries_per_sec,
            p.ok,
            p.rejected,
            p.timeouts,
            p.latency_p95_ms
        );
        sqlgen_obs::obs_info!(
            "[serve-bench] {} attribution: queue_wait p50/p95 {:.2}/{:.2}ms, \
             gather {:.2}/{:.2}ms, exec {:.2}/{:.2}ms",
            p.name,
            p.queue_wait.p50_ms,
            p.queue_wait.p95_ms,
            p.gather.p50_ms,
            p.gather.p95_ms,
            p.exec.p50_ms,
            p.exec.p95_ms
        );
    }
    let speedup = batched.queries_per_sec / serial.queries_per_sec.max(f64::MIN_POSITIVE);
    sqlgen_obs::obs_info!(
        "[serve-bench] batch={} vs batch=1: {:.2}x queries/sec",
        batched.batch,
        speedup
    );

    let mut phases = vec![serial, batched];
    #[cfg(target_os = "linux")]
    if connections > 0 {
        let (cold, warm) = run_open_phases(
            &db,
            args.seed,
            args.batch * 2,
            connections,
            qps,
            n_per_request,
            quant,
            smoke,
        );
        phases.push(cold);
        phases.push(warm);
    }
    #[cfg(not(target_os = "linux"))]
    {
        sqlgen_obs::obs_info!("[serve-bench] open-loop phases need Linux epoll; skipped");
    }

    let mut sweep_points: Vec<SweepPoint> = Vec::new();
    if qps_sweep {
        #[cfg(target_os = "linux")]
        {
            sweep_points = run_qps_sweep(
                &db,
                args.seed,
                args.batch * 2,
                connections,
                n_per_request,
                quant,
                smoke,
            );
        }
        #[cfg(not(target_os = "linux"))]
        {
            sqlgen_obs::obs_info!("[serve-bench] --qps-sweep needs Linux epoll; skipped");
        }
    }

    let warm_vs_cold = match (
        phases.iter().find(|p| p.name == "open-cold"),
        phases.iter().find(|p| p.name == "open-warm"),
    ) {
        (Some(c), Some(w)) => w.queries_per_sec / c.queries_per_sec.max(f64::MIN_POSITIVE),
        _ => 0.0,
    };

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"benchmark\": \"tpch\",");
    let _ = writeln!(json, "  \"scale\": {},", args.scale);
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(json, "  \"hardware_threads\": {hardware_threads},");
    let _ = writeln!(json, "  \"workers\": {},", plan.workers);
    let _ = writeln!(json, "  \"connections\": {connections},");
    let _ = writeln!(json, "  \"requests_per_worker\": {},", plan.requests);
    let _ = writeln!(json, "  \"queries_per_request\": {},", plan.n_per_request);
    let _ = writeln!(json, "  \"target_qps\": {qps},");
    let phase_jsons: Vec<String> = phases.iter().map(phase_json).collect();
    let _ = writeln!(
        json,
        "  \"phases\": [\n    {}\n  ],",
        phase_jsons.join(",\n    ")
    );
    let sweep_jsons: Vec<String> = sweep_points.iter().map(sweep_json).collect();
    let _ = writeln!(
        json,
        "  \"qps_sweep\": [\n    {}\n  ],",
        sweep_jsons.join(",\n    ")
    );
    let _ = writeln!(
        json,
        "  \"batch_speedup_queries_per_sec\": {{\"batch\": {}, \"vs_batch_1\": {:.2}}},",
        phases[1].batch, speedup
    );
    let _ = writeln!(
        json,
        "  \"warm_cache_speedup_queries_per_sec\": {warm_vs_cold:.2}"
    );
    json.push_str("}\n");
    std::fs::create_dir_all(&out_dir)
        .unwrap_or_else(|e| panic!("cannot create out dir {out_dir}: {e}"));
    let path = std::path::Path::new(&out_dir).join("BENCH_serve.json");
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    sqlgen_obs::obs_info!("[serve-bench] wrote {}", path.display());

    args.finish_obs();
    // The smoke contract for CI: traffic flowed in every phase, the warm
    // phase actually exercised the cache, and every server shut down
    // cleanly (reaching this line proves the joins).
    let mut failed = false;
    for p in &phases {
        if p.queries_per_sec <= 0.0 {
            eprintln!(
                "[serve-bench] FAIL: phase {} sustained zero throughput",
                p.name
            );
            failed = true;
        }
        if p.name == "open-warm" && p.cache_hit_rate <= 0.9 {
            eprintln!(
                "[serve-bench] FAIL: open-warm cache hit rate {:.3} <= 0.9",
                p.cache_hit_rate
            );
            failed = true;
        }
    }
    for p in &sweep_points {
        if p.ok == 0 {
            eprintln!(
                "[serve-bench] FAIL: qps-sweep point at {:.0}% completed zero requests",
                p.fraction * 100.0
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}

/// Runs the open-loop cold and warm phases against one quant-or-f32 server
/// per phase. Cold paces unique seeds at `qps` (or 60% of a calibration
/// burst when `qps` is 0); warm replays a 64-seed working set closed-loop
/// after a sequential warmup pass, so nearly every request is a cache hit.
#[cfg(target_os = "linux")]
#[allow(clippy::too_many_arguments)]
fn run_open_phases(
    db: &Database,
    seed: u64,
    batch: usize,
    connections: usize,
    qps: f64,
    n_per_request: usize,
    quant: bool,
    smoke: bool,
) -> (PhaseResult, PhaseResult) {
    const WARM_POOL: u64 = 64;
    let start_server = || {
        let mut gen_config = harness_gen_config(seed);
        gen_config.quantize = quant;
        let schema = Schema::build("tpch", db, &gen_config, None, 512);
        serve(
            ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                batch,
                max_queue: 512,
                // Paced arrivals are smoother than closed-loop bursts; a
                // slightly longer gather window keeps batches full without
                // a standing queue.
                max_wait_ms: 4,
                max_batch_jobs: (batch * 8).max(16),
                read_timeout_ms: 120_000,
                write_timeout_ms: 120_000,
                // A/B escape hatch: BENCH_SERVE_LEGACY=1 runs the open
                // phases against the worker-per-connection pool instead of
                // the event backend (small connection counts only).
                legacy_pool: std::env::var("BENCH_SERVE_LEGACY").is_ok(),
                ..ServeConfig::default()
            },
            vec![schema],
        )
        .expect("bind ephemeral port")
    };
    let (cold_secs, warm_secs) = if smoke {
        (1.2f64, 1.2f64)
    } else {
        (6.0f64, 4.0f64)
    };

    // --- open-cold --------------------------------------------------------
    let server = start_server();
    let addr = server.addr();
    let target_rps = if qps > 0.0 {
        qps
    } else {
        // Calibration burst: short closed-loop run over a few connections,
        // unique seeds from a disjoint range; pace the timed run at 60%.
        let cal = open_loop::run(
            addr,
            &open_loop::OpenPlan {
                connections: connections.min(64),
                target_rps: 0.0,
                duration: Duration::from_secs_f64(if smoke { 0.5 } else { 1.0 }),
                n_per_request,
                seed_base: 3 << 40,
                seed_pool: 0,
            },
        );
        let capacity = cal.ok as f64 / cal.seconds.max(1e-9);
        // Closed-loop calibration overstates paced capacity (a deep queue
        // always forms full batches); 60% leaves headroom for the
        // shallower batches a smooth arrival process produces.
        sqlgen_obs::obs_info!(
            "[serve-bench] open-cold calibration: {:.0} req/s capacity → pacing at 60%",
            capacity
        );
        (capacity * 0.60).max(1.0)
    };
    let (hits0, misses0, _) = server.cache_stats();
    let phase_start = Instant::now();
    let (stop, sampler) = spawn_depth_sampler(&server, phase_start);
    let mut cold_stats = open_loop::run(
        addr,
        &open_loop::OpenPlan {
            connections,
            target_rps,
            duration: Duration::from_secs_f64(cold_secs),
            n_per_request,
            seed_base: 1 << 40,
            seed_pool: 0,
        },
    );
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let cold_sent = cold_stats.sent;
    {
        let mut d = cold_stats.send_delays_ms.clone();
        d.sort_by(f64::total_cmp);
        sqlgen_obs::obs_info!(
            "[serve-bench] open-cold send delay p50/p95/max {:.1}/{:.1}/{:.1}ms",
            percentile(&d, 0.50),
            percentile(&d, 0.95),
            d.last().copied().unwrap_or(0.0)
        );
    }
    let cold_timeline = downsample(sampler.join().expect("queue sampler"));
    let (hits1, misses1, _) = server.cache_stats();
    let cold_breakdown = (
        read_breakdown("queue_wait", batch),
        read_breakdown("gather", batch),
        read_breakdown("exec", batch),
    );
    server.shutdown();
    let cold = open_phase_result(
        "open-cold",
        batch,
        connections,
        quant,
        target_rps,
        &mut cold_stats,
        n_per_request,
        (hits1 - hits0, misses1 - misses0),
        cold_breakdown,
        cold_timeline,
    );
    sqlgen_obs::obs_info!(
        "[serve-bench] open-cold: {:.1} q/s at {:.0} target req/s over {:.2}s ({} sent, {} ok, {} rejected, \
         {} timeouts, {} errors), p95 {:.1}ms, hit-rate {:.3}",
        cold.queries_per_sec,
        target_rps,
        cold.seconds,
        cold_sent,
        cold.ok,
        cold.rejected,
        cold.timeouts,
        cold.other_errors,
        cold.latency_p95_ms,
        cold.cache_hit_rate
    );

    // --- open-warm --------------------------------------------------------
    let server = start_server();
    let addr = server.addr();
    // Sequential warmup: populate the 64-seed working set once so the
    // timed window measures steady-state hits, not fill.
    {
        let mut c = Client::connect(addr, Duration::from_secs(120)).expect("warmup connect");
        for s in 0..WARM_POOL {
            let body = format!(
                r#"{{"constraint":{{"metric":"cardinality","min":1,"max":500}},"n":{n_per_request},"seed":{}}}"#,
                (2u64 << 40) + s
            );
            let (status, resp) = c
                .request("POST", "/generate", Some(&body))
                .expect("warmup request");
            assert_eq!(status, 200, "warmup request failed: {resp}");
        }
    }
    let (hits0, misses0, _) = server.cache_stats();
    let phase_start = Instant::now();
    let (stop, sampler) = spawn_depth_sampler(&server, phase_start);
    let mut warm_stats = open_loop::run(
        addr,
        &open_loop::OpenPlan {
            connections,
            target_rps: 0.0, // closed loop: measure hit-path capacity
            duration: Duration::from_secs_f64(warm_secs),
            n_per_request,
            seed_base: 2 << 40,
            seed_pool: WARM_POOL,
        },
    );
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let warm_timeline = downsample(sampler.join().expect("queue sampler"));
    let (hits1, misses1, _) = server.cache_stats();
    let warm_breakdown = (
        read_breakdown("queue_wait", batch),
        read_breakdown("gather", batch),
        read_breakdown("exec", batch),
    );
    server.shutdown();
    let warm = open_phase_result(
        "open-warm",
        batch,
        connections,
        quant,
        0.0,
        &mut warm_stats,
        n_per_request,
        (hits1 - hits0, misses1 - misses0),
        warm_breakdown,
        warm_timeline,
    );
    sqlgen_obs::obs_info!(
        "[serve-bench] open-warm: {:.1} q/s ({} ok, {} errors), p95 {:.1}ms, hit-rate {:.3}",
        warm.queries_per_sec,
        warm.ok,
        warm.other_errors,
        warm.latency_p95_ms,
        warm.cache_hit_rate
    );
    (cold, warm)
}

#[cfg(target_os = "linux")]
#[allow(clippy::too_many_arguments)]
fn open_phase_result(
    name: &str,
    batch: usize,
    connections: usize,
    quantized: bool,
    target_rps: f64,
    stats: &mut open_loop::OpenStats,
    n_per_request: usize,
    (hits, misses): (u64, u64),
    (queue_wait, gather, exec): (PhaseBreakdown, PhaseBreakdown, PhaseBreakdown),
    queue_depth_timeline: Vec<(f64, usize)>,
) -> PhaseResult {
    let lookups = hits + misses;
    PhaseResult {
        name: name.to_string(),
        batch,
        connections,
        quantized,
        target_qps: target_rps * n_per_request as f64,
        seconds: stats.seconds,
        ok: stats.ok,
        rejected: stats.rejected,
        timeouts: stats.timeouts,
        other_errors: stats.other_errors,
        requests_per_sec: stats.ok as f64 / stats.seconds.max(1e-9),
        queries_per_sec: (stats.ok * n_per_request) as f64 / stats.seconds.max(1e-9),
        latency_p50_ms: stats.p(0.50),
        latency_p95_ms: stats.p(0.95),
        latency_p99_ms: stats.p(0.99),
        cache_hit_rate: if lookups > 0 {
            hits as f64 / lookups as f64
        } else {
            0.0
        },
        queue_wait,
        gather,
        exec,
        queue_depth_timeline,
    }
}

/// One offered-rate point of the `--qps-sweep` grid.
struct SweepPoint {
    /// Fraction of the calibrated closed-loop capacity offered.
    fraction: f64,
    target_rps: f64,
    achieved_rps: f64,
    queries_per_sec: f64,
    ok: usize,
    rejected: usize,
    timeouts: usize,
    other_errors: usize,
    latency_p50_ms: f64,
    latency_p95_ms: f64,
}

/// Paced rate sweep: one server, a calibration burst, then a short paced
/// run per grid fraction. Seeds are unique per run (disjoint ranges), so
/// every request exercises the full generation path — this measures the
/// saturation curve, not the cache.
#[cfg(target_os = "linux")]
fn run_qps_sweep(
    db: &Database,
    seed: u64,
    batch: usize,
    connections: usize,
    n_per_request: usize,
    quant: bool,
    smoke: bool,
) -> Vec<SweepPoint> {
    let mut gen_config = harness_gen_config(seed);
    gen_config.quantize = quant;
    let schema = Schema::build("tpch", db, &gen_config, None, 512);
    let server = serve(
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            batch,
            max_queue: 512,
            max_wait_ms: 4,
            max_batch_jobs: (batch * 8).max(16),
            read_timeout_ms: 120_000,
            write_timeout_ms: 120_000,
            ..ServeConfig::default()
        },
        vec![schema],
    )
    .expect("bind ephemeral port");
    let addr = server.addr();
    let cal = open_loop::run(
        addr,
        &open_loop::OpenPlan {
            connections: connections.min(64),
            target_rps: 0.0,
            duration: Duration::from_secs_f64(if smoke { 0.5 } else { 1.0 }),
            n_per_request,
            seed_base: 9 << 40,
            seed_pool: 0,
        },
    );
    let capacity = (cal.ok as f64 / cal.seconds.max(1e-9)).max(1.0);
    sqlgen_obs::obs_info!(
        "[serve-bench] qps-sweep calibration: {capacity:.0} req/s closed-loop capacity"
    );
    let fractions: &[f64] = if smoke {
        &[0.4, 0.8]
    } else {
        &[0.25, 0.50, 0.75, 0.90, 1.10]
    };
    let run_secs = if smoke { 0.8 } else { 3.0 };
    let mut points = Vec::new();
    for (i, &fraction) in fractions.iter().enumerate() {
        let target_rps = (capacity * fraction).max(1.0);
        let mut stats = open_loop::run(
            addr,
            &open_loop::OpenPlan {
                connections,
                target_rps,
                duration: Duration::from_secs_f64(run_secs),
                n_per_request,
                // Disjoint seed range per rate point → no cache hits.
                seed_base: (10 + i as u64) << 40,
                seed_pool: 0,
            },
        );
        let point = SweepPoint {
            fraction,
            target_rps,
            achieved_rps: stats.ok as f64 / stats.seconds.max(1e-9),
            queries_per_sec: (stats.ok * n_per_request) as f64 / stats.seconds.max(1e-9),
            ok: stats.ok,
            rejected: stats.rejected,
            timeouts: stats.timeouts,
            other_errors: stats.other_errors,
            latency_p50_ms: stats.p(0.50),
            latency_p95_ms: stats.p(0.95),
        };
        sqlgen_obs::obs_info!(
            "[serve-bench] qps-sweep {:.0}%: offered {:.0} req/s → achieved {:.1} req/s \
             ({:.1} q/s), p50/p95 {:.1}/{:.1}ms, {} rejected",
            fraction * 100.0,
            target_rps,
            point.achieved_rps,
            point.queries_per_sec,
            point.latency_p50_ms,
            point.latency_p95_ms,
            point.rejected
        );
        points.push(point);
    }
    server.shutdown();
    points
}

fn sweep_json(p: &SweepPoint) -> String {
    format!(
        "{{\"fraction\": {:.2}, \"target_rps\": {:.1}, \"achieved_rps\": {:.2}, \
         \"queries_per_sec\": {:.2}, \"ok\": {}, \"rejected\": {}, \"timeouts\": {}, \
         \"other_errors\": {}, \"latency_p50_ms\": {:.2}, \"latency_p95_ms\": {:.2}}}",
        p.fraction,
        p.target_rps,
        p.achieved_rps,
        p.queries_per_sec,
        p.ok,
        p.rejected,
        p.timeouts,
        p.other_errors,
        p.latency_p50_ms,
        p.latency_p95_ms
    )
}

fn breakdown_json(b: &PhaseBreakdown) -> String {
    format!(
        "{{\"samples\": {}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}}}",
        b.samples, b.p50_ms, b.p95_ms
    )
}

fn phase_json(p: &PhaseResult) -> String {
    let timeline: Vec<String> = p
        .queue_depth_timeline
        .iter()
        .map(|(t, d)| format!("[{t:.3}, {d}]"))
        .collect();
    format!(
        "{{\"name\": \"{}\", \"batch\": {}, \"connections\": {}, \"quantized\": {}, \
         \"target_qps\": {:.1}, \"seconds\": {:.3}, \"ok\": {}, \"rejected\": {}, \
         \"timeouts\": {}, \"other_errors\": {}, \"requests_per_sec\": {:.2}, \
         \"queries_per_sec\": {:.2}, \"cache_hit_rate\": {:.4}, \"latency_p50_ms\": {:.2}, \
         \"latency_p95_ms\": {:.2}, \"latency_p99_ms\": {:.2}, \
         \"phase_breakdown\": {{\"queue_wait\": {}, \"gather\": {}, \"exec\": {}}}, \
         \"queue_depth_timeline\": [{}]}}",
        p.name,
        p.batch,
        p.connections,
        p.quantized,
        p.target_qps,
        p.seconds,
        p.ok,
        p.rejected,
        p.timeouts,
        p.other_errors,
        p.requests_per_sec,
        p.queries_per_sec,
        p.cache_hit_rate,
        p.latency_p50_ms,
        p.latency_p95_ms,
        p.latency_p99_ms,
        breakdown_json(&p.queue_wait),
        breakdown_json(&p.gather),
        breakdown_json(&p.exec),
        timeline.join(", ")
    )
}
