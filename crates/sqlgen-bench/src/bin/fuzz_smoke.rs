//! Invariant/differential fuzzing entry point (CI smoke budget).
//!
//! Runs `sqlgen-fuzz` across all nine invariant families and exits non-zero
//! on any violation, printing the failing SQL, its shrunk reproduction and
//! the case seed. `--family <name>` alone focuses the whole budget on one
//! family; with `--case-seed` it reproduces a single reported case:
//!
//! ```text
//! fuzz_smoke --family batch-equivalence --iters 60
//! fuzz_smoke --family differential --case-seed 0xDEADBEEF
//! ```

use sqlgen_fuzz::{run_case, run_with, Family, FuzzConfig};

struct Args {
    cfg: FuzzConfig,
    family: Option<Family>,
    case_seed: Option<u64>,
    quiet: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        cfg: FuzzConfig {
            iters: 2000,
            seed: 0,
            max_failures: 5,
        },
        family: None,
        case_seed: None,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| panic!("flag {name} needs a value"))
        };
        match flag.as_str() {
            "--iters" => args.cfg.iters = value("--iters").parse().expect("--iters: integer"),
            "--seed" => args.cfg.seed = parse_u64(&value("--seed")),
            "--max-failures" => {
                args.cfg.max_failures = value("--max-failures")
                    .parse()
                    .expect("--max-failures: integer");
            }
            "--family" => {
                let name = value("--family");
                args.family = Some(Family::from_name(&name).unwrap_or_else(|| {
                    let all: Vec<&str> = Family::ALL.iter().map(|f| f.name()).collect();
                    panic!("--family: one of {} (got {name})", all.join(", "))
                }));
            }
            "--case-seed" => args.case_seed = Some(parse_u64(&value("--case-seed"))),
            "--quiet" | "-q" => args.quiet = true,
            "--help" | "-h" => {
                println!(
                    "flags: --iters <n> --seed <u64> --max-failures <n> --quiet\n\
                     focus: --family <name> (whole budget on one family)\n\
                     repro: --family <name> --case-seed <u64|0xHEX>"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other} (try --help)"),
        }
    }
    args
}

fn parse_u64(s: &str) -> u64 {
    match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).expect("hex integer"),
        None => s.parse().expect("integer"),
    }
}

fn main() {
    let args = parse_args();

    // Single-case reproduction mode.
    if let (Some(family), Some(seed)) = (args.family, args.case_seed) {
        match run_case(family, seed) {
            Ok(checks) => println!("[{family}] case seed {seed:#x}: {checks} checks passed"),
            Err(fail) => {
                println!("[{family}] case seed {seed:#x}: {}", fail.detail);
                if let Some(sql) = &fail.sql {
                    println!("  sql:    {sql}");
                }
                if let Some(sql) = &fail.shrunk_sql {
                    println!("  shrunk: {sql}");
                }
                std::process::exit(1);
            }
        }
        return;
    }
    if args.case_seed.is_some() {
        panic!("--case-seed needs --family");
    }

    // `--family` without `--case-seed`: whole budget on that one family.
    let families: &[Family] = match &args.family {
        Some(f) => std::slice::from_ref(f),
        None => &Family::ALL,
    };
    let report = run_with(&args.cfg, families);
    if !args.quiet {
        println!("fuzz_smoke: {}", report.summary());
    }
    if !report.ok() {
        for f in &report.failures {
            eprintln!("{f}");
        }
        eprintln!(
            "fuzz_smoke: {} failure(s); reproduce with --family <name> --case-seed <seed>",
            report.failures.len()
        );
        std::process::exit(1);
    }
}
