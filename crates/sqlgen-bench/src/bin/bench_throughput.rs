//! Throughput benchmark for the RL pipeline.
//!
//! Measures training throughput (episodes/sec, tokens/sec) at `--threads 1`
//! versus a parallel worker count and across a lane-batched training sweep
//! (batched BPTT at batch 4/8/16), and inference throughput (queries/sec,
//! tokens/sec) with a warm policy across a batch-size sweep — plus p50/p95
//! per-token step latency from the `rl.step.latency_us` histogram. The
//! histogram is reset between phases and every phase row records the
//! machine's hardware thread count alongside its own threads/batch, so
//! rows are comparable in isolation. Results go to `BENCH_train.json` and
//! `BENCH_generate.json` in `--out` (default: current directory).
//!
//! The sweeps run batch sizes 1/4/8/16 by default; `--batch <B>` narrows
//! them to `[1, B]` (used by CI to keep the smoke run fast). `--quant`
//! additionally sweeps inference on the int8 quantized snapshot.
//!
//! Constraint satisfaction is accounted separately from timing: each sweep
//! point runs one deterministic `generate_seeded(n, seed)` pass (untimed)
//! and counts each completed query exactly once, so `satisfied`/`queries`
//! and `satisfied_rate` are reproducible and never depend on which of the
//! timing repetitions happened to be fastest. `--no-refine` disables
//! constraint-miss refinement (DESIGN.md §12) for the whole run;
//! `--assert-satisfied <rate>` exits non-zero if any sweep point's
//! `satisfied_rate` falls below `rate` (used by CI).
//!
//! `--smoke` shrinks everything for a CI sanity run (seconds, not minutes).
//! All other flags are the shared harness flags (`--help`).

use sqlgen_bench::methods::harness_gen_config;
use sqlgen_bench::HarnessArgs;
use sqlgen_core::LearnedSqlGen;
use sqlgen_obs::metrics::Histogram;
use sqlgen_rl::Constraint;
use sqlgen_storage::gen::Benchmark;
use sqlgen_storage::Database;
use std::fmt::Write as _;
use std::time::Instant;

struct TrainPhase {
    threads: usize,
    /// Lockstep training lanes (batched BPTT); 1 = serial updates.
    batch: usize,
    hardware_threads: usize,
    seconds: f64,
    episodes_per_sec: f64,
    tokens_per_sec: f64,
    step_p50_us: f64,
    step_p95_us: f64,
}

/// Trains a fresh generator and measures the phase; returns the trained
/// generator so the inference phase can reuse the warm policy. The step
/// histogram is reset up front so the phase row only counts its own
/// samples.
#[allow(clippy::too_many_arguments)]
fn run_train(
    db: &Database,
    constraint: Constraint,
    seed: u64,
    episodes: usize,
    threads: usize,
    batch: usize,
    refine: bool,
    hist: &Histogram,
) -> (LearnedSqlGen, TrainPhase) {
    let cfg = harness_gen_config(seed)
        .with_threads(threads)
        .with_batch_size(batch)
        .with_refine(refine);
    let mut g = LearnedSqlGen::new(db, constraint, cfg);
    hist.reset();
    let start = Instant::now();
    g.train(episodes);
    let seconds = start.elapsed().as_secs_f64();
    let phase = TrainPhase {
        threads,
        batch,
        hardware_threads: std::thread::available_parallelism().map_or(1, |p| p.get()),
        seconds,
        episodes_per_sec: episodes as f64 / seconds,
        // Every step records one latency sample, so the histogram count is
        // the exact token count for the phase.
        tokens_per_sec: hist.count() as f64 / seconds,
        step_p50_us: hist.p50(),
        step_p95_us: hist.p95(),
    };
    (g, phase)
}

fn phase_json(p: &TrainPhase) -> String {
    format!(
        "{{\"threads\": {}, \"batch\": {}, \"hardware_threads\": {}, \"seconds\": {:.3}, \
         \"episodes_per_sec\": {:.2}, \"tokens_per_sec\": {:.1}, \
         \"step_latency_p50_us\": {:.2}, \"step_latency_p95_us\": {:.2}}}",
        p.threads,
        p.batch,
        p.hardware_threads,
        p.seconds,
        p.episodes_per_sec,
        p.tokens_per_sec,
        p.step_p50_us,
        p.step_p95_us
    )
}

struct GenPhase {
    batch: usize,
    quantized: bool,
    seconds: f64,
    /// Queries in the deterministic accounting pass (denominator of
    /// `satisfied_rate`).
    queries: usize,
    satisfied: usize,
    satisfied_rate: f64,
    queries_per_sec: f64,
    tokens_per_sec: f64,
    step_p50_us: f64,
    step_p95_us: f64,
}

/// One inference measurement at a given batch width on the warm policy.
///
/// Each phase is short (~0.1 s), so a single run is at the mercy of scheduler
/// noise on shared hardware; take the best of a few repetitions instead —
/// for *timing* only. Constraint satisfaction is accounted by a separate
/// deterministic `generate_seeded(n, seed)` pass (untimed), counting each
/// completed query exactly once: the timing reps each advance the trainer
/// RNG, so "satisfied from whichever rep was fastest" is a different random
/// draw every run and was the source of the phantom batch/int8 satisfaction
/// regressions (DESIGN.md §12).
fn run_generate(
    warm: &mut LearnedSqlGen,
    n: usize,
    seed: u64,
    batch: usize,
    quantized: bool,
    hist: &Histogram,
) -> GenPhase {
    warm.set_batch_size(batch);
    warm.set_quantize(quantized);
    let qs = warm.generate_seeded(n, seed);
    let queries = qs.len();
    let satisfied = qs.iter().filter(|q| q.satisfied).count();
    let mut best: Option<GenPhase> = None;
    for _ in 0..3 {
        hist.reset();
        let start = Instant::now();
        let _ = warm.generate(n);
        let seconds = start.elapsed().as_secs_f64();
        // Every emitted token records one latency sample (amortized per lane on
        // the batched path), so the histogram count is the exact token count.
        let tokens = hist.count();
        let phase = GenPhase {
            batch,
            quantized,
            seconds,
            queries,
            satisfied,
            satisfied_rate: satisfied as f64 / queries.max(1) as f64,
            queries_per_sec: n as f64 / seconds,
            tokens_per_sec: tokens as f64 / seconds,
            step_p50_us: hist.p50(),
            step_p95_us: hist.p95(),
        };
        if best
            .as_ref()
            .is_none_or(|b| phase.tokens_per_sec > b.tokens_per_sec)
        {
            best = Some(phase);
        }
    }
    best.expect("at least one rep")
}

fn gen_phase_json(p: &GenPhase) -> String {
    format!(
        "{{\"batch\": {}, \"quantized\": {}, \"seconds\": {:.3}, \"queries\": {}, \
         \"satisfied\": {}, \"satisfied_rate\": {:.4}, \
         \"queries_per_sec\": {:.2}, \"tokens_per_sec\": {:.1}, \
         \"step_latency_p50_us\": {:.2}, \"step_latency_p95_us\": {:.2}}}",
        p.batch,
        p.quantized,
        p.seconds,
        p.queries,
        p.satisfied,
        p.satisfied_rate,
        p.queries_per_sec,
        p.tokens_per_sec,
        p.step_p50_us,
        p.step_p95_us
    )
}

fn main() {
    // Binary-specific flags are peeled off before the shared parser (which
    // rejects unknown flags).
    let mut smoke = false;
    let mut quant = false;
    let mut refine = true;
    let mut assert_satisfied: Option<f64> = None;
    let mut out_dir = String::from(".");
    let mut rest = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--quant" => quant = true,
            "--no-refine" => refine = false,
            "--assert-satisfied" => {
                let v = it.next().expect("--assert-satisfied needs a value");
                assert_satisfied = Some(v.parse().expect("--assert-satisfied needs a rate"));
            }
            "--out" => out_dir = it.next().expect("--out needs a value"),
            _ => rest.push(a),
        }
    }
    let mut args = HarnessArgs::parse_from(rest);
    if smoke {
        args.n = args.n.min(40);
        args.train = args.train.min(60);
        args.scale = args.scale.min(0.1);
    }
    args.init_obs();
    sqlgen_obs::enable_metrics();

    let hw_threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    let par = if args.threads > 1 { args.threads } else { 4 };
    let note = if hw_threads < par {
        format!(
            "machine exposes {hw_threads} hardware thread(s); the threads={par} phase \
             exercises the parallel code path but cannot show real speedup here"
        )
    } else {
        String::new()
    };

    sqlgen_obs::obs_info!(
        "[throughput] tpch scale={} seed={} train={} n={} threads=1 vs {par} (hw={hw_threads})",
        args.scale,
        args.seed,
        args.train,
        args.n
    );
    let db = Benchmark::TpcH.build(args.scale, args.seed);
    let constraint = Constraint::cardinality_range(100.0, 10_000.0);
    let hist = sqlgen_obs::metrics::global().histogram("rl.step.latency_us");

    // --- training phases ---------------------------------------------------
    let (mut warm, serial) = run_train(&db, constraint, args.seed, args.train, 1, 1, refine, &hist);
    sqlgen_obs::obs_info!(
        "[throughput] train threads=1: {:.1} eps/s, {:.0} tok/s, step p50 {:.1}us p95 {:.1}us",
        serial.episodes_per_sec,
        serial.tokens_per_sec,
        serial.step_p50_us,
        serial.step_p95_us
    );
    let (_, parallel) = run_train(
        &db, constraint, args.seed, args.train, par, 1, refine, &hist,
    );
    sqlgen_obs::obs_info!(
        "[throughput] train threads={par}: {:.1} eps/s, {:.0} tok/s, step p50 {:.1}us p95 {:.1}us",
        parallel.episodes_per_sec,
        parallel.tokens_per_sec,
        parallel.step_p50_us,
        parallel.step_p95_us
    );
    let speedup = parallel.episodes_per_sec / serial.episodes_per_sec;

    // Lane-batched training sweep (batched BPTT, single thread). `--batch B`
    // narrows it for the CI smoke run.
    let train_sweep: Vec<usize> = if args.batch > 1 {
        vec![args.batch]
    } else {
        vec![4, 8, 16]
    };
    let mut batched_phases = Vec::with_capacity(train_sweep.len());
    for &bs in &train_sweep {
        let (_, p) = run_train(&db, constraint, args.seed, args.train, 1, bs, refine, &hist);
        sqlgen_obs::obs_info!(
            "[throughput] train batch={bs}: {:.1} eps/s, {:.0} tok/s, step p50 {:.1}us p95 {:.1}us",
            p.episodes_per_sec,
            p.tokens_per_sec,
            p.step_p50_us,
            p.step_p95_us
        );
        batched_phases.push(p);
    }
    let best_batched = batched_phases
        .iter()
        .max_by(|a, b| a.episodes_per_sec.total_cmp(&b.episodes_per_sec))
        .expect("train sweep has a batched phase");
    let batched_speedup = best_batched.episodes_per_sec / serial.episodes_per_sec;
    sqlgen_obs::obs_info!(
        "[throughput] train batch={} vs serial: {:.2}x episodes/sec",
        best_batched.batch,
        batched_speedup
    );

    let mut train_json = String::from("{\n");
    let _ = writeln!(train_json, "  \"benchmark\": \"tpch\",");
    let _ = writeln!(train_json, "  \"scale\": {},", args.scale);
    let _ = writeln!(train_json, "  \"seed\": {},", args.seed);
    let _ = writeln!(train_json, "  \"train_episodes\": {},", args.train);
    let _ = writeln!(train_json, "  \"hardware_threads\": {hw_threads},");
    let _ = writeln!(train_json, "  \"note\": {},", json_str(&note));
    let _ = writeln!(
        train_json,
        "  \"inference_batching\": {},",
        json_str(
            "batched GEMM lanes apply to the inference path; see \
             BENCH_generate.json batch_sweep. Training rollouts use --threads \
             or --batch (lane-batched BPTT, one accumulated step per round)."
        )
    );
    let mut phase_rows: Vec<String> = vec![phase_json(&serial), phase_json(&parallel)];
    phase_rows.extend(batched_phases.iter().map(phase_json));
    let indented: Vec<String> = phase_rows.iter().map(|r| format!("    {r}")).collect();
    let _ = writeln!(
        train_json,
        "  \"phases\": [\n{}\n  ],",
        indented.join(",\n")
    );
    let _ = writeln!(train_json, "  \"speedup_vs_serial\": {speedup:.2},");
    let _ = writeln!(
        train_json,
        "  \"batched_train_speedup_vs_serial\": {{\"batch\": {}, \"vs_batch_1\": {:.2}}}",
        best_batched.batch, batched_speedup
    );
    train_json.push_str("}\n");
    write_out(&out_dir, "BENCH_train.json", &train_json);

    // --- inference batch sweep (warm policy from the serial run) -----------
    // `--batch B` narrows the default 1/4/8/16 sweep to [1, B] so the CI
    // smoke run stays fast; batch 1 is always first (the serial baseline).
    let sweep: Vec<usize> = if args.batch > 1 {
        vec![1, args.batch]
    } else {
        vec![1, 4, 8, 16]
    };
    let mut phases = Vec::with_capacity(sweep.len());
    for &bs in &sweep {
        let p = run_generate(&mut warm, args.n, args.seed, bs, false, &hist);
        sqlgen_obs::obs_info!(
            "[throughput] generate batch={}: {:.1} q/s, {:.0} tok/s, {}/{} satisfied, \
             step p50 {:.1}us p95 {:.1}us",
            p.batch,
            p.queries_per_sec,
            p.tokens_per_sec,
            p.satisfied,
            p.queries,
            p.step_p50_us,
            p.step_p95_us
        );
        phases.push(p);
    }
    // `--quant` repeats the sweep on the int8 snapshot of the same warm policy.
    let mut quant_phases = Vec::new();
    if quant {
        for &bs in &sweep {
            let p = run_generate(&mut warm, args.n, args.seed, bs, true, &hist);
            sqlgen_obs::obs_info!(
                "[throughput] generate batch={} int8: {:.1} q/s, {:.0} tok/s, \
                 {}/{} satisfied, step p50 {:.1}us p95 {:.1}us",
                p.batch,
                p.queries_per_sec,
                p.tokens_per_sec,
                p.satisfied,
                p.queries,
                p.step_p50_us,
                p.step_p95_us
            );
            quant_phases.push(p);
        }
    }
    let baseline = &phases[0];
    // Report the best batched width: throughput peaks where lane-axis SIMD
    // wins outpace refill overhead (batch 16 can regress vs 8 on narrow SIMD).
    let best = phases[1..]
        .iter()
        .max_by(|a, b| a.tokens_per_sec.total_cmp(&b.tokens_per_sec))
        .expect("sweep has a batched phase");
    let batch_speedup = best.tokens_per_sec / baseline.tokens_per_sec;
    sqlgen_obs::obs_info!(
        "[throughput] batch={} vs batch=1: {:.2}x tokens/sec",
        best.batch,
        batch_speedup
    );

    let mut gen_json = String::from("{\n");
    let _ = writeln!(gen_json, "  \"benchmark\": \"tpch\",");
    let _ = writeln!(gen_json, "  \"scale\": {},", args.scale);
    let _ = writeln!(gen_json, "  \"seed\": {},", args.seed);
    let _ = writeln!(gen_json, "  \"refine\": {refine},");
    let _ = writeln!(gen_json, "  \"queries\": {},", baseline.queries);
    let _ = writeln!(gen_json, "  \"satisfied\": {},", baseline.satisfied);
    let _ = writeln!(
        gen_json,
        "  \"satisfied_rate\": {:.4},",
        baseline.satisfied_rate
    );
    let _ = writeln!(gen_json, "  \"seconds\": {:.3},", baseline.seconds);
    let _ = writeln!(
        gen_json,
        "  \"queries_per_sec\": {:.2},",
        baseline.queries_per_sec
    );
    let _ = writeln!(
        gen_json,
        "  \"tokens_per_sec\": {:.1},",
        baseline.tokens_per_sec
    );
    let _ = writeln!(
        gen_json,
        "  \"step_latency_p50_us\": {:.2},",
        baseline.step_p50_us
    );
    let _ = writeln!(
        gen_json,
        "  \"step_latency_p95_us\": {:.2},",
        baseline.step_p95_us
    );
    let sweep_rows: Vec<String> = phases
        .iter()
        .map(|p| format!("    {}", gen_phase_json(p)))
        .collect();
    let _ = writeln!(
        gen_json,
        "  \"batch_sweep\": [\n{}\n  ],",
        sweep_rows.join(",\n")
    );
    if quant_phases.is_empty() {
        let _ = writeln!(
            gen_json,
            "  \"batch_speedup_tokens_per_sec\": {{\"batch\": {}, \"vs_batch_1\": {:.2}}}",
            best.batch, batch_speedup
        );
    } else {
        let _ = writeln!(
            gen_json,
            "  \"batch_speedup_tokens_per_sec\": {{\"batch\": {}, \"vs_batch_1\": {:.2}}},",
            best.batch, batch_speedup
        );
        let quant_rows: Vec<String> = quant_phases
            .iter()
            .map(|p| format!("    {}", gen_phase_json(p)))
            .collect();
        let _ = writeln!(
            gen_json,
            "  \"quant_sweep\": [\n{}\n  ],",
            quant_rows.join(",\n")
        );
        // Quantization's win is measured at matched batch width: best int8
        // phase vs the f32 phase at the same width.
        let best_q = quant_phases
            .iter()
            .max_by(|a, b| a.tokens_per_sec.total_cmp(&b.tokens_per_sec))
            .expect("quant sweep is non-empty");
        let f32_same = phases
            .iter()
            .find(|p| p.batch == best_q.batch)
            .expect("f32 sweep covers the same widths");
        let _ = writeln!(
            gen_json,
            "  \"quant_speedup_tokens_per_sec\": {{\"batch\": {}, \"vs_f32_same_batch\": {:.2}}}",
            best_q.batch,
            best_q.tokens_per_sec / f32_same.tokens_per_sec
        );
        sqlgen_obs::obs_info!(
            "[throughput] int8 batch={} vs f32 batch={}: {:.2}x tokens/sec",
            best_q.batch,
            f32_same.batch,
            best_q.tokens_per_sec / f32_same.tokens_per_sec
        );
    }
    gen_json.push_str("}\n");
    write_out(&out_dir, "BENCH_generate.json", &gen_json);

    args.finish_obs();

    if let Some(rate) = assert_satisfied {
        let worst = phases
            .iter()
            .chain(&quant_phases)
            .min_by(|a, b| a.satisfied_rate.total_cmp(&b.satisfied_rate))
            .expect("sweep is non-empty");
        if worst.satisfied_rate < rate {
            eprintln!(
                "bench_throughput: satisfied_rate {:.4} at batch={} quantized={} \
                 below required {rate}",
                worst.satisfied_rate, worst.batch, worst.quantized
            );
            std::process::exit(1);
        }
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn write_out(dir: &str, name: &str, content: &str) {
    let path = std::path::Path::new(dir).join(name);
    std::fs::write(&path, content)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    sqlgen_obs::obs_info!("[throughput] wrote {}", path.display());
}
