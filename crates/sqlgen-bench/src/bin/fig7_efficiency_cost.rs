//! Figure 7: generation time (training + inference) to collect N satisfied
//! queries under **cost** constraints.

use sqlgen_bench::methods::{learned_efficiency, random_efficiency, template_efficiency};
use sqlgen_bench::table::secs;
use sqlgen_bench::{write_csv, HarnessArgs, Table, TestBed};
use sqlgen_rl::Constraint;
use sqlgen_storage::gen::Benchmark;

fn main() {
    let args = HarnessArgs::parse();
    args.init_obs();
    let points: [f64; 4] = [1e2, 1e3, 1e4, 1e5];
    let ranges = [(1e2, 2e2), (1e2, 4e2), (1e2, 6e2), (1e2, 8e2)];

    let mut table = Table::new(
        format!(
            "Figure 7 — Time to generate {} satisfied queries, cost constraints \
             (scale={}, train={})",
            args.n, args.scale, args.train
        ),
        &[
            "dataset",
            "constraint",
            "SQLSmith",
            "Template",
            "LearnedSQLGen",
            "tried (S/T/L)",
        ],
    );

    for benchmark in Benchmark::ALL {
        if let Some(only) = &args.benchmark {
            if !benchmark.name().eq_ignore_ascii_case(only) {
                continue;
            }
        }
        sqlgen_obs::obs_info!("[fig7] preparing {} ...", benchmark.name());
        let bed = TestBed::new(benchmark, args.scale, args.seed);

        let constraints: Vec<(String, Constraint)> = points
            .iter()
            .map(|&c| {
                (
                    format!("Cost = 1e{:.0}", c.log10()),
                    Constraint::cost_point(c),
                )
            })
            .chain(ranges.iter().map(|&(lo, hi)| {
                (
                    format!("Cost in [{lo:.0}, {hi:.0}]"),
                    Constraint::cost_range(lo, hi),
                )
            }))
            .collect();

        for (label, constraint) in constraints {
            sqlgen_obs::obs_info!("[fig7] {} / {label}", benchmark.name());
            let rnd = random_efficiency(&bed, constraint, args.n);
            let tpl = template_efficiency(&bed, constraint, args.n);
            let lrn = learned_efficiency(&bed, constraint, args.train, args.n, args.threads);
            table.row(vec![
                benchmark.name().to_string(),
                label,
                secs(rnd.seconds),
                secs(tpl.seconds),
                secs(lrn.seconds),
                // Hardware-independent effort: queries evaluated per method
                // (the paper's time ratios are driven by this count times
                // the DBMS's per-EXPLAIN latency; see EXPERIMENTS.md).
                format!("{}/{}/{}", rnd.attempts, tpl.attempts, lrn.attempts),
            ]);
        }
    }

    table.print();
    write_csv(&table, "fig7_efficiency_cost");
    args.finish_obs();
}
