//! Ablation: entropy-regularization strength λ (paper §4.3 and §7.5).
//!
//! The paper sets λ = 0.01 "to prevent the actor from generating a lot of
//! same queries". This ablation sweeps λ and reports both accuracy and the
//! diversity of the satisfied set (distinct-SQL ratio and structural
//! entropy), reproducing the accuracy-vs-diversity trade-off.

use sqlgen_bench::methods::harness_gen_config;
use sqlgen_bench::table::pct;
use sqlgen_bench::{write_csv, HarnessArgs, Table, TestBed};
use sqlgen_core::{profile, LearnedSqlGen};
use sqlgen_rl::Constraint;
use sqlgen_storage::gen::Benchmark;

fn main() {
    let args = HarnessArgs::parse();
    args.init_obs();
    let bed = TestBed::new(Benchmark::TpcH, args.scale, args.seed);
    let constraint = Constraint::cardinality_range(1e3, 8e3);
    let lambdas = [0.0f32, 0.005, 0.01, 0.05, 0.2];

    let mut table = Table::new(
        format!(
            "Ablation — entropy regularization λ (N={}, train={}, {constraint})",
            args.n, args.train
        ),
        &[
            "lambda",
            "accuracy",
            "distinct SQL",
            "structure entropy (bits)",
            "shape entropy (bits)",
        ],
    );

    for &lambda in &lambdas {
        sqlgen_obs::obs_info!("[ablation] lambda = {lambda}");
        let mut cfg = harness_gen_config(bed.seed).with_threads(args.threads);
        cfg.train.lambda = lambda;
        let mut g = LearnedSqlGen::new(&bed.db, constraint, cfg);
        g.train(args.train);
        let qs = g.generate(args.n);
        let acc = qs.iter().filter(|q| q.satisfied).count() as f64 / args.n as f64;
        let report = profile(&qs);
        table.row(vec![
            format!("{lambda}"),
            pct(acc),
            format!("{:.2}", report.distinct_ratio),
            format!("{:.2}", report.structure_entropy),
            format!("{:.2}", report.shape_entropy),
        ]);
    }

    table.print();
    write_csv(&table, "ablation_entropy");
    args.finish_obs();
}
