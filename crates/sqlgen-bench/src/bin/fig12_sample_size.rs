//! Figure 12: sensitivity to the value-sample size (paper §7.7).
//!
//! Varies `k`, the number of sampled values per numerical column (the
//! paper varies the ratio η of samples to distinct values), and reports
//! accuracy and total time (training + inference) for a point and a range
//! constraint on TPC-H.

use sqlgen_bench::methods::harness_gen_config;
use sqlgen_bench::table::{pct, secs};
use sqlgen_bench::{write_csv, HarnessArgs, Table, TestBed};
use sqlgen_core::LearnedSqlGen;
use sqlgen_rl::Constraint;
use sqlgen_storage::gen::Benchmark;
use sqlgen_storage::sample::SampleConfig;
use std::time::Instant;

fn main() {
    let args = HarnessArgs::parse();
    args.init_obs();
    let ks = [2usize, 5, 10, 25, 50, 100, 200];
    let constraints = [
        ("Card = 1e3", Constraint::cardinality_point(1e3)),
        ("Card in [1k, 4k]", Constraint::cardinality_range(1e3, 4e3)),
    ];

    // Average distinct count of numerical columns, to report η like the
    // paper does.
    let probe = TestBed::new(Benchmark::TpcH, args.scale, args.seed);
    let mut distinct_sum = 0usize;
    let mut distinct_cnt = 0usize;
    for t in probe.db.tables() {
        let stats = probe.est.table_stats(t.name()).expect("stats exist");
        for c in &stats.columns {
            if c.dtype.is_numeric() {
                distinct_sum += c.distinct;
                distinct_cnt += 1;
            }
        }
    }
    let avg_distinct = (distinct_sum as f64 / distinct_cnt.max(1) as f64).max(1.0);

    let mut acc_table = Table::new(
        format!(
            "Figure 12(a) — Accuracy vs sample size (N={}, TPC-H, train={})",
            args.n, args.train
        ),
        &["k", "eta", constraints[0].0, constraints[1].0],
    );
    let mut time_table = Table::new(
        format!("Figure 12(b) — Total time vs sample size (N={})", args.n),
        &["k", "eta", constraints[0].0, constraints[1].0],
    );

    for &k in &ks {
        sqlgen_obs::obs_info!("[fig12] k = {k}");
        let bed = TestBed::with_sample(
            Benchmark::TpcH,
            args.scale,
            args.seed,
            SampleConfig {
                k,
                ..Default::default()
            },
        );
        let eta = (k as f64 / avg_distinct).min(1.0);
        // RL training at this scale is seed-sensitive; average 3 seeds.
        const SEEDS: u64 = 3;
        let mut accs = Vec::new();
        let mut times = Vec::new();
        for (_, constraint) in constraints {
            let mut acc = 0.0;
            let mut time = 0.0;
            for s in 0..SEEDS {
                let start = Instant::now();
                let mut cfg =
                    harness_gen_config(bed.seed ^ (s * 0x9e37)).with_threads(args.threads);
                cfg.sample = SampleConfig {
                    k,
                    ..Default::default()
                };
                let mut g = LearnedSqlGen::new(&bed.db, constraint, cfg);
                g.train(args.train);
                let qs = g.generate(args.n);
                let satisfied = qs.iter().filter(|q| q.satisfied).count();
                acc += satisfied as f64 / args.n as f64;
                time += start.elapsed().as_secs_f64();
            }
            accs.push(acc / SEEDS as f64);
            times.push(time / SEEDS as f64);
        }
        acc_table.row(vec![
            k.to_string(),
            format!("{eta:.3}"),
            pct(accs[0]),
            pct(accs[1]),
        ]);
        time_table.row(vec![
            k.to_string(),
            format!("{eta:.3}"),
            secs(times[0]),
            secs(times[1]),
        ]);
    }

    acc_table.print();
    time_table.print();
    write_csv(&acc_table, "fig12a_accuracy");
    write_csv(&time_table, "fig12b_time");
    args.finish_obs();
}
