//! Figure 4: generation accuracy under **cardinality** constraints.
//!
//! Paper setup: N = 1000 queries per cell, point constraints
//! {10², 10⁴, 10⁶, 10⁸} and range constraints {[1k,2k] ... [1k,8k]}, on
//! TPC-H, JOB and XueTang, comparing SQLSmith / Template / LearnedSQLGen.

use sqlgen_bench::methods::{learned_accuracy, random_accuracy, template_accuracy};
use sqlgen_bench::table::pct;
use sqlgen_bench::{write_csv, HarnessArgs, Table, TestBed};
use sqlgen_rl::Constraint;
use sqlgen_storage::gen::Benchmark;

fn main() {
    let args = HarnessArgs::parse();
    args.init_obs();
    // The paper's point axis spans 10^2..10^8 on 33 GB data; our scaled data
    // caps estimated cardinalities around 10^5, so the axis keeps the same
    // decade spread, shifted (documented in EXPERIMENTS.md).
    let points: [f64; 4] = [1e1, 1e2, 1e3, 1e4];
    let ranges = [(1e3, 2e3), (1e3, 4e3), (1e3, 6e3), (1e3, 8e3)];

    let mut table = Table::new(
        format!(
            "Figure 4 — Accuracy, cardinality constraints (N={}, scale={}, train={})",
            args.n, args.scale, args.train
        ),
        &[
            "dataset",
            "constraint",
            "SQLSmith",
            "Template",
            "LearnedSQLGen",
        ],
    );

    for benchmark in Benchmark::ALL {
        if let Some(only) = &args.benchmark {
            if !benchmark.name().eq_ignore_ascii_case(only)
                && !format!("{benchmark:?}").eq_ignore_ascii_case(only)
            {
                continue;
            }
        }
        sqlgen_obs::obs_info!("[fig4] preparing {} ...", benchmark.name());
        let bed = TestBed::new(benchmark, args.scale, args.seed);

        let constraints: Vec<(String, Constraint)> = points
            .iter()
            .map(|&c| {
                (
                    format!("Card = 1e{:.0}", c.log10()),
                    Constraint::cardinality_point(c),
                )
            })
            .chain(ranges.iter().map(|&(lo, hi)| {
                (
                    format!("Card in [{:.0}k, {:.0}k]", lo / 1e3, hi / 1e3),
                    Constraint::cardinality_range(lo, hi),
                )
            }))
            .collect();

        for (label, constraint) in constraints {
            sqlgen_obs::obs_info!("[fig4] {} / {label}", benchmark.name());
            let rnd = random_accuracy(&bed, constraint, args.n);
            let tpl = template_accuracy(&bed, constraint, args.n);
            let lrn = learned_accuracy(&bed, constraint, args.train, args.n, args.threads);
            table.row(vec![
                benchmark.name().to_string(),
                label,
                pct(rnd.accuracy),
                pct(tpl.accuracy),
                pct(lrn.accuracy),
            ]);
        }
    }

    table.print();
    write_csv(&table, "fig4_accuracy_cardinality");
    args.finish_obs();
}
