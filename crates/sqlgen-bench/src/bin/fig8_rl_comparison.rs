//! Figure 8: REINFORCE vs the actor-critic LearnedSQLGen.
//!
//! (a) accuracy per range constraint, (b) time to N satisfied queries,
//! (c) the average-reward training trace. The paper runs this on JOB; the
//! binary defaults to JOB and honours `--benchmark`.

use sqlgen_bench::table::{pct, secs};
use sqlgen_bench::{write_csv, HarnessArgs, Table, TestBed};
use sqlgen_rl::{ActorCritic, Constraint, NetConfig, Reinforce, SqlGenEnv, TrainConfig};
use sqlgen_storage::gen::Benchmark;
use std::time::Instant;

fn train_cfg(seed: u64) -> TrainConfig {
    TrainConfig {
        net: NetConfig {
            embed_dim: 24,
            hidden: 24,
            layers: 2,
            dropout: 0.1,
        },
        seed,
        ..Default::default()
    }
}

enum Algo {
    Reinforce(Box<Reinforce>),
    ActorCritic(Box<ActorCritic>),
}

impl Algo {
    fn train_episode(&mut self, env: &SqlGenEnv) -> sqlgen_rl::Episode {
        match self {
            Algo::Reinforce(t) => t.train_episode(env),
            Algo::ActorCritic(t) => t.train_episode(env),
        }
    }

    fn generate(&mut self, env: &SqlGenEnv) -> sqlgen_rl::Episode {
        match self {
            Algo::Reinforce(t) => t.generate(env),
            Algo::ActorCritic(t) => t.generate(env),
        }
    }
}

/// Trains, then reports (accuracy over n, time to n satisfied, reward trace).
fn run(mut algo: Algo, env: &SqlGenEnv, train: usize, n: usize) -> (f64, f64, Vec<f32>) {
    let start = Instant::now();
    let mut trace = Vec::with_capacity(train);
    let mut found = 0usize;
    let mut time_to_n = None;
    for _ in 0..train {
        let ep = algo.train_episode(env);
        trace.push(ep.total_reward() / ep.len().max(1) as f32);
        if ep.satisfied {
            found += 1;
            if found == n && time_to_n.is_none() {
                time_to_n = Some(start.elapsed().as_secs_f64());
            }
        }
    }
    // Accuracy of the trained policy.
    let mut hits = 0;
    for _ in 0..n {
        if algo.generate(env).satisfied {
            hits += 1;
        }
    }
    // If training alone did not reach n satisfied, keep generating.
    let seconds = time_to_n.unwrap_or_else(|| {
        let mut extra = 0usize;
        let budget = n * 200;
        while found < n && extra < budget {
            extra += 1;
            if algo.generate(env).satisfied {
                found += 1;
            }
        }
        if found >= n {
            start.elapsed().as_secs_f64()
        } else if found > 0 {
            start.elapsed().as_secs_f64() * n as f64 / found as f64
        } else {
            f64::INFINITY
        }
    });
    (hits as f64 / n as f64, seconds, trace)
}

fn main() {
    let args = HarnessArgs::parse();
    args.init_obs();
    let benchmark = match args.benchmark.as_deref() {
        Some(s) => s.parse().expect("benchmark name"),
        None => Benchmark::Job,
    };
    sqlgen_obs::obs_info!("[fig8] preparing {} ...", benchmark.name());
    let bed = TestBed::new(benchmark, args.scale, args.seed);
    let ranges = [(1e3, 2e3), (1e3, 4e3), (1e3, 6e3), (1e3, 8e3)];

    let mut acc_table = Table::new(
        format!(
            "Figure 8(a) — Accuracy (N={}, {})",
            args.n,
            benchmark.name()
        ),
        &["constraint", "REINFORCE", "LearnedSQLGen (AC)"],
    );
    let mut time_table = Table::new(
        format!(
            "Figure 8(b) — Time to {} satisfied queries ({})",
            args.n,
            benchmark.name()
        ),
        &["constraint", "REINFORCE", "LearnedSQLGen (AC)"],
    );

    let mut traces: Vec<(String, Vec<f32>, Vec<f32>)> = Vec::new();
    for (lo, hi) in ranges {
        let label = format!("Card in [{:.0}k, {:.0}k]", lo / 1e3, hi / 1e3);
        sqlgen_obs::obs_info!("[fig8] {label}");
        let constraint = Constraint::cardinality_range(lo, hi);
        let env = bed.env(constraint);
        let (acc_r, t_r, trace_r) = run(
            Algo::Reinforce(Box::new(Reinforce::new(
                bed.vocab.size(),
                train_cfg(args.seed),
            ))),
            &env,
            args.train,
            args.n,
        );
        let (acc_a, t_a, trace_a) = run(
            Algo::ActorCritic(Box::new(ActorCritic::new(
                bed.vocab.size(),
                train_cfg(args.seed),
            ))),
            &env,
            args.train,
            args.n,
        );
        acc_table.row(vec![label.clone(), pct(acc_r), pct(acc_a)]);
        time_table.row(vec![label.clone(), secs(t_r), secs(t_a)]);
        traces.push((label, trace_r, trace_a));
    }

    acc_table.print();
    time_table.print();
    write_csv(&acc_table, "fig8a_accuracy");
    write_csv(&time_table, "fig8b_time");

    // Figure 8(c): average-reward trace (bucketed every 10 episodes) for the
    // first constraint.
    let mut trace_table = Table::new(
        "Figure 8(c) — Average reward per training epoch (first constraint)",
        &["epoch", "REINFORCE", "LearnedSQLGen (AC)"],
    );
    let (_, trace_r, trace_a) = &traces[0];
    let bucket = 10usize;
    for (i, chunk) in trace_r.chunks(bucket).enumerate() {
        let r: f32 = chunk.iter().sum::<f32>() / chunk.len() as f32;
        let a_chunk = &trace_a[i * bucket..((i + 1) * bucket).min(trace_a.len())];
        let a: f32 = a_chunk.iter().sum::<f32>() / a_chunk.len().max(1) as f32;
        trace_table.row(vec![
            format!("{}", i * bucket),
            format!("{r:.4}"),
            format!("{a:.4}"),
        ]);
    }
    trace_table.print();
    write_csv(&trace_table, "fig8c_training_trace");
    args.finish_obs();
}
