//! Figure 10: diversity and complexity of the generated queries.
//!
//! Paper setup: 1K queries on TPC-H — (a) join-table counts, (b) nested
//! queries, (c) aggregates, (f) SQL token lengths under `Cost = 10⁶`;
//! (d) predicate counts and (e) statement kinds under
//! `Cardinality ∈ [1k, 8k]`.

use sqlgen_bench::methods::harness_gen_config;
use sqlgen_bench::table::pct;
use sqlgen_bench::{write_csv, HarnessArgs, Table, TestBed};
use sqlgen_core::{GeneratedQuery, LearnedSqlGen};
use sqlgen_engine::{Statement, StatementKind};
use sqlgen_fsm::FsmConfig;
use sqlgen_rl::Constraint;
use sqlgen_storage::gen::Benchmark;
use std::collections::BTreeMap;

fn generate(
    bed: &TestBed,
    constraint: Constraint,
    fsm: FsmConfig,
    args: &HarnessArgs,
) -> Vec<GeneratedQuery> {
    let mut cfg = harness_gen_config(bed.seed).with_threads(args.threads);
    cfg.fsm = fsm;
    let mut g = LearnedSqlGen::new(&bed.db, constraint, cfg);
    g.train(args.train);
    g.generate(args.n)
}

fn select_stats(qs: &[GeneratedQuery]) -> (BTreeMap<usize, usize>, usize, usize, usize) {
    let mut joins: BTreeMap<usize, usize> = BTreeMap::new();
    let (mut nested, mut agg, mut selects) = (0, 0, 0);
    for q in qs {
        if let Statement::Select(s) = &q.statement {
            selects += 1;
            *joins.entry(s.join_count() + 1).or_default() += 1;
            nested += usize::from(s.has_subquery());
            agg += usize::from(s.has_aggregate());
        }
    }
    (joins, nested, agg, selects)
}

fn main() {
    let args = HarnessArgs::parse();
    args.init_obs();
    let bed = TestBed::new(Benchmark::TpcH, args.scale, args.seed);

    // (a)(b)(c)(f): cost constraint (paper: Cost = 10⁶; our cost axis is
    // shifted — see EXPERIMENTS.md).
    sqlgen_obs::obs_info!("[fig10] training under cost constraint ...");
    let cost_qs = generate(&bed, Constraint::cost_point(1e3), FsmConfig::full(), &args);
    let (joins, nested, agg, selects) = select_stats(&cost_qs);

    let mut a = Table::new(
        format!(
            "Figure 10(a) — Join table counts (N={}, Cost = 1e3)",
            args.n
        ),
        &["tables in FROM", "queries", "share"],
    );
    for (k, v) in &joins {
        a.row(vec![
            k.to_string(),
            v.to_string(),
            pct(*v as f64 / selects.max(1) as f64),
        ]);
    }
    a.print();
    write_csv(&a, "fig10a_joins");

    let mut b = Table::new(
        "Figure 10(b,c) — Nested / aggregation shares among SELECTs",
        &["feature", "queries", "share"],
    );
    b.row(vec![
        "nested".into(),
        nested.to_string(),
        pct(nested as f64 / selects.max(1) as f64),
    ]);
    b.row(vec![
        "aggregation".into(),
        agg.to_string(),
        pct(agg as f64 / selects.max(1) as f64),
    ]);
    b.print();
    write_csv(&b, "fig10bc_nested_agg");

    // (f) token-length histogram.
    let mut lengths: BTreeMap<usize, usize> = BTreeMap::new();
    for q in &cost_qs {
        let tokens = q.sql.split_whitespace().count();
        *lengths.entry((tokens / 5) * 5).or_default() += 1;
    }
    let mut f = Table::new(
        "Figure 10(f) — SQL length distribution (whitespace tokens, bucketed by 5)",
        &["length bucket", "queries"],
    );
    for (k, v) in &lengths {
        f.row(vec![format!("{k}-{}", k + 4), v.to_string()]);
    }
    f.print();
    write_csv(&f, "fig10f_lengths");

    // (e): statement-kind mix under a cardinality band, all kinds enabled.
    sqlgen_obs::obs_info!("[fig10] training under cardinality constraint (all kinds) ...");
    let card_qs = generate(
        &bed,
        Constraint::cardinality_range(50.0, 400.0),
        FsmConfig::full(),
        &args,
    );

    // (d): predicate counts. The paper's [1k, 8k] is *low* relative to
    // 33 GB tables, forcing predicate-heavy queries. At our scale any band
    // containing a table's row count admits predicate-free shortcuts
    // (full-table DELETEs, GROUP BY on a small table), so (d) uses
    // SPJ-only generation with a band that falls *between* table sizes —
    // the regime where predicates are mandatory (see EXPERIMENTS.md).
    sqlgen_obs::obs_info!("[fig10] training under gap-band cardinality constraint (SPJ only) ...");
    let pred_qs = generate(
        &bed,
        Constraint::cardinality_range(35.0, 80.0),
        FsmConfig::spj(),
        &args,
    );

    let mut preds: BTreeMap<usize, usize> = BTreeMap::new();
    let mut kinds: BTreeMap<&'static str, usize> = BTreeMap::new();
    for q in &card_qs {
        *kinds.entry(q.statement.kind().name()).or_default() += 1;
    }
    for q in &pred_qs {
        let n = match &q.statement {
            Statement::Select(s) => s.predicate.as_ref().map_or(0, |p| p.atom_count()),
            Statement::Update(u) => u.predicate.as_ref().map_or(0, |p| p.atom_count()),
            Statement::Delete(d) => d.predicate.as_ref().map_or(0, |p| p.atom_count()),
            Statement::Insert(_) => 0,
        };
        *preds.entry(n).or_default() += 1;
    }

    let mut d = Table::new(
        format!(
            "Figure 10(d) — Predicate counts (N={}, Card in [35, 80], SPJ-only)",
            args.n
        ),
        &["predicates", "queries"],
    );
    for (k, v) in &preds {
        d.row(vec![k.to_string(), v.to_string()]);
    }
    d.print();
    write_csv(&d, "fig10d_predicates");

    let mut e = Table::new(
        "Figure 10(e) — Statement kind distribution",
        &["kind", "queries", "share"],
    );
    for kind in StatementKind::ALL {
        let v = kinds.get(kind.name()).copied().unwrap_or(0);
        e.row(vec![
            kind.name().to_string(),
            v.to_string(),
            pct(v as f64 / args.n.max(1) as f64),
        ]);
    }
    e.print();
    write_csv(&e, "fig10e_kinds");
    args.finish_obs();
}
