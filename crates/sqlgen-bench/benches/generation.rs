//! Criterion bench: per-query generation cost of each method (the
//! microbenchmark behind the Figure 6/7 efficiency comparison).
//!
//! The learned generator is trained *outside* the measured loop, matching
//! how inference-time throughput is reported once a model exists.

use criterion::{criterion_group, criterion_main, Criterion};
use sqlgen_baselines::{RandomGen, TemplateGen};
use sqlgen_bench::methods::harness_gen_config;
use sqlgen_bench::TestBed;
use sqlgen_core::LearnedSqlGen;
use sqlgen_rl::Constraint;
use sqlgen_storage::gen::Benchmark;
use std::hint::black_box;

fn bench_generation(c: &mut Criterion) {
    let bed = TestBed::new(Benchmark::TpcH, 0.2, 42);
    let constraint = Constraint::cardinality_range(10.0, 5_000.0);

    let mut group = c.benchmark_group("generate_one_query");
    group.sample_size(10);

    // SQLSmith: one random rollout.
    let env = bed.env(constraint);
    let mut random = RandomGen::new(7);
    group.bench_function("sqlsmith_random", |b| {
        b.iter(|| black_box(random.generate(env.vocab, &env.fsm_config)))
    });

    // Template: one tuning attempt.
    let mut template = TemplateGen::from_rollouts(&bed.vocab, &env.fsm_config, 8, 9);
    group.bench_function("template_tune", |b| {
        b.iter(|| black_box(template.generate(&env)))
    });

    // LearnedSQLGen inference (pre-trained).
    let mut cfg = harness_gen_config(42);
    cfg.default_train_episodes = 150;
    let mut learned = LearnedSqlGen::new(&bed.db, constraint, cfg);
    learned.train(150);
    group.bench_function("learned_inference", |b| {
        b.iter(|| black_box(learned.generate(1)))
    });

    group.finish();

    // Training episode cost (what the efficiency figures amortize).
    let mut group = c.benchmark_group("train_one_episode");
    group.sample_size(10);
    let mut cfg = harness_gen_config(43);
    cfg.default_train_episodes = 1;
    let mut trainee = LearnedSqlGen::new(&bed.db, constraint, cfg);
    group.bench_function("learned_train_episode", |b| {
        b.iter(|| black_box(trainee.train(1).episodes))
    });
    group.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
