//! Criterion bench: the reward oracle's latency — statistics build,
//! cardinality estimation and cost estimation, plus real execution for
//! contrast. The estimator must be orders of magnitude faster than
//! execution for the paper's "use the estimate, not the real cardinality"
//! design to pay off.

use criterion::{criterion_group, criterion_main, Criterion};
use sqlgen_engine::{parse, CostModel, Estimator, Executor};
use sqlgen_storage::gen::tpch_database;
use std::hint::black_box;

fn bench_estimator(c: &mut Criterion) {
    let db = tpch_database(0.5, 42);
    let est = Estimator::build(&db);
    let cost = CostModel::default();
    let stmt = parse(
        "SELECT lineitem.l_quantity FROM lineitem \
         JOIN orders ON lineitem.l_orderkey = orders.o_orderkey \
         WHERE lineitem.l_quantity < 25 AND orders.o_orderstatus = 'F'",
    )
    .unwrap();

    let mut group = c.benchmark_group("reward_oracle");
    group.sample_size(20);

    group.bench_function("estimate_cardinality", |b| {
        b.iter(|| black_box(est.cardinality(&stmt)))
    });
    group.bench_function("estimate_cost", |b| {
        b.iter(|| black_box(cost.cost(&est, &stmt)))
    });
    let ex = Executor::new(&db);
    group.bench_function("execute_real", |b| {
        b.iter(|| black_box(ex.cardinality(&stmt).unwrap()))
    });
    group.finish();

    let mut group = c.benchmark_group("statistics");
    group.sample_size(10);
    group.bench_function("build_stats_tpch", |b| {
        b.iter(|| black_box(Estimator::build(&db)))
    });
    group.finish();
}

criterion_group!(benches, bench_estimator);
criterion_main!(benches);
