//! Criterion bench: per-episode training cost of the three RL algorithms
//! (REINFORCE vs actor-critic vs meta-critic) — the microbenchmark behind
//! Figures 8 and 9.

use criterion::{criterion_group, criterion_main, Criterion};
use sqlgen_bench::TestBed;
use sqlgen_rl::{ActorCritic, Constraint, MetaCriticTrainer, NetConfig, Reinforce, TrainConfig};
use sqlgen_storage::gen::Benchmark;
use std::hint::black_box;

fn cfg(seed: u64) -> TrainConfig {
    TrainConfig {
        net: NetConfig {
            embed_dim: 24,
            hidden: 24,
            layers: 2,
            dropout: 0.1,
        },
        seed,
        ..Default::default()
    }
}

fn bench_rl(c: &mut Criterion) {
    let bed = TestBed::new(Benchmark::TpcH, 0.2, 42);
    let constraint = Constraint::cardinality_range(10.0, 5_000.0);
    let env = bed.env(constraint);

    let mut group = c.benchmark_group("rl_train_episode");
    group.sample_size(10);

    let mut reinforce = Reinforce::new(bed.vocab.size(), cfg(1));
    group.bench_function("reinforce", |b| {
        b.iter(|| black_box(reinforce.train_episode(&env).total_reward()))
    });

    let mut ac = ActorCritic::new(bed.vocab.size(), cfg(2));
    group.bench_function("actor_critic", |b| {
        b.iter(|| black_box(ac.train_episode(&env).total_reward()))
    });

    let mut meta = MetaCriticTrainer::new(bed.vocab.size(), vec![constraint], cfg(3));
    group.bench_function("meta_critic", |b| {
        b.iter(|| black_box(meta.train_task(0, &env).total_reward()))
    });

    group.finish();
}

criterion_group!(benches, bench_rl);
criterion_main!(benches);
