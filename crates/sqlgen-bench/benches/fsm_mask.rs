//! Criterion bench: FSM action-mask computation and full rollouts — the
//! per-token overhead the environment adds to every RL step.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sqlgen_fsm::{random_statement, FsmConfig, GenState, Token, Vocabulary};
use sqlgen_storage::gen::tpch_database;
use sqlgen_storage::sample::SampleConfig;
use std::hint::black_box;

fn bench_fsm(c: &mut Criterion) {
    let db = tpch_database(0.3, 42);
    let vocab = Vocabulary::build(&db, &SampleConfig::default());
    let cfg = FsmConfig::full();

    let mut group = c.benchmark_group("fsm");
    group.sample_size(20);

    // Mask computation at a value-heavy decision point (predicate RHS).
    let lineitem = vocab.tables.iter().position(|t| t == "lineitem").unwrap() as u32;
    let qty = vocab
        .columns
        .iter()
        .position(|col| col.name == "l_quantity")
        .unwrap() as u32;
    let mut state = GenState::new(&vocab, FsmConfig::default());
    for t in [
        Token::From,
        Token::Table(lineitem),
        Token::Select,
        Token::Column(qty),
        Token::Where,
        Token::Column(qty),
        Token::Op(sqlgen_engine::CmpOp::Lt),
    ] {
        state.apply(vocab.id(&t)).unwrap();
    }
    let mut mask = vec![false; vocab.size()];
    group.bench_function("mask_at_value_choice", |b| {
        b.iter(|| {
            state.mask_into(&mut mask);
            black_box(mask[0])
        })
    });

    // Full random rollout (one valid statement).
    let mut rng = StdRng::seed_from_u64(9);
    group.bench_function("full_rollout", |b| {
        b.iter(|| black_box(random_statement(&vocab, &cfg, &mut rng).0))
    });

    // Vocabulary construction.
    group.bench_function("build_vocabulary", |b| {
        b.iter(|| black_box(Vocabulary::build(&db, &SampleConfig::default()).size()))
    });

    group.finish();
}

criterion_group!(benches, bench_fsm);
criterion_main!(benches);
